"""Asyncio hygiene for the service package (SVC001).

The catalog daemon is a long-lived event loop, and the two classic ways
to corrupt one are both silent:

* ``asyncio.create_task(...)`` whose result is dropped — the task can
  be garbage-collected mid-flight, and its crash traceback goes to the
  void instead of a supervisor.  Every background coroutine in
  ``repro/service/`` must be retained (assigned, awaited, or handed to
  :class:`repro.service.supervisor.TaskSupervisor`).
* A blocking call (``time.sleep``, synchronous file/socket I/O,
  ``subprocess``) inside an ``async def`` body — it stalls the whole
  loop: every client, the drain loop and the snapshot cycle all freeze
  behind one disk write.  Blocking work belongs in
  ``asyncio.to_thread`` (or outside async code entirely).
"""

from __future__ import annotations

import ast
from typing import ClassVar, FrozenSet, Iterator, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

#: Spawning calls whose return value must not be discarded.
_SPAWN_ATTRS: FrozenSet[str] = frozenset({"create_task", "ensure_future"})

#: module base -> blocking attribute calls on it.
_BLOCKING_ATTRS = {
    "time": frozenset({"sleep"}),
    "os": frozenset({"fsync", "system"}),
    "socket": frozenset({"socket", "create_connection"}),
    "subprocess": frozenset({"run", "Popen", "call", "check_call", "check_output"}),
}

#: Bare names that block when called directly inside async code.
_BLOCKING_NAMES: FrozenSet[str] = frozenset({"open"})


@register_rule
class ServiceAsyncHygiene(Rule):
    """SVC001 — no orphaned tasks, no blocking calls on the event loop."""

    rule_id: ClassVar[str] = "SVC001"
    name: ClassVar[str] = "service-async-hygiene"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "asyncio hygiene violation in the service package"
    )
    fix_hint: ClassVar[str] = (
        "retain spawned tasks (TaskSupervisor or an awaited/stored handle); "
        "run blocking I/O via asyncio.to_thread, never on the event loop"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Expr, ast.Call)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("service")

    def _base_name(self, value: ast.AST) -> str:
        while isinstance(value, ast.Attribute):
            value = value.value
        return value.id if isinstance(value, ast.Name) else ""

    def _in_async_scope(self, node: ast.AST, ctx: FileContext) -> bool:
        return isinstance(ctx.scope_of(node), ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Expr):
            yield from self._check_dropped_task(node, ctx)
        elif isinstance(node, ast.Call):
            yield from self._check_blocking_call(node, ctx)

    def _check_dropped_task(
        self, node: ast.Expr, ctx: FileContext
    ) -> Iterator[Finding]:
        """An expression-statement spawn: the task handle is discarded."""
        call = node.value
        if not isinstance(call, ast.Call):
            return
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _SPAWN_ATTRS:
            dotted = ast.unparse(func)
            yield self.finding_at(
                ctx,
                node,
                message=(
                    f"{dotted}(...) result is discarded: the task is "
                    "unsupervised and may be garbage-collected mid-flight"
                ),
            )

    def _check_blocking_call(
        self, node: ast.Call, ctx: FileContext
    ) -> Iterator[Finding]:
        if not self._in_async_scope(node, ctx):
            return
        func = node.func
        if isinstance(func, ast.Name):
            origin = ctx.from_imports.get(func.id, "")
            if func.id in _BLOCKING_NAMES and not origin:
                yield self.finding_at(
                    ctx,
                    node,
                    message=(
                        f"blocking call {func.id}() inside an async def "
                        "stalls the event loop"
                    ),
                )
            elif origin:
                base, _, attr = origin.rpartition(".")
                if attr in _BLOCKING_ATTRS.get(base, frozenset()):
                    yield self.finding_at(
                        ctx,
                        node,
                        message=(
                            f"blocking call {origin}() inside an async def "
                            "stalls the event loop"
                        ),
                    )
        elif isinstance(func, ast.Attribute):
            base = self._base_name(func.value)
            blocked = _BLOCKING_ATTRS.get(base)
            # Only flag when the base really is the module (not a local
            # variable that happens to share its name via import-from).
            if (
                blocked
                and func.attr in blocked
                and base not in ctx.from_imports
            ):
                yield self.finding_at(
                    ctx,
                    node,
                    message=(
                        f"blocking call {base}.{func.attr}() inside an "
                        "async def stalls the event loop"
                    ),
                )
