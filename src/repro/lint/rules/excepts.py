"""Exception hygiene: no bare ``except:``, no silently swallowed errors.

A simulator that swallows an exception keeps running with corrupt state
and produces a plausible-looking but wrong dataset — the worst failure
mode a reproduction can have.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare `...`
        return False
    return True


@register_rule
class BareExcept(Rule):
    """EXC001 — bare ``except:`` or an exception handler that does nothing."""

    rule_id: ClassVar[str] = "EXC001"
    name: ClassVar[str] = "bare-or-swallowed-except"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = "exception caught and discarded"
    fix_hint: ClassVar[str] = (
        "catch the narrowest exception type and either handle it or re-raise; "
        "if ignoring is intentional, log or comment why and use "
        "contextlib.suppress"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.finding_at(
                ctx,
                node,
                message="bare `except:` catches SystemExit/KeyboardInterrupt too",
            )
        elif _swallows(node):
            yield self.finding_at(
                ctx,
                node,
                message="exception handler swallows the error without a trace",
            )
