"""Wall-clock ban: simulators must take time from the config, not the OS.

Scoped to the simulation packages (``mno``, ``platform_m2m``,
``signaling``, ``devices``): a simulator that reads the host clock
produces different traces on every run and can never be replayed.
Analysis/reporting code may timestamp its own output freely.
"""

from __future__ import annotations

import ast
from typing import ClassVar, FrozenSet, Iterator, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

_SIM_PACKAGES: Tuple[str, ...] = ("mno", "platform_m2m", "signaling", "devices")

#: Methods on datetime/date classes that read the wall clock.
_DATETIME_METHODS: FrozenSet[str] = frozenset({"now", "today", "utcnow"})

#: Functions in the ``time`` module that read the wall clock.
_TIME_FUNCTIONS: FrozenSet[str] = frozenset(
    {"time", "time_ns", "localtime", "gmtime", "monotonic", "monotonic_ns"}
)


@register_rule
class WallClockInSimulator(Rule):
    """TIME001 — no wall-clock reads inside simulation packages."""

    rule_id: ClassVar[str] = "TIME001"
    name: ClassVar[str] = "wall-clock-in-simulator"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "wall-clock read in a simulation package: traces become unreplayable"
    )
    fix_hint: ClassVar[str] = (
        "derive simulation time from the config window "
        "(day index / seconds offset), never from the host clock"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*_SIM_PACKAGES)

    def _base_name(self, value: ast.AST) -> str:
        """Terminal name of a Name/Attribute chain (``a.b.c`` -> ``a``)."""
        while isinstance(value, ast.Attribute):
            value = value.value
        return value.id if isinstance(value, ast.Name) else ""

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            base = self._base_name(func.value)
            dotted = ast.unparse(func) if hasattr(ast, "unparse") else attr
            if attr in _DATETIME_METHODS and self._is_datetime_base(func.value, ctx):
                yield self.finding_at(
                    ctx, node, message=f"{dotted}() reads the wall clock"
                )
            elif attr in _TIME_FUNCTIONS and base == "time" and (
                "time" not in ctx.from_imports
            ):
                yield self.finding_at(
                    ctx, node, message=f"time.{attr}() reads the wall clock"
                )
        elif isinstance(func, ast.Name):
            origin = ctx.from_imports.get(func.id, "")
            if origin.startswith("time.") and origin.split(".", 1)[1] in _TIME_FUNCTIONS:
                yield self.finding_at(
                    ctx, node, message=f"{origin}() reads the wall clock"
                )
            elif func.id in _DATETIME_METHODS and origin in (
                "datetime.datetime.now",
                "datetime.datetime.utcnow",
                "datetime.date.today",
            ):
                yield self.finding_at(
                    ctx, node, message=f"{origin}() reads the wall clock"
                )

    def _is_datetime_base(self, value: ast.AST, ctx: FileContext) -> bool:
        """True when ``value`` names the datetime/date class or module.

        Covers ``datetime.now()`` / ``date.today()`` (class imported from
        the datetime module) and ``datetime.datetime.now()`` (module
        attribute access).
        """
        if isinstance(value, ast.Name):
            if value.id in ("datetime", "date"):
                origin = ctx.from_imports.get(value.id, "")
                return origin in ("datetime.datetime", "datetime.date") or (
                    value.id == "datetime" and not origin
                )
            return False
        if isinstance(value, ast.Attribute):
            return (
                value.attr in ("datetime", "date")
                and isinstance(value.value, ast.Name)
                and value.value.id == "datetime"
            )
        return False
