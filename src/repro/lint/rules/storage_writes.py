"""Storage-seam hygiene: runtime/service I/O must route through fsio.

:mod:`repro.runtime.fsio` is the single seam every durable write, read,
fsync and rename in the runtime and service layers passes through.  The
seam is what makes the storage stack *testable*: an armed
:class:`repro.faults.fsfault.FsFaultInjector` perturbs every consumer
at once (ENOSPC, EIO, short writes, bit rot), and the chaos suite's
guarantees — no torn state, typed incidents, scrub-then-resume
convergence — hold only for I/O the seam can see.  A bare ``os.write``
or ``open(path, "w")`` inside these packages is invisible to the
injector: it cannot be fault-tested, it skips the partial-file cleanup
the seam performs on failure, and it silently re-opens the class of
torn-state bugs the seam closed.

The rule bans, inside ``repro.runtime`` and ``repro.service`` (the fsio
module itself excepted — it *is* the seam):

- ``os.write`` / ``os.fsync`` / ``os.replace`` / ``os.rename`` calls;
- ``open(...)`` with a write-capable (or non-literal) mode;
- ``Path.write_bytes`` / ``Path.write_text`` method calls.

Read-only ``open()`` and ``os.open(..., O_RDONLY)`` (the mmap path) are
out of scope: reads route through :func:`repro.runtime.fsio.read_file_bytes`
or probe :func:`~repro.runtime.fsio.check_read` where fault coverage is
needed, but a raw read cannot tear state.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Optional, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

#: ``os.<name>`` calls that mutate storage state behind the seam's back.
_OS_STORAGE_CALLS: Tuple[str, ...] = ("write", "fsync", "replace", "rename")

_WRITE_MODES = ("w", "a", "x", "+")

_WRITE_METHODS = ("write_bytes", "write_text")

#: The seam itself (and nothing else) may touch the raw syscalls.
_SEAM_FILENAME = "fsio.py"


def _open_mode(call: ast.Call) -> Optional[str]:
    """The literal mode of an ``open()`` call, or None when unknown."""
    mode_node: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    else:
        for kw in call.keywords:
            if kw.arg == "mode":
                mode_node = kw.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


@register_rule
class UnroutedStorageWrite(Rule):
    """FS001 — storage syscall bypasses the fault-aware fsio seam."""

    rule_id: ClassVar[str] = "FS001"
    name: ClassVar[str] = "unrouted-storage-write"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "storage write bypasses repro.runtime.fsio: invisible to fault "
        "injection, no partial-file cleanup, re-opens torn-state bugs"
    )
    fix_hint: ClassVar[str] = (
        "route the operation through repro.runtime.fsio "
        "(write_file_bytes / append_text / fsync_handle / replace_file / "
        "fsync_dir) or the atomic checkpoint writers built on it"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        if not ctx.in_package("runtime", "service"):
            return False
        return ctx.parts[-1] != _SEAM_FILENAME

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(node)
            if mode is None or any(flag in mode for flag in _WRITE_MODES):
                yield self.finding_at(
                    ctx,
                    node,
                    message=(
                        "file opened writable outside the fsio seam: the "
                        "write cannot be fault-injected and leaves partial "
                        "state on failure"
                    ),
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "os"
            and func.attr in _OS_STORAGE_CALLS
        ):
            yield self.finding_at(
                ctx,
                node,
                message=(
                    f"os.{func.attr}() bypasses the fsio seam: fault "
                    "injection cannot see it and no cleanup runs on failure"
                ),
            )
            return
        if func.attr in _WRITE_METHODS:
            yield self.finding_at(
                ctx,
                node,
                message=(
                    f".{func.attr}() bypasses the fsio seam: a crash "
                    "mid-write leaves a torn file no injector ever probed"
                ),
            )
