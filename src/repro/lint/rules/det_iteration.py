"""DET001 — unordered iteration feeding a serialized or merged output.

Every correctness claim in this reproduction rests on byte-identical
outputs across the serial/sharded, row/columnar, and kill/resume paths.
A ``for`` loop (or list/dict comprehension) over a **set** — or over a
directory listing — visits elements in hash/filesystem order, which
differs between processes (string hashing is randomized) and between
hosts.  When such a loop *emits* into an ordered container that can
reach a serialized or merged output (a ``merge`` method, RPCK encoding,
JSON rendering — anything in the project call graph's
``serialized_reachable`` set), the output bytes silently depend on that
order.

The rule is interprocedural: "reaches a serialized output" is answered
by the :class:`~repro.lint.project.ProjectIndex` (transitive callees of
sink functions), so a helper three calls below ``DegradationReport.merge``
is checked even though it never serializes anything itself.  Iterations
whose body is order-insensitive (pure membership tests, counting,
``.add`` into another set) are not flagged; wrap the iterable in
``sorted(...)`` to fix a true finding.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, List, Optional, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

#: Method calls in a loop body that make iteration order observable.
_EMITTING_METHODS = ("append", "extend", "insert", "write", "writerow", "appendleft")

#: Builtins that consume a comprehension order-insensitively: feeding an
#: unordered generator into these is fine (``sum`` is DET003's domain).
_ORDER_INSENSITIVE_CONSUMERS = (
    "sorted",
    "set",
    "frozenset",
    "min",
    "max",
    "any",
    "all",
    "len",
    "sum",
    "fsum",
    "Counter",
)


def _consumed_order_insensitively(node: ast.AST, ctx: FileContext) -> bool:
    """True when the comprehension's result order cannot matter."""
    parent = ctx.parent_of(node)
    if not (isinstance(parent, ast.Call) and node in parent.args):
        return False
    func = parent.func
    if isinstance(func, ast.Name):
        return func.id in _ORDER_INSENSITIVE_CONSUMERS
    # math.fsum, collections.Counter, ... — match on the terminal attr.
    if isinstance(func, ast.Attribute):
        return func.attr in _ORDER_INSENSITIVE_CONSUMERS
    return False


def _body_emits_ordered(body: List[ast.stmt]) -> Optional[ast.AST]:
    """First statement in ``body`` whose effect is order-sensitive.

    Appending to a list, yielding, writing to a stream, or inserting
    into a dict all expose iteration order to the consumer; ``.add`` on
    a set, counting, or membership checks do not.
    """
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _EMITTING_METHODS:
                    return node
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        return node
            if isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Subscript
            ):
                return node
    return None


@register_rule
class UnorderedIterationToOutput(Rule):
    """DET001 — set/listdir iteration on a path to serialized output."""

    rule_id: ClassVar[str] = "DET001"
    name: ClassVar[str] = "unordered-iteration-to-output"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "iteration over an unordered collection emits into an ordered "
        "structure on a path that reaches serialized/merged output"
    )
    fix_hint: ClassVar[str] = (
        "iterate sorted(...) (or an explicitly ordered container) so the "
        "emitted order is independent of hash/filesystem order"
    )
    node_types: ClassVar[Tuple[type, ...]] = (
        ast.For,
        ast.ListComp,
        ast.DictComp,
        ast.GeneratorExp,
    )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_serialized_reachable(node):
            return
        flow = ctx.dataflow_for(node)
        if isinstance(node, ast.For):
            reason = flow.unordered_reason(node.iter)
            if reason is None:
                return
            if _body_emits_ordered(node.body) is None:
                return
            yield self.finding_at(
                ctx,
                node.iter,
                message=(
                    f"loop emits into ordered output but {reason}; the "
                    "emitted sequence differs across processes and hosts"
                ),
            )
            return
        # List/dict comprehensions and generator expressions materialize
        # an *ordered* result directly from the iteration order — unless
        # the consumer (sorted, set, min, ...) erases that order again.
        if _consumed_order_insensitively(node, ctx):
            return
        for iter_expr, line, col in (
            (comp.iter, comp.iter.lineno, comp.iter.col_offset)
            for comp in node.generators  # type: ignore[union-attr]
        ):
            reason = flow.unordered_reason(iter_expr)
            if reason is None:
                continue
            kind = {
                ast.ListComp: "list comprehension",
                ast.DictComp: "dict comprehension",
                ast.GeneratorExp: "generator expression",
            }[type(node)]
            yield self.finding(
                ctx,
                line=line,
                col=col,
                message=(
                    f"{kind} materializes an ordered result but {reason}; "
                    "the element order differs across processes and hosts"
                ),
            )
