"""Built-in rule modules; importing this package registers every rule."""

from repro.lint.rules import (  # noqa: F401  (imported for registration side effect)
    api_drift,
    dataclass_config,
    durability,
    excepts,
    floats,
    identifiers,
    mutable_defaults,
    noqa,
    parallelism,
    perf_rows,
    retry,
    rng,
    wallclock,
)

__all__ = [
    "api_drift",
    "dataclass_config",
    "durability",
    "excepts",
    "floats",
    "identifiers",
    "mutable_defaults",
    "noqa",
    "parallelism",
    "perf_rows",
    "retry",
    "rng",
    "wallclock",
]
