"""Float equality in analysis code: shares and rates never compare exactly.

Scoped to ``analysis/``: the figures and statistics modules work with
normalized shares and averaged rates, where ``x == 0.3`` silently
depends on rounding behaviour.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule


def _is_float_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and type(node.value) is float


@register_rule
class FloatEquality(Rule):
    """FLT001 — ``==``/``!=`` against a float literal in analysis code."""

    rule_id: ClassVar[str] = "FLT001"
    name: ClassVar[str] = "float-equality"
    severity: ClassVar[Severity] = Severity.WARNING
    summary: ClassVar[str] = (
        "exact equality against a float literal is rounding-fragile"
    )
    fix_hint: ClassVar[str] = (
        "compare with math.isclose(...) or an explicit epsilon "
        "(abs(x - y) < 1e-9)"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.Compare,)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("analysis")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_constant(left) or _is_float_constant(right):
                yield self.finding_at(ctx, node)
                return
