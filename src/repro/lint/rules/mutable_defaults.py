"""Mutable default arguments: shared state across calls."""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Tuple, Union

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

_MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "Counter", "deque")


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in _MUTABLE_CALLS
    return False


@register_rule
class MutableDefaultArgument(Rule):
    """DEF001 — mutable default argument values are shared across calls."""

    rule_id: ClassVar[str] = "DEF001"
    name: ClassVar[str] = "mutable-default-argument"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "mutable default argument: the object is created once and shared by "
        "every call"
    )
    fix_hint: ClassVar[str] = "default to None and create the object in the body"
    node_types: ClassVar[Tuple[type, ...]] = (
        ast.FunctionDef,
        ast.AsyncFunctionDef,
    )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        fn: Union[ast.FunctionDef, ast.AsyncFunctionDef] = node
        defaults = list(fn.args.defaults) + [
            d for d in fn.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                yield self.finding_at(
                    ctx,
                    default,
                    message=(
                        f"mutable default in `{fn.name}(...)`: the object is "
                        "created once at def time"
                    ),
                )
