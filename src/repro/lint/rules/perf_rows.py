"""Hot-loop row construction: keep the core's kernels columnar.

The catalog's hot stages have a columnar twin
(:meth:`repro.core.catalog.CatalogBuilder.build_from_columns` scanning
:mod:`repro.columnar` stores), so constructing a :class:`RadioEvent` /
:class:`ServiceRecord` dataclass *per row inside a loop* in
``repro/core/`` reintroduces exactly the per-row allocation and
validation cost the columnar plane exists to avoid.  Materializing rows
is fine at boundaries (adapters, error paths, one-off lookups); doing it
once per iteration in core code is a performance bug.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule

#: Row dataclasses with a columnar equivalent; constructing one of these
#: per loop iteration in core code defeats the columnar plane.
_ROW_CONSTRUCTORS = frozenset({"RadioEvent", "ServiceRecord"})

_LOOP_TYPES: Tuple[type, ...] = (
    ast.For,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.GeneratorExp,
    ast.DictComp,
)


def _constructor_name(call: ast.Call) -> str:
    """The called name, unwrapping one attribute level (mod.RadioEvent)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register_rule
class RowConstructionInCoreLoop(Rule):
    """PERF002 — per-row dataclass construction in a core hot loop."""

    rule_id: ClassVar[str] = "PERF002"
    name: ClassVar[str] = "row-construction-in-core-loop"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "per-row RadioEvent/ServiceRecord construction inside a loop in "
        "repro.core: this path has a columnar equivalent"
    )
    fix_hint: ClassVar[str] = (
        "scan the interned columns (repro.columnar) or hoist the "
        "construction out of the loop; materialize rows only at "
        "boundaries (to_rows/rows_at adapters)"
    )
    node_types: ClassVar[Tuple[type, ...]] = _LOOP_TYPES

    def __init__(self) -> None:
        # Rules are instantiated once per linted file, so nested loops —
        # which the engine visits outer-first — dedupe per call site
        # rather than flagging the same construction at every depth.
        self._reported: Set[Tuple[int, int]] = set()

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("core")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            name = _constructor_name(inner)
            if name not in _ROW_CONSTRUCTORS:
                continue
            site = (inner.lineno, inner.col_offset)
            if site in self._reported:
                continue
            self._reported.add(site)
            yield self.finding_at(
                ctx, inner, message=f"{name}(...) constructed per loop iteration"
            )
