"""Config dataclass hygiene: every field annotated, every field defaulted.

Config objects (``*Config`` dataclasses) are the knobs users override
partially — a field without a default forces callers to restate
calibration constants, and an un-annotated assignment in a dataclass
body is a silent class attribute, not a field at all.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Tuple

from repro.lint.engine import FileContext, Finding, Rule, Severity
from repro.lint.registry import register_rule


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _is_classvar(annotation: ast.AST) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id == "ClassVar"
    if isinstance(target, ast.Attribute):
        return target.attr == "ClassVar"
    return False


@register_rule
class ConfigFieldHygiene(Rule):
    """CFG001 — ``*Config`` dataclass fields need annotations and defaults."""

    rule_id: ClassVar[str] = "CFG001"
    name: ClassVar[str] = "config-field-hygiene"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "config dataclass field lacks a type annotation or a default"
    )
    fix_hint: ClassVar[str] = (
        "annotate every field and give it a calibrated default "
        "(use field(default_factory=...) for containers)"
    )
    node_types: ClassVar[Tuple[type, ...]] = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        if not node.name.endswith("Config") or not _is_dataclass_decorated(node):
            return
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign):
                if _is_classvar(stmt.annotation):
                    continue
                if stmt.value is None:
                    name = (
                        stmt.target.id
                        if isinstance(stmt.target, ast.Name)
                        else "<field>"
                    )
                    yield self.finding_at(
                        ctx,
                        stmt,
                        message=(
                            f"config field `{node.name}.{name}` has no default"
                        ),
                    )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not target.id.startswith(
                        "__"
                    ):
                        yield self.finding_at(
                            ctx,
                            stmt,
                            message=(
                                f"`{node.name}.{target.id}` is un-annotated: "
                                "it is a class attribute, not a dataclass field"
                            ),
                        )
