"""Catalog entries for the engine-emitted rules.

The engine itself reports unused suppressions (``NOQA001``) and files
that fail to parse (``SYNTAX001``); these classes exist so both rules
show up in ``--list-rules``, the docs, and ``--select``/``--ignore``
handling like any other rule.
"""

from __future__ import annotations

from typing import ClassVar

from repro.lint.engine import Rule, Severity
from repro.lint.registry import register_rule


@register_rule
class UnusedSuppression(Rule):
    """NOQA001 — a ``# repro: noqa[...]`` comment that silences nothing."""

    rule_id: ClassVar[str] = "NOQA001"
    name: ClassVar[str] = "unused-suppression"
    severity: ClassVar[Severity] = Severity.WARNING
    summary: ClassVar[str] = "suppression comment with no matching finding"
    fix_hint: ClassVar[str] = "delete the stale `# repro: noqa[...]` comment"


@register_rule
class SyntaxErrorRule(Rule):
    """SYNTAX001 — the file does not parse as python."""

    rule_id: ClassVar[str] = "SYNTAX001"
    name: ClassVar[str] = "syntax-error"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = "file does not parse"
    fix_hint: ClassVar[str] = "fix the syntax error"
