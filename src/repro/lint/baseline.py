"""Baseline / ratchet file: tolerate known findings, forbid new ones.

Landing a new whole-program rule on a mature tree would either require
fixing every pre-existing finding in the same commit or weakening the
rule.  The baseline breaks that deadlock: a checked-in JSON file records
how many findings of each ``(path, rule)`` pair are *accepted*; the lint
run subtracts the accepted budget and reports only the excess.  The
budget can only shrink (the ratchet): ``--update-baseline`` rewrites the
file from the current tree, and CI diffs it, so a fixed finding can
never silently regress.

Suppression is positional within a ``(path, rule)`` group: with a budget
of N, the first N findings (in the engine's deterministic sort order)
are baselined and the rest reported.  That makes the output stable for
a given tree, while any *growth* of the group — wherever in the file it
happens — surfaces at least one finding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.lint.engine import Finding
from repro.runtime.checkpoint import atomic_write_text

PathLike = Union[str, Path]

#: Schema version of the baseline document; bump on breaking change.
BASELINE_VERSION = 1


def _group_key(finding: Finding) -> str:
    return f"{finding.path}::{finding.rule_id}"


def load_baseline(path: PathLike) -> Dict[str, int]:
    """Accepted ``path::rule`` -> count budget from a baseline file.

    A missing file is an empty baseline (everything is reported), so a
    fresh checkout with no baseline behaves like a strict run.
    """
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return {}
    doc = json.loads(raw)
    if doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {doc.get('version')!r} in {path}"
        )
    counts = doc.get("counts", {})
    if not isinstance(counts, dict):
        raise ValueError(f"malformed baseline file {path}: 'counts' must be a map")
    return {str(key): int(value) for key, value in counts.items()}


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """(unbaselined findings, number suppressed by the baseline)."""
    budget = dict(baseline)
    kept: List[Finding] = []
    suppressed = 0
    for finding in sorted(findings):
        key = _group_key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def render_baseline(findings: List[Finding]) -> str:
    """The baseline document accepting exactly the given findings."""
    counts: Dict[str, int] = {}
    for finding in findings:
        key = _group_key(finding)
        counts[key] = counts.get(key, 0) + 1
    doc = {"version": BASELINE_VERSION, "counts": dict(sorted(counts.items()))}
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_baseline(findings: List[Finding], path: PathLike) -> None:
    """Rewrite the baseline file to accept exactly the current findings.

    The baseline gates CI, making it a durable artifact in DUR001's
    sense; writing it through the sanctioned atomic discipline means a
    crash mid-update can never leave a torn file that silently accepts
    (or rejects) the wrong findings.
    """
    atomic_write_text(Path(path), render_baseline(findings))
