"""Whole-program index: symbols, imports, call graph, and summaries.

Per-file AST rules can only see one module at a time, but the invariants
the DET/SEAM/DUR rule families guard are *program* properties: "does this
set iteration feed a serialized output?" depends on who calls whom, and
"is this global mutated?" depends on every module that imports it.  The
:class:`ProjectIndex` answers those questions.  It is built from one
:class:`ModuleIndex` shard per file — a small, JSON-serializable summary
of the module's functions, imports, globals and call edges — and derives
the interprocedural facts rules query:

* ``serialized_reachable`` — functions whose results can feed a
  serialized or merged output (transitive callees of *sink* functions:
  anything that calls ``json``/``pickle`` dump APIs, the RPCK codec in
  :mod:`repro.runtime.serialize`, or is itself named ``merge`` /
  ``merge_from`` / ``render_json`` / ``to_json``).
* ``worker_functions`` — functions shipped across the
  :func:`repro.parallel.pool.map_shards` process seam.
* ``raw_writer_params`` — parameter positions that flow (transitively,
  through wrapper helpers) into a non-atomic file write.
* ``mutable_globals`` / ``mutated_globals`` — module-level mutable
  containers and whether anything in the project mutates them.

Because a shard depends only on its own module's source, shards are
cached on disk keyed by content hash (see :class:`IndexCache`): a warm
run re-parses only the modules whose bytes changed.  The single-file
entry points (``lint_source``/``lint_file``) build a one-module index on
the fly, so every rule degrades gracefully to intra-module resolution —
fixture tests exercise the same code path as the whole-program pass.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

#: Dotted-name prefixes whose callees serialize data: reaching one of
#: these makes the enclosing function a determinism sink.
_SERIALIZE_CALL_PREFIXES: Tuple[str, ...] = (
    "json.dump",
    "pickle.dump",
    "marshal.dump",
    "repro.runtime.serialize.",
)

#: Terminal function names that are sinks by contract: merged or
#: rendered structures must not depend on iteration order.
_SINK_NAMES: Tuple[str, ...] = ("merge", "merge_from", "render_json", "to_json")

#: Dotted suffixes identifying the audited process-pool seam.
_SEAM_SUFFIXES: Tuple[str, ...] = (".map_shards",)
_SEAM_NAMES: Tuple[str, ...] = ("map_shards",)

#: Dotted names of the sanctioned atomic writers in repro.runtime.
_ATOMIC_MARKER = "atomic_write"

#: Calls that construct a mutable container at module level.
_MUTABLE_FACTORIES: Tuple[str, ...] = (
    "dict",
    "list",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS: Tuple[str, ...] = (
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
    "appendleft",
)

#: ``open`` modes that mutate the target file (mirrors rules.durability).
_WRITE_MODES = ("w", "a", "x", "+")

_RAW_WRITE_METHODS = ("write_text", "write_bytes")


def module_name_for(path: "Path | str") -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    Files outside the package (fixtures, tools) get a stable name derived
    from their posix path so single-file indexes still have an identity.
    """
    p = Path(path)
    parts = list(p.parts)
    if "repro" in parts:
        tail = parts[parts.index("repro"):]
        if tail[-1] == "__init__.py":
            tail = tail[:-1]
        else:
            tail[-1] = Path(tail[-1]).stem
        return ".".join(tail)
    return p.as_posix().replace("/", ".").removesuffix(".py")


def content_hash(source: str) -> str:
    """Stable content key for the incremental cache."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FunctionInfo:
    """Per-function summary: enough for call-graph and flow queries."""

    qualname: str  #: module-local, e.g. ``CatalogBuilder.merge``
    lineno: int
    params: Tuple[str, ...]
    calls: Tuple[str, ...]  #: resolved dotted names, or ``*.attr`` markers
    is_sink: bool
    raw_write_params: Tuple[int, ...]
    #: ``(callee, caller_param_index, callee_arg_index)`` for every call
    #: that forwards one of this function's parameters verbatim.
    param_flows: Tuple[Tuple[str, int, int], ...]

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleIndex:
    """The cacheable per-module shard of the project index."""

    module: str
    path: str
    content_hash: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level names bound to mutable containers -> def lineno
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    #: fully-qualified globals this module mutates (``module.name``)
    mutated_globals: Tuple[str, ...] = ()
    #: fully-qualified names of functions this module ships across the
    #: process-pool seam
    seam_workers: Tuple[str, ...] = ()

    def to_json(self) -> Dict[str, object]:
        doc = asdict(self)
        doc["functions"] = {q: asdict(fn) for q, fn in self.functions.items()}
        return doc

    @classmethod
    def from_json(cls, doc: Mapping[str, object]) -> "ModuleIndex":
        functions = {
            qualname: FunctionInfo(
                qualname=raw["qualname"],
                lineno=raw["lineno"],
                params=tuple(raw["params"]),
                calls=tuple(raw["calls"]),
                is_sink=raw["is_sink"],
                raw_write_params=tuple(raw["raw_write_params"]),
                param_flows=tuple(
                    (callee, int(src), int(dst))
                    for callee, src, dst in raw["param_flows"]
                ),
            )
            for qualname, raw in dict(doc["functions"]).items()  # type: ignore[arg-type]
        }
        return cls(
            module=str(doc["module"]),
            path=str(doc["path"]),
            content_hash=str(doc["content_hash"]),
            imports=dict(doc["imports"]),  # type: ignore[arg-type]
            functions=functions,
            mutable_globals={
                k: int(v)
                for k, v in dict(doc["mutable_globals"]).items()  # type: ignore[arg-type]
            },
            mutated_globals=tuple(doc["mutated_globals"]),  # type: ignore[arg-type]
            seam_workers=tuple(doc["seam_workers"]),  # type: ignore[arg-type]
        )


class _ImportTable:
    """Local name -> dotted origin for one module."""

    def __init__(self, tree: ast.Module) -> None:
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.names[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.names[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"


def resolve_call(
    call: ast.Call,
    imports: Mapping[str, str],
    module: str,
    local_functions: Iterable[str] = (),
    self_class: Optional[str] = None,
) -> Optional[str]:
    """Best-effort dotted name for a call's target.

    Returns a fully-dotted name when the target resolves through the
    module's imports or its own top-level definitions, an ``*.attr``
    marker for attribute calls on unknown receivers, and ``None`` for
    targets that cannot matter interprocedurally (lambdas, subscripts).
    """
    func = call.func
    if isinstance(func, ast.Name):
        origin = imports.get(func.id)
        if origin is not None:
            return origin
        if func.id in set(local_functions):
            return f"{module}.{func.id}"
        return func.id  # builtin or dynamic; terminal name only
    if isinstance(func, ast.Attribute):
        parts: List[str] = [func.attr]
        base: ast.expr = func.value
        while isinstance(base, ast.Attribute):
            parts.append(base.attr)
            base = base.value
        if isinstance(base, ast.Name):
            root = imports.get(base.id)
            if root is not None:
                return ".".join([root] + list(reversed(parts)))
            if base.id == "self" and self_class is not None:
                return f"{module}.{self_class}." + ".".join(reversed(parts))
        return f"*.{func.attr}"
    return None


def _mode_of_open(call: ast.Call) -> Optional[str]:
    mode_node: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    else:
        for kw in call.keywords:
            if kw.arg == "mode":
                mode_node = kw.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


def _param_names(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> Tuple[str, ...]:
    args = func.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    return tuple(names)


class _ModuleExtractor:
    """One pass over a parsed module producing its :class:`ModuleIndex`."""

    def __init__(self, module: str, path: str, source: str, tree: ast.Module) -> None:
        self.tree = tree
        self.imports = _ImportTable(tree).names
        self.module = module
        self.index = ModuleIndex(
            module=module,
            path=Path(path).as_posix(),
            content_hash=content_hash(source),
            imports=dict(self.imports),
        )
        self._top_level: Set[str] = {
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        }
        self._module_globals: Set[str] = set()
        self._mutations: Set[str] = set()
        self._seam_workers: List[str] = []

    def run(self) -> ModuleIndex:
        self._scan_globals()
        for node, class_name in self._iter_functions():
            self._extract_function(node, class_name)
        self._scan_mutations_and_seams()
        self.index.mutated_globals = tuple(sorted(self._mutations))
        self.index.seam_workers = tuple(sorted(set(self._seam_workers)))
        return self.index

    # -- module-level globals -------------------------------------------------

    def _scan_globals(self) -> None:
        for node in self.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                self._module_globals.add(target.id)
                if value is not None and self._is_mutable_value(value):
                    self.index.mutable_globals[target.id] = node.lineno

    def _is_mutable_value(self, value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            resolved = resolve_call(value, self.imports, self.module, self._top_level)
            if resolved is None:
                return False
            terminal = resolved.rsplit(".", 1)[-1]
            return terminal in _MUTABLE_FACTORIES
        return False

    # -- functions ------------------------------------------------------------

    def _iter_functions(self) -> "Iterable[Tuple[ast.FunctionDef | ast.AsyncFunctionDef, Optional[str]]]":
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, None
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield item, node.name

    def _extract_function(
        self,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        class_name: Optional[str],
    ) -> None:
        qualname = f"{class_name}.{func.name}" if class_name else func.name
        params = _param_names(func)
        param_index = {name: i for i, name in enumerate(params)}
        calls: Set[str] = set()
        param_flows: List[Tuple[str, int, int]] = []
        raw_write_params: Set[int] = set()
        is_sink = func.name in _SINK_NAMES

        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(
                node, self.imports, self.module, self._top_level, class_name
            )
            if resolved is None:
                continue
            calls.add(resolved)
            if resolved.startswith(_SERIALIZE_CALL_PREFIXES):
                is_sink = True
            for arg_index, arg in enumerate(node.args):
                if isinstance(arg, ast.Name) and arg.id in param_index:
                    param_flows.append((resolved, param_index[arg.id], arg_index))
            raw_write_params.update(self._raw_write_params(node, param_index))

        self.index.functions[qualname] = FunctionInfo(
            qualname=qualname,
            lineno=func.lineno,
            params=params,
            calls=tuple(sorted(calls)),
            is_sink=is_sink,
            raw_write_params=tuple(sorted(raw_write_params)),
            param_flows=tuple(param_flows),
        )

    def _raw_write_params(
        self, call: ast.Call, param_index: Mapping[str, int]
    ) -> Set[int]:
        """Parameter indices this call writes to disk non-atomically."""
        hit: Set[int] = set()
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open" and call.args:
            mode = _mode_of_open(call)
            if mode is not None and not any(f in mode for f in _WRITE_MODES):
                return hit
            for name_node in ast.walk(call.args[0]):
                if isinstance(name_node, ast.Name) and name_node.id in param_index:
                    hit.add(param_index[name_node.id])
        elif isinstance(func, ast.Attribute) and func.attr in _RAW_WRITE_METHODS:
            for name_node in ast.walk(func.value):
                if isinstance(name_node, ast.Name) and name_node.id in param_index:
                    hit.add(param_index[name_node.id])
        return hit

    # -- mutations and the pool seam -----------------------------------------

    def _scan_mutations_and_seams(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._note_seam(node)
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                ):
                    self._note_mutation(func.value.id)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if isinstance(base, ast.Name) and base is not target:
                        self._note_mutation(base.id)
            elif isinstance(node, ast.Global):
                for name in node.names:
                    self._note_mutation(name)

    def _note_mutation(self, name: str) -> None:
        if name in self._module_globals:
            self._mutations.add(f"{self.module}.{name}")
        elif name in self.imports:
            self._mutations.add(self.imports[name])

    def _note_seam(self, call: ast.Call) -> None:
        resolved = resolve_call(call, self.imports, self.module, self._top_level)
        if resolved is None:
            return
        if not (
            resolved in _SEAM_NAMES
            or any(resolved.endswith(suffix) for suffix in _SEAM_SUFFIXES)
        ):
            return
        if not call.args:
            return
        fn_arg = call.args[0]
        candidates: List[ast.expr] = [fn_arg]
        if isinstance(fn_arg, ast.IfExp):
            candidates = [fn_arg.body, fn_arg.orelse]
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                origin = self.imports.get(candidate.id)
                if origin is None:
                    origin = f"{self.module}.{candidate.id}"
                self._seam_workers.append(origin)


def build_module_index(
    path: "Path | str", source: str, tree: ast.Module, module: Optional[str] = None
) -> ModuleIndex:
    """Extract one module's shard of the project index."""
    name = module if module is not None else module_name_for(path)
    return _ModuleExtractor(name, str(path), source, tree).run()


class ProjectIndex:
    """Cross-module view over a set of :class:`ModuleIndex` shards."""

    def __init__(self, shards: Sequence[ModuleIndex]) -> None:
        self.modules: Dict[str, ModuleIndex] = {s.module: s for s in shards}
        self._functions: Dict[str, FunctionInfo] = {}
        self._by_terminal: Dict[str, List[str]] = {}
        for shard in self.modules.values():
            for qualname, info in shard.functions.items():
                full = f"{shard.module}.{qualname}"
                self._functions[full] = info
                self._by_terminal.setdefault(info.name, []).append(full)
        self._serialized_reachable: Optional[Set[str]] = None
        self._raw_writer_params: Optional[Dict[str, Set[int]]] = None

    # -- lookups --------------------------------------------------------------

    @property
    def functions(self) -> Mapping[str, FunctionInfo]:
        return self._functions

    def resolve_function(self, dotted: str) -> List[str]:
        """Full qualnames matching a resolved call target."""
        if dotted in self._functions:
            return [dotted]
        if dotted.startswith("*."):
            return list(self._by_terminal.get(dotted[2:], ()))
        # An import origin like ``repro.runtime.atomic_write_text`` may
        # point at a re-export; fall back to the terminal name.
        terminal = dotted.rsplit(".", 1)[-1]
        return [
            full
            for full in self._by_terminal.get(terminal, ())
            if full.rsplit(".", 1)[0].split(".")[0] == dotted.split(".")[0]
        ]

    # -- derived interprocedural facts ----------------------------------------

    @property
    def serialized_reachable(self) -> Set[str]:
        """Functions whose output can feed a serialized/merged artifact.

        The seed set is every sink function; the closure adds everything
        a sink (transitively) calls, because a callee's return value can
        flow into the sink's output.
        """
        if self._serialized_reachable is None:
            reachable: Set[str] = {
                full for full, info in self._functions.items() if info.is_sink
            }
            frontier = list(reachable)
            while frontier:
                current = frontier.pop()
                for callee in self._functions[current].calls:
                    for full in self.resolve_function(callee):
                        if full not in reachable:
                            reachable.add(full)
                            frontier.append(full)
            self._serialized_reachable = reachable
        return self._serialized_reachable

    @property
    def worker_functions(self) -> Set[str]:
        """Full qualnames of functions shipped across the pool seam."""
        workers: Set[str] = set()
        for shard in self.modules.values():
            for dotted in shard.seam_workers:
                resolved = self.resolve_function(dotted)
                workers.update(resolved if resolved else {dotted})
        return workers

    @property
    def raw_writer_params(self) -> Dict[str, Set[int]]:
        """Fixpoint of parameter positions that reach a raw file write."""
        if self._raw_writer_params is None:
            flows: Dict[str, Set[int]] = {
                full: set(info.raw_write_params)
                for full, info in self._functions.items()
                if info.raw_write_params
            }
            changed = True
            while changed:
                changed = False
                for full, info in self._functions.items():
                    for callee, caller_param, callee_arg in info.param_flows:
                        for target in self.resolve_function(callee):
                            if callee_arg in flows.get(target, ()):
                                mine = flows.setdefault(full, set())
                                if caller_param not in mine:
                                    mine.add(caller_param)
                                    changed = True
            self._raw_writer_params = flows
        return self._raw_writer_params

    @property
    def mutable_globals(self) -> Dict[str, int]:
        """``module.name`` -> lineno for every module-level mutable container."""
        out: Dict[str, int] = {}
        for shard in self.modules.values():
            for name, lineno in shard.mutable_globals.items():
                out[f"{shard.module}.{name}"] = lineno
        return out

    @property
    def mutated_globals(self) -> Set[str]:
        """Fully-qualified globals something in the project mutates."""
        out: Set[str] = set()
        for shard in self.modules.values():
            out.update(shard.mutated_globals)
        return out

    def is_atomic_writer(self, dotted: str) -> bool:
        """True when a resolved call target is a sanctioned atomic writer."""
        return dotted.startswith("repro.runtime") and _ATOMIC_MARKER in dotted

    def fingerprint(self) -> str:
        """Digest of the interprocedural facts rules consume.

        Findings for an *unchanged* file may be reused from cache only
        while this fingerprint is stable: it covers exactly the derived
        sets that cross module boundaries, so touching one module only
        invalidates other modules' findings when the cross-module facts
        actually moved.
        """
        summary = {
            "reachable": sorted(self.serialized_reachable),
            "workers": sorted(self.worker_functions),
            "raw_writers": {
                full: sorted(params)
                for full, params in sorted(self.raw_writer_params.items())
                if params
            },
            "mutable_globals": dict(sorted(self.mutable_globals.items())),
            "mutated_globals": sorted(self.mutated_globals),
        }
        canonical = json.dumps(summary, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class IndexCache:
    """Content-hash keyed, per-module shard + findings cache.

    Layout under the cache directory::

        shards/<module>.json     {"hash": ..., "index": <ModuleIndex>}
        findings/<module>.json   {"hash": ..., "project": ..., "rules": ...,
                                  "findings": [...]}

    A shard is valid whenever its source hash matches — shards depend on
    nothing else.  Cached findings additionally key on the project
    fingerprint and the active rule selection, because interprocedural
    rules read cross-module facts.
    """

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)
        self.shard_dir = self.root / "shards"
        self.findings_dir = self.root / "findings"
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        self.findings_dir.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _safe(module: str) -> str:
        return module.replace("/", "_").replace("\\", "_")

    # -- shards ---------------------------------------------------------------

    def load_shard(self, module: str, source_hash: str) -> Optional[ModuleIndex]:
        path = self.shard_dir / f"{self._safe(module)}.json"
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if doc.get("hash") != source_hash:
            return None
        try:
            return ModuleIndex.from_json(doc["index"])
        except (KeyError, TypeError, ValueError):
            return None

    def store_shard(self, shard: ModuleIndex) -> None:
        path = self.shard_dir / f"{self._safe(shard.module)}.json"
        doc = {"hash": shard.content_hash, "index": shard.to_json()}
        path.write_text(
            json.dumps(doc, sort_keys=True, separators=(",", ":")), encoding="utf-8"
        )

    # -- findings -------------------------------------------------------------

    def load_findings(
        self, module: str, source_hash: str, project_fp: str, rules_sig: str
    ) -> Optional[List[Dict[str, object]]]:
        path = self.findings_dir / f"{self._safe(module)}.json"
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            doc.get("hash") != source_hash
            or doc.get("project") != project_fp
            or doc.get("rules") != rules_sig
        ):
            return None
        findings = doc.get("findings")
        return findings if isinstance(findings, list) else None

    def store_findings(
        self,
        module: str,
        source_hash: str,
        project_fp: str,
        rules_sig: str,
        findings: List[Dict[str, object]],
    ) -> None:
        path = self.findings_dir / f"{self._safe(module)}.json"
        doc = {
            "hash": source_hash,
            "project": project_fp,
            "rules": rules_sig,
            "findings": findings,
        }
        path.write_text(
            json.dumps(doc, sort_keys=True, separators=(",", ":")), encoding="utf-8"
        )
