"""Rule registry: rules self-register at import time via a decorator.

Rule modules live under :mod:`repro.lint.rules`; importing that package
(done lazily by :func:`all_rules`) populates the registry.  Third-party
or test-local rules can call :func:`register_rule` directly.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Dict, List, Type, TypeVar

if TYPE_CHECKING:
    from repro.lint.engine import Rule

_REGISTRY: Dict[str, Type["Rule"]] = {}

R = TypeVar("R", bound="Type[Rule]")


def register_rule(rule_cls: R) -> R:
    """Class decorator adding a :class:`Rule` subclass to the registry.

    Raises ``ValueError`` on a duplicate rule id — ids are the stable
    public names used by ``--select``/``--ignore`` and ``noqa``.
    """
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def _ensure_builtin_rules() -> None:
    importlib.import_module("repro.lint.rules")


def all_rules() -> List[Type["Rule"]]:
    """Every registered rule class, sorted by rule id."""
    _ensure_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Type["Rule"]:
    """Look up one rule class by id (raises ``KeyError`` if unknown)."""
    _ensure_builtin_rules()
    return _REGISTRY[rule_id]
