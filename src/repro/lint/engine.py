"""Core of the lint framework: findings, rule base class, file runner.

A :class:`Rule` declares the AST node types it wants to see; the engine
parses each file once and dispatches nodes to every applicable rule in a
single walk.  Rules that need whole-file context (e.g. the public-API
drift check) override :meth:`Rule.check_file` instead.

Suppression: a ``# repro: noqa[RULE-ID]`` comment silences that rule on
its line (comma-separate several ids; bare ``# repro: noqa`` silences
every rule on the line).  Suppressions that silence nothing are reported
as ``NOQA001`` warnings so stale exemptions surface.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import (
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    Union,
)

from repro.lint.registry import all_rules

PathLike = Union[str, Path]

#: Rule id for unused-suppression warnings (the rule class lives in
#: ``repro.lint.rules.noqa`` purely so it appears in the catalog).
UNUSED_SUPPRESSION_ID = "NOQA001"

#: Rule id attached to files that fail to parse.
SYNTAX_ERROR_ID = "SYNTAX001"

_NOQA_ALL = re.compile(r"#\s*repro:\s*noqa\s*(?:$|[^\[])")
_NOQA_IDS = re.compile(r"#\s*repro:\s*noqa\[([^\]]*)\]")


class Severity(str, Enum):
    """How bad a finding is; both levels count toward the exit code."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, sortable into deterministic report order."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    fix_hint: str = ""

    def render_text(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )
        if self.fix_hint:
            text += f"\n    hint: {self.fix_hint}"
        return text

    def render_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


@dataclass
class _Suppression:
    """One noqa directive: which rules it silences and whether it fired."""

    line: int
    rule_ids: Optional[Set[str]]  # None = every rule
    used: bool = False

    def covers(self, rule_id: str) -> bool:
        return self.rule_ids is None or rule_id in self.rule_ids


class FileContext:
    """Everything a rule may want to know about the file being linted."""

    def __init__(self, path: PathLike, source: str, tree: ast.Module):
        self.path = Path(path)
        self.posix = self.path.as_posix()
        self.parts: Tuple[str, ...] = self.path.parts
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        self._numpy_aliases: Optional[Set[str]] = None
        self._from_imports: Optional[Dict[str, str]] = None

    # -- path scoping helpers ------------------------------------------------

    def in_package(self, *names: str) -> bool:
        """True when any path component matches one of ``names``.

        Lint scoping keys on directory names (``mno``, ``analysis``, …)
        so it works for both ``src/repro/mno/x.py`` and test fixtures
        living under ``tests/lint/fixtures/mno/x.py``.
        """
        return any(part in names for part in self.parts)

    def is_module(self, tail: str) -> bool:
        """True when the file path ends with ``tail`` (posix form)."""
        return self.posix.endswith(tail)

    # -- import tracking -----------------------------------------------------

    def _scan_imports(self) -> None:
        numpy_aliases: Set[str] = set()
        from_imports: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        numpy_aliases.add(local)
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    from_imports[local] = f"{node.module}.{alias.name}"
        self._numpy_aliases = numpy_aliases
        self._from_imports = from_imports

    @property
    def numpy_aliases(self) -> Set[str]:
        """Local names bound to the numpy top-level module."""
        if self._numpy_aliases is None:
            self._scan_imports()
        assert self._numpy_aliases is not None
        return self._numpy_aliases

    @property
    def from_imports(self) -> Dict[str, str]:
        """Local name -> dotted origin for every ``from x import y``."""
        if self._from_imports is None:
            self._scan_imports()
        assert self._from_imports is not None
        return self._from_imports

    def resolves_to(self, name: str, dotted: str) -> bool:
        """True when local ``name`` was imported as ``dotted``."""
        return self.from_imports.get(name) == dotted


class Rule:
    """Base class for lint rules.

    Subclasses set the class-level metadata, optionally restrict
    themselves to part of the tree via :meth:`applies_to`, and implement
    :meth:`visit` (called for every node whose type is listed in
    ``node_types``) and/or :meth:`check_file`.
    """

    rule_id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = ""
    fix_hint: ClassVar[str] = ""
    node_types: ClassVar[Tuple[type, ...]] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def finding(
        self,
        ctx: FileContext,
        line: int,
        col: int = 0,
        message: Optional[str] = None,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding pre-filled with this rule's metadata."""
        return Finding(
            path=ctx.posix,
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message if message is not None else self.summary,
            fix_hint=fix_hint if fix_hint is not None else self.fix_hint,
        )

    def finding_at(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: Optional[str] = None,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        return self.finding(
            ctx,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            fix_hint=fix_hint,
        )


@dataclass
class LintResult:
    """Outcome of linting a set of paths."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def _iter_comments(source: str) -> Iterator[Tuple[int, str]]:
    """(line, text) for every real comment token in ``source``.

    Tokenizing (rather than line-scanning) keeps noqa examples inside
    docstrings and string literals from being treated as directives.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def _parse_suppressions(source: str) -> List[_Suppression]:
    suppressions: List[_Suppression] = []
    for lineno, comment in _iter_comments(source):
        if "repro:" not in comment:
            continue
        match = _NOQA_IDS.search(comment)
        if match:
            ids = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
            suppressions.append(_Suppression(line=lineno, rule_ids=ids or None))
        elif _NOQA_ALL.search(comment):
            suppressions.append(_Suppression(line=lineno, rule_ids=None))
    return suppressions


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[Type[Rule]]:
    rules = all_rules()
    known = {rule.rule_id for rule in rules}
    for rule_id in list(select or []) + list(ignore or []):
        if rule_id not in known:
            raise ValueError(f"unknown rule id {rule_id!r}")
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.rule_id in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [rule for rule in rules if rule.rule_id not in dropped]
    return rules


def _meta_for(rule_id: str) -> Tuple[Severity, str]:
    """(severity, fix_hint) for engine-synthesized findings."""
    from repro.lint.registry import get_rule

    try:
        rule = get_rule(rule_id)
    except KeyError:
        return Severity.WARNING, ""
    return rule.severity, rule.fix_hint


def lint_source(
    source: str,
    path: PathLike = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one python source string; returns sorted findings."""
    rule_classes = _select_rules(select, ignore)
    active_ids = {rule.rule_id for rule in rule_classes}
    posix = Path(path).as_posix()

    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        severity, hint = _meta_for(SYNTAX_ERROR_ID)
        if SYNTAX_ERROR_ID not in active_ids:
            return []
        return [
            Finding(
                path=posix,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=SYNTAX_ERROR_ID,
                severity=severity,
                message=f"file does not parse: {exc.msg}",
                fix_hint=hint,
            )
        ]

    ctx = FileContext(path, source, tree)
    rules = [rule for rule in (cls() for cls in rule_classes) if rule.applies_to(ctx)]

    dispatch: Dict[type, List[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    raw: List[Finding] = []
    if dispatch:
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                raw.extend(rule.visit(node, ctx))
    for rule in rules:
        raw.extend(rule.check_file(ctx))

    suppressions = _parse_suppressions(source)
    by_line: Dict[int, List[_Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.line, []).append(sup)

    kept: List[Finding] = []
    for finding in raw:
        silenced = False
        for sup in by_line.get(finding.line, ()):
            if sup.covers(finding.rule_id):
                sup.used = True
                silenced = True
        if not silenced:
            kept.append(finding)

    if UNUSED_SUPPRESSION_ID in active_ids:
        severity, hint = _meta_for(UNUSED_SUPPRESSION_ID)
        for sup in suppressions:
            if sup.used:
                continue
            described = (
                ", ".join(sorted(sup.rule_ids)) if sup.rule_ids else "all rules"
            )
            kept.append(
                Finding(
                    path=posix,
                    line=sup.line,
                    col=0,
                    rule_id=UNUSED_SUPPRESSION_ID,
                    severity=severity,
                    message=f"unused suppression ({described}): nothing to silence here",
                    fix_hint=hint,
                )
            )

    return sorted(kept)


def lint_file(
    path: PathLike,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one file on disk."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=path, select=select, ignore=ignore)


def _iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    seen: Set[Path] = set()
    for raw_path in paths:
        path = Path(raw_path)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if any(part.startswith(".") and part not in (".", "..")
                   for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def lint_paths(
    paths: Sequence[PathLike],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every ``*.py`` file under ``paths`` (files or directories)."""
    result = LintResult()
    for path in _iter_python_files(paths):
        result.files_checked += 1
        result.findings.extend(lint_file(path, select=select, ignore=ignore))
    result.findings.sort()
    return result
