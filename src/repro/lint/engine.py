"""Core of the lint framework: findings, rule base class, file runner.

A :class:`Rule` declares the AST node types it wants to see; the engine
parses each file once and dispatches nodes to every applicable rule in a
single walk.  Rules that need whole-file context (e.g. the public-API
drift check) override :meth:`Rule.check_file` instead.

Whole-program analysis: every lint entry point carries a
:class:`repro.lint.project.ProjectIndex` — :func:`lint_paths` builds one
over all files it is given (so rules can reason interprocedurally across
the repository), while :func:`lint_source`/:func:`lint_file` build a
single-module index on the fly so the same rules degrade to intra-module
resolution.  Rules reach the index and per-scope dataflow facts through
:class:`FileContext` (``ctx.project``, ``ctx.dataflow_for``,
``ctx.in_serialized_reachable``, …).

With ``cache_dir`` set, :func:`lint_paths` keys per-module index shards
and findings on content hashes (see :class:`repro.lint.project.IndexCache`):
a warm run re-parses only the modules whose bytes changed, and re-lints
only those plus any file whose *cross-module* inputs (the project
fingerprint) moved.

Suppression: a ``# repro: noqa[RULE-ID]`` comment silences that rule on
its line (comma-separate several ids; bare ``# repro: noqa`` silences
every rule on the line).  Suppressions that silence nothing are reported
as ``NOQA001`` warnings so stale exemptions surface.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import (
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    Union,
)

from repro.lint.dataflow import ScopeDataflow, ScopeNode
from repro.lint.project import (
    IndexCache,
    ModuleIndex,
    ProjectIndex,
    build_module_index,
    content_hash,
    module_name_for,
    resolve_call,
)
from repro.lint.registry import all_rules

PathLike = Union[str, Path]

#: Rule id for unused-suppression warnings (the rule class lives in
#: ``repro.lint.rules.noqa`` purely so it appears in the catalog).
UNUSED_SUPPRESSION_ID = "NOQA001"

#: Rule id attached to files that fail to parse.
SYNTAX_ERROR_ID = "SYNTAX001"

_NOQA_ALL = re.compile(r"#\s*repro:\s*noqa\s*(?:$|[^\[])")
_NOQA_IDS = re.compile(r"#\s*repro:\s*noqa\[([^\]]*)\]")


class Severity(str, Enum):
    """How bad a finding is; both levels count toward the exit code."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, sortable into deterministic report order."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    fix_hint: str = ""

    def render_text(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )
        if self.fix_hint:
            text += f"\n    hint: {self.fix_hint}"
        return text

    def render_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "Finding":
        return cls(
            path=str(doc["path"]),
            line=int(doc["line"]),  # type: ignore[arg-type]
            col=int(doc["col"]),  # type: ignore[arg-type]
            rule_id=str(doc["rule"]),
            severity=Severity(str(doc["severity"])),
            message=str(doc["message"]),
            fix_hint=str(doc.get("fix_hint", "")),
        )


@dataclass
class _Suppression:
    """One noqa directive: which rules it silences and whether it fired."""

    line: int
    rule_ids: Optional[Set[str]]  # None = every rule
    used: bool = False

    def covers(self, rule_id: str) -> bool:
        return self.rule_ids is None or rule_id in self.rule_ids


class FileContext:
    """Everything a rule may want to know about the file being linted."""

    def __init__(
        self,
        path: PathLike,
        source: str,
        tree: ast.Module,
        project: Optional[ProjectIndex] = None,
        module_index: Optional[ModuleIndex] = None,
    ):
        self.path = Path(path)
        self.posix = self.path.as_posix()
        self.parts: Tuple[str, ...] = self.path.parts
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        self.module_name = module_name_for(path)
        self._numpy_aliases: Optional[Set[str]] = None
        self._from_imports: Optional[Dict[str, str]] = None
        self._module_index = module_index
        self._project = project
        self._scopes: Optional[Dict[int, Tuple[ast.AST, Optional[str]]]] = None
        self._parents: Dict[int, ast.AST] = {}
        self._dataflows: Dict[int, ScopeDataflow] = {}

    # -- path scoping helpers ------------------------------------------------

    def in_package(self, *names: str) -> bool:
        """True when any path component matches one of ``names``.

        Lint scoping keys on directory names (``mno``, ``analysis``, …)
        so it works for both ``src/repro/mno/x.py`` and test fixtures
        living under ``tests/lint/fixtures/mno/x.py``.
        """
        return any(part in names for part in self.parts)

    def is_module(self, tail: str) -> bool:
        """True when the file path ends with ``tail`` (posix form)."""
        return self.posix.endswith(tail)

    # -- import tracking -----------------------------------------------------

    def _scan_imports(self) -> None:
        numpy_aliases: Set[str] = set()
        from_imports: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        numpy_aliases.add(local)
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    from_imports[local] = f"{node.module}.{alias.name}"
        self._numpy_aliases = numpy_aliases
        self._from_imports = from_imports

    @property
    def numpy_aliases(self) -> Set[str]:
        """Local names bound to the numpy top-level module."""
        if self._numpy_aliases is None:
            self._scan_imports()
        assert self._numpy_aliases is not None
        return self._numpy_aliases

    @property
    def from_imports(self) -> Dict[str, str]:
        """Local name -> dotted origin for every ``from x import y``."""
        if self._from_imports is None:
            self._scan_imports()
        assert self._from_imports is not None
        return self._from_imports

    def resolves_to(self, name: str, dotted: str) -> bool:
        """True when local ``name`` was imported as ``dotted``."""
        return self.from_imports.get(name) == dotted

    # -- whole-program context -----------------------------------------------

    @property
    def module_index(self) -> ModuleIndex:
        """This file's shard of the project index (built lazily)."""
        if self._module_index is None:
            self._module_index = build_module_index(
                self.path, self.source, self.tree, self.module_name
            )
        return self._module_index

    @property
    def project(self) -> ProjectIndex:
        """The project index; a single-module view outside lint_paths."""
        if self._project is None:
            self._project = ProjectIndex([self.module_index])
        return self._project

    def _scope_map(self) -> Dict[int, Tuple[ast.AST, Optional[str]]]:
        """node id -> (innermost scope node, top-level function qualname)."""
        if self._scopes is not None:
            return self._scopes
        scopes: Dict[int, Tuple[ast.AST, Optional[str]]] = {id(self.tree): (self.tree, None)}

        def rec(
            node: ast.AST,
            scope: ast.AST,
            qual: Optional[str],
            class_name: Optional[str],
        ) -> None:
            for child in ast.iter_child_nodes(node):
                scopes[id(child)] = (scope, qual)
                self._parents[id(child)] = node
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if qual is None:
                        child_qual = (
                            f"{class_name}.{child.name}" if class_name else child.name
                        )
                    else:
                        # Nested function: interprocedural facts are
                        # tracked at the top-level unit that contains it.
                        child_qual = qual
                    rec(child, child, child_qual, None)
                elif isinstance(child, ast.Lambda):
                    rec(child, child, qual, class_name)
                elif isinstance(child, ast.ClassDef):
                    rec(
                        child,
                        scope,
                        qual,
                        child.name if qual is None else class_name,
                    )
                else:
                    rec(child, scope, qual, class_name)

        rec(self.tree, self.tree, None, None)
        self._scopes = scopes
        return scopes

    def scope_of(self, node: ast.AST) -> ast.AST:
        """The innermost function (or module) whose body contains ``node``."""
        return self._scope_map().get(id(node), (self.tree, None))[0]

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST node directly containing ``node`` (None for the root)."""
        self._scope_map()
        return self._parents.get(id(node))

    def function_qualname(self, node: ast.AST) -> Optional[str]:
        """Module-local qualname of the top-level unit containing ``node``.

        ``None`` means module-level code.  Nested functions report their
        enclosing top-level function/method, matching the granularity of
        the project index.
        """
        return self._scope_map().get(id(node), (self.tree, None))[1]

    def dataflow_for(self, node: ast.AST) -> ScopeDataflow:
        """Cached :class:`ScopeDataflow` for ``node``'s enclosing scope."""
        scope = self.scope_of(node)
        key = id(scope)
        if key not in self._dataflows:
            self._dataflows[key] = ScopeDataflow(scope)  # type: ignore[arg-type]
        return self._dataflows[key]

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Best-effort dotted target of a call (see project.resolve_call)."""
        qual = self.function_qualname(call)
        self_class = qual.rsplit(".", 1)[0] if qual and "." in qual else None
        return resolve_call(
            call,
            self.module_index.imports,
            self.module_name,
            self.module_index.functions.keys()
            | {q.split(".")[0] for q in self.module_index.functions},
            self_class,
        )

    def full_qualname(self, local_qualname: str) -> str:
        return f"{self.module_name}.{local_qualname}"

    def in_serialized_reachable(self, node: ast.AST) -> bool:
        """Can values computed at ``node`` feed a serialized/merged output?

        Module-level code counts as reachable: it builds the constants
        everything else reads.
        """
        qual = self.function_qualname(node)
        if qual is None:
            return True
        return self.full_qualname(qual) in self.project.serialized_reachable

    def worker_qualnames(self) -> Set[str]:
        """Module-local qualnames of this file's pool-seam worker functions."""
        workers = self.project.worker_functions
        prefix = f"{self.module_name}."
        return {full[len(prefix):] for full in workers if full.startswith(prefix)}


class Rule:
    """Base class for lint rules.

    Subclasses set the class-level metadata, optionally restrict
    themselves to part of the tree via :meth:`applies_to`, and implement
    :meth:`visit` (called for every node whose type is listed in
    ``node_types``) and/or :meth:`check_file`.
    """

    rule_id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = ""
    fix_hint: ClassVar[str] = ""
    node_types: ClassVar[Tuple[type, ...]] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def finding(
        self,
        ctx: FileContext,
        line: int,
        col: int = 0,
        message: Optional[str] = None,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        """Build a finding pre-filled with this rule's metadata."""
        return Finding(
            path=ctx.posix,
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message if message is not None else self.summary,
            fix_hint=fix_hint if fix_hint is not None else self.fix_hint,
        )

    def finding_at(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: Optional[str] = None,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        return self.finding(
            ctx,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            fix_hint=fix_hint,
        )


@dataclass
class LintResult:
    """Outcome of linting a set of paths."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: modules whose index shard was (re)built this run
    indexed_modules: List[str] = field(default_factory=list)
    #: modules whose index shard was served from the cache
    cached_modules: List[str] = field(default_factory=list)
    #: files whose findings were recomputed (vs served from cache)
    files_reanalyzed: int = 0

    @property
    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def _iter_comments(source: str) -> Iterator[Tuple[int, str]]:
    """(line, text) for every real comment token in ``source``.

    Tokenizing (rather than line-scanning) keeps noqa examples inside
    docstrings and string literals from being treated as directives.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def _parse_suppressions(source: str) -> List[_Suppression]:
    suppressions: List[_Suppression] = []
    for lineno, comment in _iter_comments(source):
        if "repro:" not in comment:
            continue
        match = _NOQA_IDS.search(comment)
        if match:
            ids = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
            suppressions.append(_Suppression(line=lineno, rule_ids=ids or None))
        elif _NOQA_ALL.search(comment):
            suppressions.append(_Suppression(line=lineno, rule_ids=None))
    return suppressions


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[Type[Rule]]:
    rules = all_rules()
    known = {rule.rule_id for rule in rules}
    for rule_id in list(select or []) + list(ignore or []):
        if rule_id not in known:
            raise ValueError(f"unknown rule id {rule_id!r}")
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.rule_id in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [rule for rule in rules if rule.rule_id not in dropped]
    return rules


def _meta_for(rule_id: str) -> Tuple[Severity, str]:
    """(severity, fix_hint) for engine-synthesized findings."""
    from repro.lint.registry import get_rule

    try:
        rule = get_rule(rule_id)
    except KeyError:
        return Severity.WARNING, ""
    return rule.severity, rule.fix_hint


def _syntax_finding(posix: str, exc: SyntaxError, active_ids: Set[str]) -> List[Finding]:
    if SYNTAX_ERROR_ID not in active_ids:
        return []
    severity, hint = _meta_for(SYNTAX_ERROR_ID)
    return [
        Finding(
            path=posix,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=SYNTAX_ERROR_ID,
            severity=severity,
            message=f"file does not parse: {exc.msg}",
            fix_hint=hint,
        )
    ]


def _lint_tree(
    source: str,
    path: PathLike,
    tree: ast.Module,
    rule_classes: List[Type[Rule]],
    project: Optional[ProjectIndex] = None,
    module_index: Optional[ModuleIndex] = None,
) -> List[Finding]:
    """Run the selected rules over one parsed module."""
    active_ids = {rule.rule_id for rule in rule_classes}
    posix = Path(path).as_posix()
    ctx = FileContext(path, source, tree, project=project, module_index=module_index)
    rules = [rule for rule in (cls() for cls in rule_classes) if rule.applies_to(ctx)]

    dispatch: Dict[type, List[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    raw: List[Finding] = []
    if dispatch:
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                raw.extend(rule.visit(node, ctx))
    for rule in rules:
        raw.extend(rule.check_file(ctx))

    suppressions = _parse_suppressions(source)
    by_line: Dict[int, List[_Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.line, []).append(sup)

    kept: List[Finding] = []
    for finding in raw:
        silenced = False
        for sup in by_line.get(finding.line, ()):
            if sup.covers(finding.rule_id):
                sup.used = True
                silenced = True
        if not silenced:
            kept.append(finding)

    if UNUSED_SUPPRESSION_ID in active_ids:
        severity, hint = _meta_for(UNUSED_SUPPRESSION_ID)
        for sup in suppressions:
            if sup.used:
                continue
            described = (
                ", ".join(sorted(sup.rule_ids)) if sup.rule_ids else "all rules"
            )
            kept.append(
                Finding(
                    path=posix,
                    line=sup.line,
                    col=0,
                    rule_id=UNUSED_SUPPRESSION_ID,
                    severity=severity,
                    message=f"unused suppression ({described}): nothing to silence here",
                    fix_hint=hint,
                )
            )

    return sorted(kept)


def lint_source(
    source: str,
    path: PathLike = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    project: Optional[ProjectIndex] = None,
) -> List[Finding]:
    """Lint one python source string; returns sorted findings.

    Without an explicit ``project``, a single-module index is built on
    the fly so interprocedural rules see at least this file's own call
    graph.
    """
    rule_classes = _select_rules(select, ignore)
    active_ids = {rule.rule_id for rule in rule_classes}
    posix = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        return _syntax_finding(posix, exc, active_ids)
    return _lint_tree(source, path, tree, rule_classes, project=project)


def lint_file(
    path: PathLike,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    project: Optional[ProjectIndex] = None,
) -> List[Finding]:
    """Lint one file on disk."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=path, select=select, ignore=ignore, project=project)


def _iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    seen: Set[Path] = set()
    for raw_path in paths:
        path = Path(raw_path)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if any(part.startswith(".") and part not in (".", "..")
                   for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def _rules_signature(rule_classes: List[Type[Rule]]) -> str:
    joined = ",".join(sorted(rule.rule_id for rule in rule_classes))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def lint_paths(
    paths: Sequence[PathLike],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    cache_dir: Optional[PathLike] = None,
) -> LintResult:
    """Lint every ``*.py`` file under ``paths`` as one program.

    All files are indexed into a shared :class:`ProjectIndex` first, so
    interprocedural rules (DET*, SEAM*, DUR001) resolve calls across
    module boundaries.  With ``cache_dir``, index shards and findings
    are reused for unchanged files (see the module docstring).
    """
    rule_classes = _select_rules(select, ignore)
    active_ids = {rule.rule_id for rule in rule_classes}
    rules_sig = _rules_signature(rule_classes)
    cache = IndexCache(cache_dir) if cache_dir is not None else None
    result = LintResult()

    @dataclass
    class _Entry:
        path: Path
        posix: str
        module: str
        source: str
        source_hash: str
        tree: Optional[ast.Module] = None
        shard: Optional[ModuleIndex] = None
        syntax_error: Optional[SyntaxError] = None

    entries: List[_Entry] = []
    for path in _iter_python_files(paths):
        source = Path(path).read_text(encoding="utf-8")
        entry = _Entry(
            path=Path(path),
            posix=Path(path).as_posix(),
            module=module_name_for(path),
            source=source,
            source_hash=content_hash(source),
        )
        entry.shard = (
            cache.load_shard(entry.module, entry.source_hash) if cache else None
        )
        if entry.shard is None:
            try:
                entry.tree = ast.parse(source, filename=entry.posix)
            except SyntaxError as exc:
                entry.syntax_error = exc
            else:
                entry.shard = build_module_index(
                    entry.path, source, entry.tree, entry.module
                )
                if cache:
                    cache.store_shard(entry.shard)
            result.indexed_modules.append(entry.module)
        else:
            result.cached_modules.append(entry.module)
        entries.append(entry)

    project = ProjectIndex([e.shard for e in entries if e.shard is not None])
    project_fp = project.fingerprint()

    for entry in entries:
        result.files_checked += 1
        if entry.syntax_error is not None:
            result.files_reanalyzed += 1
            result.findings.extend(
                _syntax_finding(entry.posix, entry.syntax_error, active_ids)
            )
            continue
        if cache is not None:
            cached = cache.load_findings(
                entry.module, entry.source_hash, project_fp, rules_sig
            )
            if cached is not None:
                result.findings.extend(Finding.from_json(doc) for doc in cached)
                continue
        if entry.tree is None:
            try:
                entry.tree = ast.parse(entry.source, filename=entry.posix)
            except SyntaxError as exc:  # pragma: no cover - hash-stable reparse
                result.files_reanalyzed += 1
                result.findings.extend(_syntax_finding(entry.posix, exc, active_ids))
                continue
        result.files_reanalyzed += 1
        findings = _lint_tree(
            entry.source,
            entry.path,
            entry.tree,
            rule_classes,
            project=project,
            module_index=entry.shard,
        )
        if cache is not None:
            cache.store_findings(
                entry.module,
                entry.source_hash,
                project_fp,
                rules_sig,
                [f.render_json() for f in findings],
            )
        result.findings.extend(findings)

    result.findings.sort()
    return result


__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "ScopeDataflow",
    "ScopeNode",
    "Severity",
    "lint_file",
    "lint_paths",
    "lint_source",
]
