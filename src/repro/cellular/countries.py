"""Country registry: ISO codes, MCCs, regions and roaming regulation.

The paper's analyses pivot on the country level constantly — home country
of inbound roamers (Fig. 5), visited countries of the M2M platform (Fig. 2),
the EU "roam like at home" regulation that explains the Spanish HMNO's
footprint, and Latin-American roaming restrictions that keep the Mexican
and Argentinian fleets home-bound.  This module provides the country
substrate those analyses join against.

Coordinates are approximate country centroids — good enough to give
sector grids a plausible geography for the radius-of-gyration analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional


class Region(str, Enum):
    """Coarse world region, used for roaming-regulation defaults."""

    EUROPE = "europe"
    LATIN_AMERICA = "latin_america"
    NORTH_AMERICA = "north_america"
    ASIA = "asia"
    OCEANIA = "oceania"
    AFRICA = "africa"
    MIDDLE_EAST = "middle_east"


@dataclass(frozen=True)
class Country:
    """A country participating in the cellular ecosystem.

    ``mcc`` is the primary Mobile Country Code (some real countries have
    several; one is enough for our purposes).  ``eu_roaming`` marks
    membership in the EU roam-like-at-home zone; ``roaming_restricted``
    marks markets (per the paper, parts of Latin America) whose local
    rules discourage permanent roaming.
    """

    iso: str
    name: str
    mcc: int
    region: Region
    lat: float
    lon: float
    radius_km: float = 300.0
    eu_roaming: bool = False
    roaming_restricted: bool = False

    def __post_init__(self) -> None:
        if len(self.iso) != 2 or not self.iso.isupper():
            raise ValueError(f"ISO code must be 2 uppercase letters: {self.iso!r}")
        if not 100 <= self.mcc <= 999:
            raise ValueError(f"MCC must be 3 digits, got {self.mcc}")


class CountryRegistry:
    """Lookup table of countries by ISO code and by MCC."""

    def __init__(self, countries: List[Country]) -> None:
        self._by_iso: Dict[str, Country] = {}
        self._by_mcc: Dict[int, Country] = {}
        for country in countries:
            if country.iso in self._by_iso:
                raise ValueError(f"duplicate ISO code {country.iso}")
            if country.mcc in self._by_mcc:
                raise ValueError(f"duplicate MCC {country.mcc}")
            self._by_iso[country.iso] = country
            self._by_mcc[country.mcc] = country

    def __len__(self) -> int:
        return len(self._by_iso)

    def __iter__(self) -> Iterator[Country]:
        return iter(self._by_iso.values())

    def __contains__(self, iso: str) -> bool:
        return iso in self._by_iso

    def by_iso(self, iso: str) -> Country:
        try:
            return self._by_iso[iso]
        except KeyError:
            raise KeyError(f"unknown country ISO code {iso!r}") from None

    def by_mcc(self, mcc: int) -> Optional[Country]:
        """Return the country for an MCC, or None if unknown."""
        return self._by_mcc.get(mcc)

    def in_region(self, region: Region) -> List[Country]:
        return [c for c in self if c.region == region]


# MCCs below follow the real ITU allocation where practical so that the
# generated identifiers read plausibly (e.g. 214 = Spain, 234 = UK).
_COUNTRY_ROWS = [
    # iso, name, mcc, region, lat, lon, radius_km, eu, restricted
    ("ES", "Spain", 214, Region.EUROPE, 40.4, -3.7, 450, True, False),
    ("GB", "United Kingdom", 234, Region.EUROPE, 52.5, -1.5, 400, False, False),
    ("DE", "Germany", 262, Region.EUROPE, 51.1, 10.4, 400, True, False),
    ("FR", "France", 208, Region.EUROPE, 46.6, 2.4, 450, True, False),
    ("IT", "Italy", 222, Region.EUROPE, 42.8, 12.6, 400, True, False),
    ("NL", "Netherlands", 204, Region.EUROPE, 52.2, 5.5, 150, True, False),
    ("SE", "Sweden", 240, Region.EUROPE, 60.1, 15.0, 500, True, False),
    ("NO", "Norway", 242, Region.EUROPE, 61.0, 9.0, 500, False, False),
    ("PT", "Portugal", 268, Region.EUROPE, 39.6, -8.0, 250, True, False),
    ("IE", "Ireland", 272, Region.EUROPE, 53.2, -7.7, 180, True, False),
    ("BE", "Belgium", 206, Region.EUROPE, 50.6, 4.5, 120, True, False),
    ("CH", "Switzerland", 228, Region.EUROPE, 46.8, 8.2, 150, False, False),
    ("AT", "Austria", 232, Region.EUROPE, 47.6, 14.1, 200, True, False),
    ("PL", "Poland", 260, Region.EUROPE, 52.1, 19.4, 350, True, False),
    ("CZ", "Czechia", 230, Region.EUROPE, 49.8, 15.5, 200, True, False),
    ("RO", "Romania", 226, Region.EUROPE, 45.9, 25.0, 280, True, False),
    ("GR", "Greece", 202, Region.EUROPE, 39.1, 22.9, 250, True, False),
    ("DK", "Denmark", 238, Region.EUROPE, 56.0, 10.0, 150, True, False),
    ("FI", "Finland", 244, Region.EUROPE, 64.0, 26.0, 450, True, False),
    ("HU", "Hungary", 216, Region.EUROPE, 47.2, 19.5, 180, True, False),
    ("MX", "Mexico", 334, Region.LATIN_AMERICA, 23.6, -102.5, 900, False, True),
    ("AR", "Argentina", 722, Region.LATIN_AMERICA, -34.6, -64.0, 1100, False, True),
    ("BR", "Brazil", 724, Region.LATIN_AMERICA, -10.8, -52.9, 1600, False, True),
    ("CL", "Chile", 730, Region.LATIN_AMERICA, -33.5, -70.7, 900, False, True),
    ("CO", "Colombia", 732, Region.LATIN_AMERICA, 4.6, -74.1, 600, False, True),
    ("PE", "Peru", 716, Region.LATIN_AMERICA, -9.2, -75.0, 700, False, True),
    ("UY", "Uruguay", 748, Region.LATIN_AMERICA, -32.8, -56.0, 250, False, True),
    ("US", "United States", 310, Region.NORTH_AMERICA, 39.8, -98.6, 2000, False, False),
    ("CA", "Canada", 302, Region.NORTH_AMERICA, 56.1, -106.3, 1800, False, False),
    ("AU", "Australia", 505, Region.OCEANIA, -25.3, 133.8, 1600, False, False),
    ("NZ", "New Zealand", 530, Region.OCEANIA, -41.8, 172.8, 500, False, False),
    ("JP", "Japan", 440, Region.ASIA, 36.2, 138.3, 600, False, False),
    ("KR", "South Korea", 450, Region.ASIA, 36.5, 127.8, 250, False, False),
    ("CN", "China", 460, Region.ASIA, 35.9, 104.2, 1800, False, False),
    ("IN", "India", 404, Region.ASIA, 21.1, 78.0, 1300, False, False),
    ("SG", "Singapore", 525, Region.ASIA, 1.35, 103.8, 30, False, False),
    ("TR", "Turkey", 286, Region.MIDDLE_EAST, 39.0, 35.2, 550, False, False),
    ("AE", "United Arab Emirates", 424, Region.MIDDLE_EAST, 24.0, 54.0, 200, False, False),
    ("ZA", "South Africa", 655, Region.AFRICA, -29.0, 25.1, 650, False, False),
    ("MA", "Morocco", 604, Region.AFRICA, 31.8, -7.1, 400, False, False),
    ("EG", "Egypt", 602, Region.AFRICA, 26.8, 30.8, 500, False, False),
]


def default_countries() -> CountryRegistry:
    """Build the default world model used by the simulators.

    42 countries spanning every region; enough breadth to reproduce the
    "ES SIMs active in 77 countries" flavour of the paper at reduced
    scale while keeping generated datasets small.
    """
    countries = [
        Country(
            iso=iso,
            name=name,
            mcc=mcc,
            region=region,
            lat=lat,
            lon=lon,
            radius_km=radius,
            eu_roaming=eu,
            roaming_restricted=restricted,
        )
        for iso, name, mcc, region, lat, lon, radius, eu, restricted in _COUNTRY_ROWS
    ]
    return CountryRegistry(countries)
