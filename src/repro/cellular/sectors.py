"""Cell sectors and per-operator sector catalogs.

The MNO's measurement pipeline records, per radio event, the sector that
handled the communication; mobility metrics then map sector IDs back to
physical coordinates via the operator's sector catalog (§4.1).  We model
a sector as a (site position, RAT) pair and give each operator a grid of
sites scattered inside its country footprint, with 2G/3G/4G collocated
per site where the operator supports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.cellular.geo import GeoPoint, haversine_km, scatter_points
from repro.cellular.operators import Operator
from repro.cellular.rats import RAT


@dataclass(frozen=True)
class Sector:
    """A radio sector: where a device's traffic touches the ground."""

    sector_id: int
    plmn_str: str
    rat: RAT
    position: GeoPoint


class SectorCatalog:
    """All sectors of one operator, with nearest-sector queries.

    The catalog is what lets the devices-catalog builder convert the
    sector IDs in radio logs into coordinates for centroid/gyration
    computation.
    """

    def __init__(self, operator: Operator, sectors: Sequence[Sector]) -> None:
        self.operator = operator
        self._sectors: List[Sector] = list(sectors)
        self._by_id: Dict[int, Sector] = {s.sector_id: s for s in self._sectors}
        if len(self._by_id) != len(self._sectors):
            raise ValueError("duplicate sector IDs in catalog")
        self._by_rat: Dict[RAT, List[Sector]] = {rat: [] for rat in RAT}
        for sector in self._sectors:
            self._by_rat[sector.rat].append(sector)
        # Flat arrays for fast vectorized nearest-sector lookups.
        self._positions: Dict[RAT, np.ndarray] = {
            rat: np.array([[s.position.lat, s.position.lon] for s in sectors_])
            if sectors_
            else np.empty((0, 2))
            for rat, sectors_ in self._by_rat.items()
        }

    def __len__(self) -> int:
        return len(self._sectors)

    def __iter__(self) -> Iterator[Sector]:
        return iter(self._sectors)

    def by_id(self, sector_id: int) -> Sector:
        try:
            return self._by_id[sector_id]
        except KeyError:
            raise KeyError(
                f"unknown sector {sector_id} for {self.operator.name}"
            ) from None

    def sectors_for(self, rat: RAT) -> List[Sector]:
        return list(self._by_rat[rat])

    def nearest(self, point: GeoPoint, rat: RAT) -> Optional[Sector]:
        """Return the nearest sector of the given RAT, or None if the
        operator has no sectors of that generation."""
        candidates = self._by_rat[rat]
        if not candidates:
            return None
        coords = self._positions[rat]
        # Equirectangular approximation is fine for ranking nearby sites.
        dlat = coords[:, 0] - point.lat
        dlon = (coords[:, 1] - point.lon) * np.cos(np.radians(point.lat))
        index = int(np.argmin(dlat * dlat + dlon * dlon))
        return candidates[index]

    def position_of(self, sector_id: int) -> GeoPoint:
        return self.by_id(sector_id).position

    def max_intersite_km(self) -> float:
        """Rough grid coarseness: max distance from country center to a site."""
        center = GeoPoint(self.operator.country.lat, self.operator.country.lon)
        return max(
            (haversine_km(s.position, center) for s in self._sectors), default=0.0
        )


def build_sector_catalog(
    operator: Operator,
    sites: int,
    rng: np.random.Generator,
    sector_id_base: int = 0,
) -> SectorCatalog:
    """Scatter ``sites`` radio sites in the operator's country and emit
    one sector per supported RAT per site.

    Sector IDs are globally unique when callers pass non-overlapping
    ``sector_id_base`` ranges (the builder consumes at most
    ``sites * len(RAT)`` IDs).
    """
    if operator.is_mvno:
        raise ValueError(f"MVNO {operator.name} has no radio network")
    if sites <= 0:
        raise ValueError("sites must be positive")
    center = GeoPoint(operator.country.lat, operator.country.lon)
    positions = scatter_points(center, operator.country.radius_km, sites, rng)
    sectors: List[Sector] = []
    next_id = sector_id_base
    for position in positions:
        for rat in sorted(operator.rats, key=lambda r: r.generation):
            sectors.append(
                Sector(
                    sector_id=next_id,
                    plmn_str=str(operator.plmn),
                    rat=rat,
                    position=position,
                )
            )
            next_id += 1
    return SectorCatalog(operator, sectors)
