"""Radio Access Technologies and the devices-catalog radio-flags bitmask.

The paper summarizes each device's radio activity into "radio-flags, a
series of three 1-bit flags which are set to 1 if the device has
successfully communicated with 2G, 3G, 4G sectors respectively".
:class:`RadioFlags` implements exactly that encoding, plus the handful of
set-operations the network-usage analysis (Fig. 9) needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Iterable, Tuple


class RAT(str, Enum):
    """A Radio Access Technology generation."""

    GSM = "2G"
    UMTS = "3G"
    LTE = "4G"

    @property
    def generation(self) -> int:
        return {"2G": 2, "3G": 3, "4G": 4}[self.value]

    @classmethod
    def from_generation(cls, generation: int) -> "RAT":
        try:
            return {2: cls.GSM, 3: cls.UMTS, 4: cls.LTE}[generation]
        except KeyError:
            raise ValueError(f"unsupported RAT generation {generation}") from None


_RAT_BITS = {RAT.GSM: 0b001, RAT.UMTS: 0b010, RAT.LTE: 0b100}


@dataclass(frozen=True)
class RadioFlags:
    """Three 1-bit flags recording successful 2G/3G/4G activity.

    Stored as a 3-bit mask (bit 0 = 2G, bit 1 = 3G, bit 2 = 4G), matching
    the devices-catalog encoding in the paper (§4.1).
    """

    mask: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.mask <= 0b111:
            raise ValueError(f"radio-flags mask must fit in 3 bits, got {self.mask}")

    @classmethod
    def from_rats(cls, rats: Iterable[RAT]) -> "RadioFlags":
        mask = 0
        for rat in rats:
            mask |= _RAT_BITS[rat]
        return cls(mask)

    def with_rat(self, rat: RAT) -> "RadioFlags":
        """Return a copy with ``rat``'s bit set."""
        return RadioFlags(self.mask | _RAT_BITS[rat])

    def union(self, other: "RadioFlags") -> "RadioFlags":
        return RadioFlags(self.mask | other.mask)

    def has(self, rat: RAT) -> bool:
        return bool(self.mask & _RAT_BITS[rat])

    @property
    def rats(self) -> FrozenSet[RAT]:
        return frozenset(rat for rat, bit in _RAT_BITS.items() if self.mask & bit)

    @property
    def is_empty(self) -> bool:
        return self.mask == 0

    def only(self, rat: RAT) -> bool:
        """True if exactly this one RAT bit is set (e.g. "2G-only")."""
        return self.mask == _RAT_BITS[rat]

    def as_tuple(self) -> Tuple[int, int, int]:
        """Return (flag_2g, flag_3g, flag_4g) as 0/1 ints."""
        return (
            int(self.has(RAT.GSM)),
            int(self.has(RAT.UMTS)),
            int(self.has(RAT.LTE)),
        )

    def label(self) -> str:
        """A human-readable usage-pattern label, e.g. "2G-only", "3G+4G".

        These labels are the categories of Fig. 9's bars.
        """
        if self.is_empty:
            return "none"
        parts = sorted((rat.value for rat in self.rats), key=lambda v: int(v[0]))
        if len(parts) == 1:
            return f"{parts[0]}-only"
        return "+".join(parts)

    def __str__(self) -> str:
        return self.label()
