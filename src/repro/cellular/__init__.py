"""Cellular-ecosystem substrate: numbering, operators, radio, geography.

This subpackage models the pieces of the cellular ecosystem that the paper's
datasets reference but never explain: PLMN numbering (MCC/MNC), subscriber
and equipment identifiers (IMSI/IMEI/TAC), country and operator registries,
radio access technologies, cell-sector geometry, and a synthetic GSMA-style
TAC device catalog.

Everything downstream (signaling simulation, the M2M platform, the visited
MNO, and the classification pipeline) is built on these primitives.
"""

from repro.cellular.countries import Country, CountryRegistry, default_countries
from repro.cellular.identifiers import (
    IMEI,
    IMSI,
    PLMN,
    hash_device_id,
    luhn_check_digit,
    mcc_of,
    plmn_candidates,
)
from repro.cellular.operators import Operator, OperatorRegistry, OperatorType
from repro.cellular.rats import RAT, RadioFlags
from repro.cellular.geo import GeoPoint, haversine_km, weighted_centroid
from repro.cellular.sectors import Sector, SectorCatalog
from repro.cellular.tac_db import DeviceModel, TACDatabase, GSMALabel

__all__ = [
    "Country",
    "CountryRegistry",
    "default_countries",
    "DeviceModel",
    "GeoPoint",
    "GSMALabel",
    "IMEI",
    "IMSI",
    "Operator",
    "OperatorRegistry",
    "OperatorType",
    "PLMN",
    "RAT",
    "RadioFlags",
    "Sector",
    "SectorCatalog",
    "TACDatabase",
    "hash_device_id",
    "haversine_km",
    "luhn_check_digit",
    "mcc_of",
    "plmn_candidates",
    "weighted_centroid",
]
