"""Synthetic GSMA-style TAC device catalog.

The paper joins every observed device's TAC (the leading 8 digits of its
IMEI) against a commercial GSMA database yielding manufacturer, model,
operating system, supported radio bands and a coarse device label.  The
coarse labels are deliberately unhelpful for IoT — "devices other than
smartphones are mostly marked as 'modem' or 'module'" — which is exactly
why the paper needs the multi-step classifier.  Our synthetic catalog
reproduces that skew: M2M modules from the big module makers (Gemalto,
Telit, Sierra Wireless account for 75% of inbound-roaming devices in the
paper) carry only MODEM/MODULE labels, and a long tail of small vendors
pads the vendor count.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cellular.rats import RAT


class GSMALabel(str, Enum):
    """Coarse device-type label as carried by the GSMA catalog."""

    SMARTPHONE = "smartphone"
    FEATURE_PHONE = "feature phone"
    MODEM = "modem"
    MODULE = "module"
    TABLET = "tablet"
    WEARABLE = "wearable"
    UNKNOWN = "unknown"


class DeviceOS(str, Enum):
    """Operating system as recorded by the catalog.

    The paper's `smart` rule keys on "a major smartphone OS (android,
    iOS, blackberry, windows mobile)".
    """

    ANDROID = "android"
    IOS = "ios"
    BLACKBERRY = "blackberry"
    WINDOWS_MOBILE = "windows mobile"
    PROPRIETARY = "proprietary"
    RTOS = "rtos"
    NONE = "none"


SMARTPHONE_OSES = frozenset(
    {DeviceOS.ANDROID, DeviceOS.IOS, DeviceOS.BLACKBERRY, DeviceOS.WINDOWS_MOBILE}
)

# Vendors the paper names as dominating the inbound-roaming M2M population.
M2M_MODULE_VENDORS = ("Gemalto", "Telit", "Sierra Wireless")
SMARTPHONE_VENDORS = ("Samsung", "Apple", "Huawei", "Xiaomi", "LG", "Sony", "Motorola")
FEATURE_PHONE_VENDORS = ("Nokia", "Alcatel", "ZTE", "Doro")


@dataclass(frozen=True)
class DeviceModel:
    """One row of the TAC catalog: a hardware model and its properties."""

    tac: int
    manufacturer: str
    brand: str
    model_name: str
    os: DeviceOS
    bands: FrozenSet[RAT]
    label: GSMALabel

    def __post_init__(self) -> None:
        if not 0 <= self.tac < 10**8:
            raise ValueError(f"TAC must be 8 digits, got {self.tac}")
        if not self.bands:
            raise ValueError(f"model {self.model_name} must support some RAT")

    @property
    def is_smartphone_os(self) -> bool:
        return self.os in SMARTPHONE_OSES

    @property
    def property_key(self) -> Tuple[str, str]:
        """(manufacturer, model) — the key used when the classifier
        propagates an APN-derived label to "devices having the same
        properties" (§4.3)."""
        return (self.manufacturer, self.model_name)


class TACDatabase:
    """Lookup from TAC to :class:`DeviceModel`, GSMA-catalog style."""

    def __init__(self, models: Sequence[DeviceModel]) -> None:
        self._by_tac: Dict[int, DeviceModel] = {}
        for model in models:
            if model.tac in self._by_tac:
                raise ValueError(f"duplicate TAC {model.tac}")
            self._by_tac[model.tac] = model

    def __len__(self) -> int:
        return len(self._by_tac)

    def __iter__(self) -> Iterator[DeviceModel]:
        return iter(self._by_tac.values())

    def lookup(self, tac: int) -> Optional[DeviceModel]:
        """Return the model for a TAC, or None (unknown TACs do occur)."""
        return self._by_tac.get(tac)

    def by_manufacturer(self, manufacturer: str) -> List[DeviceModel]:
        return [m for m in self if m.manufacturer == manufacturer]

    def manufacturers(self) -> List[str]:
        return sorted({m.manufacturer for m in self})


class TACCatalogBuilder:
    """Deterministically allocates synthetic TAC rows per device family.

    TAC blocks follow the real convention of starting with a reporting-body
    digit pair; we use 35 (BABT) for phones and 86 for modules, purely for
    flavour.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._models: List[DeviceModel] = []
        self._next_phone_tac = 35000000
        self._next_module_tac = 86000000

    def _alloc_tac(self, module: bool) -> int:
        if module:
            tac = self._next_module_tac
            self._next_module_tac += 1
        else:
            tac = self._next_phone_tac
            self._next_phone_tac += 1
        return tac

    def add_smartphones(self, models_per_vendor: int = 6) -> List[DeviceModel]:
        added = []
        for vendor in SMARTPHONE_VENDORS:
            os_ = DeviceOS.IOS if vendor == "Apple" else DeviceOS.ANDROID
            for i in range(models_per_vendor):
                bands = {RAT.GSM, RAT.UMTS, RAT.LTE}
                added.append(
                    DeviceModel(
                        tac=self._alloc_tac(module=False),
                        manufacturer=vendor,
                        brand=vendor,
                        model_name=f"{vendor} S{i + 1}",
                        os=os_,
                        bands=frozenset(bands),
                        label=GSMALabel.SMARTPHONE,
                    )
                )
        self._models.extend(added)
        return added

    def add_feature_phones(self, models_per_vendor: int = 4) -> List[DeviceModel]:
        added = []
        for vendor in FEATURE_PHONE_VENDORS:
            for i in range(models_per_vendor):
                # Feature phones are predominantly 2G, some with 3G.
                bands = {RAT.GSM} if i % 2 == 0 else {RAT.GSM, RAT.UMTS}
                added.append(
                    DeviceModel(
                        tac=self._alloc_tac(module=False),
                        manufacturer=vendor,
                        brand=vendor,
                        model_name=f"{vendor} F{i + 1}",
                        os=DeviceOS.PROPRIETARY,
                        bands=frozenset(bands),
                        label=GSMALabel.FEATURE_PHONE,
                    )
                )
        self._models.extend(added)
        return added

    def add_m2m_modules(
        self,
        models_per_vendor: int = 5,
        lte_share: float = 0.3,
    ) -> List[DeviceModel]:
        """M2M modules: 2G-heavy band support, MODEM/MODULE labels only.

        ``lte_share`` is the fraction of module models that are 4G-capable
        (the M2M-platform fleet of §3 uses these); the rest mirror the
        2G/3G-only modules that dominate the paper's UK population.
        """
        added = []
        for vendor in M2M_MODULE_VENDORS:
            for i in range(models_per_vendor):
                roll = self._rng.random()
                if roll < lte_share:
                    bands = {RAT.GSM, RAT.UMTS, RAT.LTE}
                elif roll < lte_share + 0.25:
                    bands = {RAT.GSM, RAT.UMTS}
                else:
                    bands = {RAT.GSM}
                label = GSMALabel.MODULE if i % 2 == 0 else GSMALabel.MODEM
                added.append(
                    DeviceModel(
                        tac=self._alloc_tac(module=True),
                        manufacturer=vendor,
                        brand=vendor,
                        model_name=f"{vendor} M{i + 1}",
                        os=DeviceOS.RTOS,
                        bands=frozenset(bands),
                        label=label,
                    )
                )
        self._models.extend(added)
        return added

    def add_long_tail(self, vendors: int = 40, models_per_vendor: int = 2) -> List[DeviceModel]:
        """A long tail of small vendors with UNKNOWN labels.

        The paper observes 2,436 vendors and ~25k models — far too many
        for manual classification.  The tail is what forces the
        property-propagation step.
        """
        added = []
        for v in range(vendors):
            vendor = f"Vendor{v:03d}"
            for i in range(models_per_vendor):
                is_module = bool(self._rng.random() < 0.5)
                bands = {RAT.GSM} if is_module else {RAT.GSM, RAT.UMTS}
                added.append(
                    DeviceModel(
                        tac=self._alloc_tac(module=is_module),
                        manufacturer=vendor,
                        brand=vendor,
                        model_name=f"{vendor}-X{i}",
                        os=DeviceOS.NONE if is_module else DeviceOS.PROPRIETARY,
                        bands=frozenset(bands),
                        label=GSMALabel.UNKNOWN,
                    )
                )
        self._models.extend(added)
        return added

    def build(self) -> TACDatabase:
        return TACDatabase(self._models)


def default_tac_database(seed: int = 7) -> TACDatabase:
    """The standard synthetic catalog used by both simulators."""
    builder = TACCatalogBuilder(np.random.default_rng(seed))
    builder.add_smartphones()
    builder.add_feature_phones()
    builder.add_m2m_modules()
    builder.add_long_tail()
    return builder.build()
