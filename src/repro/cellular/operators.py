"""Mobile network operators: MNOs, MVNOs and their registry.

The roaming-label assignment in the paper (§4.2) needs to answer, for any
SIM PLMN seen on the wire: is this *our* network, one of *our hosted
MVNOs*, another operator *in our country*, or a *foreign* operator?  The
:class:`OperatorRegistry` is the lookup that answers those questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterator, List, Optional

from repro.cellular.countries import Country
from repro.cellular.identifiers import PLMN
from repro.cellular.rats import RAT


class OperatorType(str, Enum):
    MNO = "mno"
    MVNO = "mvno"


@dataclass(frozen=True)
class Operator:
    """A mobile operator (facilities-based MNO or hosted MVNO).

    ``rats`` lists the generations the operator's radio network supports.
    An MVNO has no radio network of its own; its ``host_plmn`` points to
    the MNO whose infrastructure it rides (the paper's "V" SIM-label
    devices are exactly the hosted-MVNO SIMs).
    """

    name: str
    plmn: PLMN
    country: Country
    operator_type: OperatorType = OperatorType.MNO
    rats: FrozenSet[RAT] = frozenset({RAT.GSM, RAT.UMTS, RAT.LTE})
    host_plmn: Optional[PLMN] = None

    def __post_init__(self) -> None:
        if self.plmn.mcc != self.country.mcc:
            raise ValueError(
                f"operator {self.name}: PLMN MCC {self.plmn.mcc} does not match "
                f"country {self.country.iso} MCC {self.country.mcc}"
            )
        if self.operator_type is OperatorType.MVNO and self.host_plmn is None:
            raise ValueError(f"MVNO {self.name} must declare a host PLMN")
        if self.operator_type is OperatorType.MNO and self.host_plmn is not None:
            raise ValueError(f"MNO {self.name} must not declare a host PLMN")

    @property
    def is_mvno(self) -> bool:
        return self.operator_type is OperatorType.MVNO

    def supports(self, rat: RAT) -> bool:
        return rat in self.rats


class OperatorRegistry:
    """All operators in the modelled world, keyed by PLMN."""

    def __init__(self, operators: Optional[List[Operator]] = None) -> None:
        self._by_plmn: Dict[PLMN, Operator] = {}
        for operator in operators or []:
            self.add(operator)

    def add(self, operator: Operator) -> None:
        if operator.plmn in self._by_plmn:
            raise ValueError(f"duplicate PLMN {operator.plmn}")
        if operator.is_mvno and operator.host_plmn not in self._by_plmn:
            raise ValueError(
                f"MVNO {operator.name}: host PLMN {operator.host_plmn} not registered"
            )
        self._by_plmn[operator.plmn] = operator

    def __len__(self) -> int:
        return len(self._by_plmn)

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._by_plmn.values())

    def __contains__(self, plmn: PLMN) -> bool:
        return plmn in self._by_plmn

    def by_plmn(self, plmn: PLMN) -> Operator:
        try:
            return self._by_plmn[plmn]
        except KeyError:
            raise KeyError(f"unknown PLMN {plmn}") from None

    def get(self, plmn: PLMN) -> Optional[Operator]:
        return self._by_plmn.get(plmn)

    def in_country(self, iso: str) -> List[Operator]:
        return [op for op in self if op.country.iso == iso]

    def mnos_in_country(self, iso: str) -> List[Operator]:
        return [op for op in self.in_country(iso) if not op.is_mvno]

    def mvnos_hosted_by(self, host: Operator) -> List[Operator]:
        """MVNOs riding ``host``'s radio network."""
        return [op for op in self if op.is_mvno and op.host_plmn == host.plmn]

    def host_of(self, operator: Operator) -> Operator:
        """Resolve an MVNO to its hosting MNO (identity for MNOs)."""
        if not operator.is_mvno:
            return operator
        assert operator.host_plmn is not None
        return self.by_plmn(operator.host_plmn)
