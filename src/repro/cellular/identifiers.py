"""Cellular numbering-plan identifiers: PLMN, IMSI, IMEI and TAC.

These follow the real formats (ITU E.212 for IMSI, 3GPP TS 23.003 for IMEI)
closely enough that downstream code exercises the same parsing and joining
logic an operator pipeline would:

* A :class:`PLMN` is the (MCC, MNC) pair identifying a mobile network.
* An :class:`IMSI` is ``MCC + MNC + MSIN`` (15 digits total); the leading
  PLMN digits are what roaming-label assignment keys on.
* An :class:`IMEI` is ``TAC (8 digits) + serial (6 digits) + Luhn check
  digit``; the 8-digit TAC is statically allocated to a device vendor and
  is the join key into the GSMA device catalog.

Device identifiers in exported datasets are one-way hashed, mirroring the
anonymization the paper describes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple


def luhn_check_digit(digits: str) -> int:
    """Return the Luhn check digit for a string of decimal digits.

    The IMEI's 15th digit is the Luhn check digit over the first 14.

    >>> luhn_check_digit("49015420323751")
    8
    """
    if not digits.isdigit():
        raise ValueError(f"Luhn input must be decimal digits, got {digits!r}")
    total = 0
    # Rightmost digit of the *input* is doubled (it sits next to the check
    # digit position).
    for index, char in enumerate(reversed(digits)):
        value = int(char)
        if index % 2 == 0:
            value *= 2
            if value > 9:
                value -= 9
        total += value
    return (10 - total % 10) % 10


def luhn_is_valid(digits: str) -> bool:
    """Return True if ``digits`` (payload + check digit) passes Luhn."""
    if len(digits) < 2 or not digits.isdigit():
        return False
    return luhn_check_digit(digits[:-1]) == int(digits[-1])


@dataclass(frozen=True, order=True)
class PLMN:
    """A Public Land Mobile Network identity: (MCC, MNC).

    MCC is always three digits.  MNC is two or three digits depending on
    the national numbering plan; we keep the digit count explicit so that
    string round-trips are exact.
    """

    mcc: int
    mnc: int
    mnc_digits: int = 2

    def __post_init__(self) -> None:
        if not 100 <= self.mcc <= 999:
            raise ValueError(f"MCC must be 3 digits, got {self.mcc}")
        if self.mnc_digits not in (2, 3):
            raise ValueError(f"MNC length must be 2 or 3, got {self.mnc_digits}")
        if not 0 <= self.mnc < 10**self.mnc_digits:
            raise ValueError(
                f"MNC {self.mnc} does not fit in {self.mnc_digits} digits"
            )

    def __str__(self) -> str:
        return f"{self.mcc:03d}{self.mnc:0{self.mnc_digits}d}"

    @property
    def mcc_str(self) -> str:
        return f"{self.mcc:03d}"

    @property
    def mnc_str(self) -> str:
        return f"{self.mnc:0{self.mnc_digits}d}"

    @classmethod
    def parse(cls, text: str) -> "PLMN":
        """Parse ``MCCMNC`` text (5 or 6 digits) into a PLMN."""
        if not text.isdigit() or len(text) not in (5, 6):
            raise ValueError(f"PLMN string must be 5 or 6 digits, got {text!r}")
        return cls(mcc=int(text[:3]), mnc=int(text[3:]), mnc_digits=len(text) - 3)


@dataclass(frozen=True)
class IMSI:
    """An International Mobile Subscriber Identity.

    ``plmn`` identifies the SIM-issuing (home) network; ``msin`` is the
    subscriber number within it.  Total length is 15 digits.
    """

    plmn: PLMN
    msin: int

    def __post_init__(self) -> None:
        msin_digits = 15 - len(str(self.plmn))
        if not 0 <= self.msin < 10**msin_digits:
            raise ValueError(
                f"MSIN {self.msin} does not fit in {msin_digits} digits"
            )

    def __str__(self) -> str:
        msin_digits = 15 - len(str(self.plmn))
        return f"{self.plmn}{self.msin:0{msin_digits}d}"

    @classmethod
    def parse(cls, text: str, mnc_digits: int = 2) -> "IMSI":
        """Parse a 15-digit IMSI, assuming ``mnc_digits`` for the MNC."""
        if not text.isdigit() or len(text) != 15:
            raise ValueError(f"IMSI must be 15 digits, got {text!r}")
        plmn = PLMN.parse(text[: 3 + mnc_digits])
        return cls(plmn=plmn, msin=int(text[3 + mnc_digits:]))

    def in_range(self, lo: "IMSI", hi: "IMSI") -> bool:
        """Return True if this IMSI lies in the inclusive range [lo, hi].

        Dedicated IMSI ranges are how the paper's UK MNO segregates its
        SMIP smart-meter SIMs.
        """
        return int(str(lo)) <= int(str(self)) <= int(str(hi))


@dataclass(frozen=True)
class IMEI:
    """An International Mobile Equipment Identity.

    ``tac`` (8 digits) identifies the device model via the GSMA catalog;
    ``serial`` (6 digits) identifies the unit; the final digit is Luhn.
    """

    tac: int
    serial: int

    def __post_init__(self) -> None:
        if not 0 <= self.tac < 10**8:
            raise ValueError(f"TAC must be 8 digits, got {self.tac}")
        if not 0 <= self.serial < 10**6:
            raise ValueError(f"IMEI serial must be 6 digits, got {self.serial}")

    @property
    def check_digit(self) -> int:
        return luhn_check_digit(f"{self.tac:08d}{self.serial:06d}")

    def __str__(self) -> str:
        return f"{self.tac:08d}{self.serial:06d}{self.check_digit}"

    @classmethod
    def parse(cls, text: str) -> "IMEI":
        """Parse a 15-digit IMEI, validating the Luhn check digit."""
        if not text.isdigit() or len(text) != 15:
            raise ValueError(f"IMEI must be 15 digits, got {text!r}")
        if not luhn_is_valid(text):
            raise ValueError(f"IMEI {text!r} fails the Luhn check")
        return cls(tac=int(text[:8]), serial=int(text[8:14]))


def mcc_of(digits: str) -> int:
    """The MCC (first three digits) of any PLMN-prefixed identifier string.

    Works on a PLMN, an IMSI, or any digit string that starts with one:
    the MCC is always exactly three digits regardless of MNC length.

    >>> mcc_of("23415")
    234
    >>> mcc_of("214070000000001")
    214
    """
    if len(digits) < 3 or not digits[:3].isdigit():
        raise ValueError(
            f"identifier must start with a 3-digit MCC, got {digits!r}"
        )
    return int(digits[:3])


def plmn_candidates(imsi: str) -> Tuple[str, str]:
    """Both possible home-PLMN prefixes of a 15-digit IMSI string.

    E.212 does not encode the MNC length in the IMSI itself, so a lookup
    that only has the raw digits must try both the 2-digit and 3-digit
    MNC readings — this helper centralizes that ambiguity.

    >>> plmn_candidates("214070000000001")
    ('21407', '214070')
    """
    if not imsi.isdigit() or len(imsi) != 15:
        raise ValueError(f"IMSI must be 15 digits, got {imsi!r}")
    return imsi[:5], imsi[:6]


def hash_device_id(identifier: str, salt: str = "where-things-roam") -> str:
    """One-way hash an identifier into a stable anonymous device ID.

    Both of the paper's datasets carry only hashed device identifiers; we
    apply the same treatment so no raw IMSI/IMEI ever appears in an
    exported record.
    """
    digest = hashlib.sha256(f"{salt}:{identifier}".encode("utf-8")).hexdigest()
    return digest[:16]
