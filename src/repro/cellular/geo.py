"""Geographic primitives for sector placement and mobility metrics.

The paper computes per-device mobility from the physical coordinates of
the cell sectors a device attaches to: a dwell-time-weighted centroid and
a radius of gyration (§4.1, Fig. 8).  This module provides the geodesic
math those computations need, plus helpers to scatter sector sites inside
a country's (circular) footprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface (degrees)."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def offset_km(origin: GeoPoint, east_km: float, north_km: float) -> GeoPoint:
    """Return the point ``east_km``/``north_km`` from ``origin``.

    A local flat-earth approximation — fine at the sub-thousand-km scale
    of sector grids.
    """
    dlat = north_km / 110.574
    dlon = east_km / (111.320 * max(0.1, math.cos(math.radians(origin.lat))))
    lat = max(-90.0, min(90.0, origin.lat + dlat))
    lon = ((origin.lon + dlon + 180.0) % 360.0) - 180.0
    return GeoPoint(lat=lat, lon=lon)


def weighted_centroid(
    points: Sequence[GeoPoint], weights: Sequence[float]
) -> GeoPoint:
    """Dwell-weighted centroid of a set of sector positions.

    Computed on the unit sphere (via 3-D Cartesian averaging) so it is
    robust near the antimeridian.  Weights are typically per-sector
    dwell times.
    """
    if not points:
        raise ValueError("centroid of empty point set")
    if len(points) != len(weights):
        raise ValueError("points and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")

    x = y = z = 0.0
    for point, weight in zip(points, weights):
        lat = math.radians(point.lat)
        lon = math.radians(point.lon)
        w = weight / total
        x += w * math.cos(lat) * math.cos(lon)
        y += w * math.cos(lat) * math.sin(lon)
        z += w * math.sin(lat)

    norm = math.sqrt(x * x + y * y + z * z)
    if norm < 1e-12:
        # Perfectly antipodal weighting; fall back to the first point.
        return points[0]
    return GeoPoint(
        lat=math.degrees(math.asin(max(-1.0, min(1.0, z / norm)))),
        lon=math.degrees(math.atan2(y, x)),
    )


def radius_of_gyration_km(
    points: Sequence[GeoPoint], weights: Sequence[float]
) -> float:
    """Dwell-weighted radius of gyration, in kilometres.

    ``sqrt(sum_i w_i * d(p_i, centroid)^2 / sum_i w_i)`` — the paper's
    mobility metric (Fig. 8): how far from its usual centre a device
    roams, weighted by time spent on each sector.
    """
    if not points:
        raise ValueError("gyration of empty point set")
    centroid = weighted_centroid(points, weights)
    total = float(sum(weights))
    acc = 0.0
    for point, weight in zip(points, weights):
        distance = haversine_km(point, centroid)
        acc += (weight / total) * distance * distance
    return math.sqrt(acc)


def scatter_points(
    center: GeoPoint,
    radius_km: float,
    count: int,
    rng: np.random.Generator,
) -> List[GeoPoint]:
    """Scatter ``count`` points uniformly inside a disc around ``center``.

    Used to lay out sector sites within a country footprint.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    radii = radius_km * np.sqrt(rng.random(count))
    angles = rng.random(count) * 2.0 * math.pi
    return [
        offset_km(center, float(r * math.cos(a)), float(r * math.sin(a)))
        for r, a in zip(radii, angles)
    ]


def bounding_radius_km(points: Iterable[GeoPoint], center: GeoPoint) -> float:
    """Maximum distance of any point from ``center`` (0.0 when empty)."""
    return max((haversine_km(p, center) for p in points), default=0.0)


def pairwise_max_distance_km(points: Sequence[GeoPoint]) -> float:
    """Diameter of a small point set (exhaustive; for tests/diagnostics)."""
    best = 0.0
    for i, a in enumerate(points):
        for b in points[i + 1:]:
            best = max(best, haversine_km(a, b))
    return best


def as_tuple(point: GeoPoint) -> Tuple[float, float]:
    """Return (lat, lon) — convenience for serialization."""
    return (point.lat, point.lon)
