"""A bounded ingest queue with watermark hysteresis and typed shedding.

The daemon's first robustness rule is *bounded memory*: an ingest storm
must never let the queue grow without limit.  Past the high watermark
the queue rejects new work with :class:`OverloadShed` — a typed error
carrying retry guidance, so clients back off instead of hammering — and
keeps rejecting until the consumer has drained it to the low watermark.
The high/low split is deliberate hysteresis: a saturated daemon sheds a
*run* of batches and recovers with headroom, rather than oscillating
around a single threshold one item at a time.
"""

from __future__ import annotations

import asyncio
from typing import Generic, List, TypeVar

T = TypeVar("T")


class OverloadShed(RuntimeError):
    """A batch was rejected because the ingest queue is saturated.

    ``retry_after_s`` is client guidance (how long to back off before
    re-sending the same batch id); ``depth``/``high_watermark`` document
    the queue state at rejection time for the typed response.
    """

    def __init__(
        self,
        retry_after_s: float,
        depth: int,
        high_watermark: int,
        saturation_started: bool = False,
    ):
        super().__init__(
            f"ingest queue saturated ({depth}/{high_watermark}); "
            f"retry after {retry_after_s}s"
        )
        self.retry_after_s = retry_after_s
        self.depth = depth
        self.high_watermark = high_watermark
        #: True on the rejection that *started* a saturation episode —
        #: the daemon records one QUEUE_SATURATION incident per episode
        #: (plus one OVERLOAD_SHED per rejected batch).
        self.saturation_started = saturation_started


class BoundedIngestQueue(Generic[T]):
    """FIFO queue bounded by watermark hysteresis (single event loop).

    ``put_nowait`` either accepts the item or raises
    :class:`OverloadShed`; it never blocks and never buffers past the
    high watermark, so the queue's memory ceiling is
    ``high_watermark * max item size`` by construction.
    """

    def __init__(
        self,
        high_watermark: int,
        low_watermark: int,
        shed_retry_after_s: float = 0.5,
    ) -> None:
        if high_watermark <= low_watermark or low_watermark < 0:
            raise ValueError(
                f"watermarks must satisfy 0 <= low < high, got "
                f"low={low_watermark} high={high_watermark}"
            )
        self._high = high_watermark
        self._low = low_watermark
        self._retry_after_s = shed_retry_after_s
        self._items: "asyncio.Queue[T]" = asyncio.Queue()
        self._shedding = False
        #: Lifetime counters for health gauges.
        self.n_accepted = 0
        self.n_shed = 0
        self.n_saturations = 0

    @property
    def depth(self) -> int:
        return self._items.qsize()

    @property
    def shedding(self) -> bool:
        return self._shedding

    def put_nowait(self, item: T) -> None:
        """Accept ``item`` or raise :class:`OverloadShed`.

        The rejection that begins a saturation episode is flagged on the
        exception (``saturation_started``) so the caller can record one
        QUEUE_SATURATION incident per episode, not one per batch.
        """
        saturated_now = False
        if not self._shedding and self.depth >= self._high:
            self._shedding = True
            self.n_saturations += 1
            saturated_now = True
        if self._shedding:
            self.n_shed += 1
            raise OverloadShed(
                self._retry_after_s, self.depth, self._high, saturated_now
            )
        self._items.put_nowait(item)
        self.n_accepted += 1

    async def get(self) -> T:
        """Wait for the next item; clears shedding at the low watermark."""
        item = await self._items.get()
        if self._shedding and self.depth <= self._low:
            self._shedding = False
        return item

    def drain_nowait(self) -> List[T]:
        """Remove and return everything queued right now (shutdown path)."""
        items: List[T] = []
        while not self._items.empty():
            items.append(self._items.get_nowait())
        if self._shedding and self.depth <= self._low:
            self._shedding = False
        return items
