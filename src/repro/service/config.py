"""Configuration for the catalog daemon.

Every knob that shapes the daemon's robustness behavior lives here so a
test (or the chaos harness) can shrink the timescales without patching
daemon internals: watermarks, deadlines, snapshot cadence and the
supervisor's restart budget are all data.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`repro.service.daemon.CatalogDaemon`.

    The queue watermarks implement hysteresis: shedding starts when the
    ingest queue reaches ``queue_high_watermark`` and stops only once it
    has drained to ``queue_low_watermark`` — a saturated daemon rejects
    a *run* of batches rather than flapping per item.
    """

    host: str = "127.0.0.1"
    #: 0 = let the OS pick an ephemeral port (the bound port is
    #: published on ``CatalogDaemon.port`` once started).
    port: int = 0
    queue_high_watermark: int = 64
    queue_low_watermark: int = 16
    #: Reject batches with more rows than this before they ever touch
    #: the queue — one hostile client cannot blow the memory budget.
    max_batch_rows: int = 50_000
    #: Largest request line the daemon will buffer; a line exceeding it
    #: is rejected without ever being held in memory whole.
    max_request_bytes: int = 32 * 1024 * 1024
    #: Hard per-request deadline (read + parse + respond).
    request_timeout_s: float = 30.0
    #: How long an accepted batch may wait for its durable ack before
    #: the client is told to re-send (same batch id; the ack is
    #: idempotent).
    batch_deadline_s: float = 10.0
    #: Seconds between durable snapshot cycles (journal fsync).
    snapshot_interval_s: float = 5.0
    #: Supervisor restart budget per task; the delay between restarts
    #: follows a RetryPolicy built from the two fields below.
    restart_max_attempts: int = 5
    restart_base_delay_s: float = 0.05
    restart_max_delay_s: float = 1.0
    #: Client guidance attached to typed shed rejections.
    shed_retry_after_s: float = 0.5
    #: Disk watermarks, mirroring the queue's hysteresis: ingest is shed
    #: once free space on the WAL volume drops below
    #: ``disk_min_free_bytes`` and resumes only after it recovers past
    #: ``disk_resume_free_bytes`` — a filling disk rejects a *run* of
    #: batches rather than flapping per block.  0 disables the check.
    disk_min_free_bytes: int = 0
    disk_resume_free_bytes: int = 0
    #: Seconds between background scrub cycles (verify-only walk of the
    #: WAL store; damage is reported as incidents, never auto-repaired
    #: under a live daemon).  0 disables the loop.
    scrub_interval_s: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_low_watermark < 0:
            raise ValueError(
                f"queue_low_watermark must be >= 0, got {self.queue_low_watermark}"
            )
        if self.queue_high_watermark <= self.queue_low_watermark:
            raise ValueError(
                "queue_high_watermark must be > queue_low_watermark, got "
                f"high={self.queue_high_watermark} <= low={self.queue_low_watermark}"
            )
        if self.max_batch_rows < 1:
            raise ValueError(f"max_batch_rows must be >= 1, got {self.max_batch_rows}")
        if self.max_request_bytes < 1024:
            raise ValueError(
                f"max_request_bytes must be >= 1024, got {self.max_request_bytes}"
            )
        for name in (
            "request_timeout_s",
            "batch_deadline_s",
            "snapshot_interval_s",
            "restart_base_delay_s",
            "shed_retry_after_s",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if self.restart_max_attempts < 1:
            raise ValueError(
                f"restart_max_attempts must be >= 1, got {self.restart_max_attempts}"
            )
        if self.disk_min_free_bytes < 0:
            raise ValueError(
                f"disk_min_free_bytes must be >= 0, got {self.disk_min_free_bytes}"
            )
        if self.disk_min_free_bytes > 0 and (
            self.disk_resume_free_bytes <= self.disk_min_free_bytes
        ):
            raise ValueError(
                "disk_resume_free_bytes must be > disk_min_free_bytes, got "
                f"resume={self.disk_resume_free_bytes} <= "
                f"min={self.disk_min_free_bytes}"
            )
        if self.scrub_interval_s < 0:
            raise ValueError(
                f"scrub_interval_s must be >= 0, got {self.scrub_interval_s}"
            )
