"""Synchronous client for the catalog daemon.

The client is deliberately *not* async: it is what tests, the chaos
harness and operator tooling use from outside the daemon's event loop.
Its one piece of intelligence is :meth:`CatalogClient.ingest_with_retry`
— the sanctioned client half of the daemon's backpressure contract: a
``shed``/``retry`` response is not an error but guidance, and the
client honors it by backing off under a
:class:`repro.faults.RetryPolicy` (sleeping the *maximum* of the
server's ``retry_after_s`` and the policy's jittered delay) and
re-sending the same batch id, which the daemon dedupes.
"""

from __future__ import annotations

import contextlib
import json
import socket
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.faults.retry import RetryError, RetryPolicy


class ServiceUnavailable(ConnectionError):
    """The daemon could not be reached or closed the connection."""


class CatalogClient:
    """One line-JSON connection-per-request client.

    ``sleep`` is injectable so tests drive the retry loop without wall
    time; production leaves the default ``time.sleep``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._sleep = sleep

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one op and return the daemon's decoded response."""
        data = json.dumps(payload).encode("utf-8") + b"\n"
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            ) as conn:
                conn.sendall(data)
                with conn.makefile("rb") as reader:
                    line = reader.readline()
        except OSError as exc:
            raise ServiceUnavailable(
                f"catalog daemon at {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        if not line:
            raise ServiceUnavailable(
                f"catalog daemon at {self.host}:{self.port} closed the connection"
            )
        try:
            response = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            # A daemon killed mid-ack (or a reset socket) delivers a
            # truncated line; that is a transient transport failure —
            # retryable under ingest_with_retry, where the unchanged
            # batch id makes the re-send safe — not a protocol error.
            raise ServiceUnavailable(
                f"catalog daemon at {self.host}:{self.port} sent a torn "
                f"response ({len(line)} bytes): {exc}"
            ) from exc
        if not isinstance(response, dict):
            raise ServiceUnavailable(f"malformed daemon response: {response!r}")
        return response

    # -- ops -------------------------------------------------------------------

    def ingest(self, batch_id: str, rows: List[Dict[str, Any]]) -> Dict[str, Any]:
        return self.request({"op": "ingest", "batch_id": batch_id, "rows": rows})

    def ingest_with_retry(
        self,
        batch_id: str,
        rows: List[Dict[str, Any]],
        policy: Optional[RetryPolicy] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[str, Any]:
        """Ingest under the backpressure contract.

        Re-sends on ``shed``/``retry`` responses (and transient
        connection failures) until the policy's attempts run out, then
        raises :class:`repro.faults.RetryError`.  The batch id never
        changes across attempts, so a batch that was durably applied
        just before a timeout acks as a duplicate instead of
        double-ingesting.
        """
        policy = policy or RetryPolicy(
            base_delay_s=0.05, max_delay_s=2.0, max_attempts=8
        )
        rng = rng if rng is not None else np.random.default_rng(0)
        last: Optional[Exception] = None
        for attempt in range(policy.max_attempts):
            try:
                response = self.ingest(batch_id, rows)
            except ServiceUnavailable as exc:
                last = exc
                self._sleep(policy.delay_s(attempt, rng))
                continue
            if response.get("status") in ("ok", "rejected", "error"):
                return response
            # shed / retry: back off at least as long as the server asks.
            server_hint = float(response.get("retry_after_s", 0.0))
            last = RuntimeError(response.get("error", response.get("status", "")))
            self._sleep(max(server_hint, policy.delay_s(attempt, rng)))
        raise RetryError(policy.max_attempts, last)

    def query_device(self, device_id: str) -> Dict[str, Any]:
        return self.request({"op": "query", "device_id": device_id})

    def footprint(self, sim_plmn: str) -> Dict[str, Any]:
        return self.request({"op": "footprint", "sim_plmn": sim_plmn})

    def healthz(self) -> Dict[str, Any]:
        return self.request({"op": "healthz"})["healthz"]

    def readyz(self) -> Dict[str, Any]:
        return self.request({"op": "readyz"})["readyz"]

    def digest(self) -> Dict[str, Any]:
        return self.request({"op": "digest"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    def wait_ready(self, deadline_s: float = 10.0, poll_s: float = 0.05) -> None:
        """Poll ``readyz`` until the daemon accepts traffic."""
        waited = 0.0
        while True:
            # A daemon mid-start refuses connections; that is exactly
            # the state this poll loop exists to wait out.
            with contextlib.suppress(ServiceUnavailable, KeyError):
                if self.readyz().get("ready"):
                    return
            if waited >= deadline_s:
                raise TimeoutError(
                    f"daemon at {self.host}:{self.port} not ready "
                    f"after {deadline_s}s"
                )
            self._sleep(poll_s)
            waited += poll_s
