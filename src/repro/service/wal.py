"""The daemon's write-ahead batch log, built on CheckpointStore.

"No lost acknowledged batch" reduces to a classic WAL discipline: a
batch's rows are packed into the runtime's CRC-framed columnar block
format (:func:`repro.runtime.serialize.pack_day_block`), written
atomically as checkpoint unit ``(seq, 0)``, and journaled — and only
then is the client's ack released.  On restart :meth:`BatchLog.replay`
walks the journal in sequence order and re-yields every acknowledged
batch, so the daemon rebuilds exactly the catalog it acknowledged, no
matter where a SIGKILL landed:

* kill before the journal flush → the batch was never acked; the client
  re-sends it (batch ids make the re-send idempotent);
* kill after → the batch replays from the WAL.

A torn journal tail or a corrupt unit block is *reported*
(``n_torn_units``, ``CheckpointStore.n_torn_journal_lines``) and
skipped, never silently absorbed: the units it named were by definition
unacknowledged, so dropping them is correct — but the operator gets a
``torn-checkpoint`` incident, not a mystery.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Set, Tuple, Union

from repro.columnar.store import ColumnarRadioEvents, ColumnarServiceRecords
from repro.runtime.checkpoint import BeforeReplace, CheckpointStore
from repro.runtime.serialize import (
    CheckpointCorruption,
    pack_day_block,
    unpack_day_block,
)
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent

PathLike = Union[str, Path]

_ENVELOPE_LEN = struct.Struct("<I")

#: WAL units are single-shard: unit key is (seq, _WAL_SHARD).
_WAL_SHARD = 0

#: The store fingerprint pins the directory to this role and format, so
#: pointing the daemon at a batch run's checkpoint directory (or vice
#: versa) fails loudly as a stale manifest instead of mis-decoding.
_WAL_FINGERPRINT = {"role": "service-wal", "format": 1}


@dataclass(frozen=True)
class ReplayedBatch:
    """One acknowledged batch recovered from the WAL.

    The batch stays dictionary-encoded: ``radio_events`` /
    ``service_records`` are the unit's decoded columnar stores (shared
    per-batch pools), which the daemon folds into the catalog directly —
    :meth:`CatalogBuilder.update` accepts columnar input, so replay
    never materializes row dataclasses.  Call ``.to_rows()`` on either
    store if rows are genuinely needed.
    """

    seq: int
    batch_id: str
    radio_events: ColumnarRadioEvents
    service_records: ColumnarServiceRecords


def _encode_envelope(batch_id: str, seq: int, block: bytes) -> bytes:
    header = json.dumps(
        {"batch_id": batch_id, "seq": seq}, separators=(",", ":")
    ).encode("utf-8")
    return _ENVELOPE_LEN.pack(len(header)) + header + block


def _decode_envelope(data: bytes) -> Tuple[Dict[str, Any], bytes]:
    if len(data) < _ENVELOPE_LEN.size:
        raise CheckpointCorruption("WAL envelope too short for header frame")
    (header_len,) = _ENVELOPE_LEN.unpack_from(data)
    offset = _ENVELOPE_LEN.size
    raw = data[offset:offset + header_len]
    if len(raw) != header_len:
        raise CheckpointCorruption("WAL envelope header torn")
    try:
        header = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointCorruption(f"WAL envelope header unreadable: {exc}") from exc
    return header, data[offset + header_len:]


class BatchLog:
    """Durable, replayable log of acknowledged ingest batches.

    One :class:`CheckpointStore` unit per batch, keyed ``(seq, 0)``.
    ``append`` journals with a flush (survives SIGKILL of the daemon);
    ``sync`` fsyncs (survives power loss) and is the snapshot loop's
    periodic duty.  ``applied_batch_ids`` carries every batch id ever
    acknowledged, giving the daemon idempotent re-sends for free.
    """

    def __init__(
        self,
        directory: PathLike,
        resume: bool = False,
        before_replace: BeforeReplace = None,
    ) -> None:
        self._store = CheckpointStore(
            directory,
            fingerprint=dict(_WAL_FINGERPRINT),
            n_shards=1,
            resume=resume,
            before_replace=before_replace,
        )
        self.applied_batch_ids: Set[str] = set()
        self.next_seq = 0
        self.n_torn_units = 0
        for entry in self._store.journal_entries():
            self.next_seq = max(self.next_seq, entry["day"] + 1)

    @property
    def n_torn_journal_lines(self) -> int:
        return self._store.n_torn_journal_lines

    @property
    def attempt(self) -> int:
        return self._store.attempt

    def append(
        self,
        batch_id: str,
        radio_events: Sequence[RadioEvent],
        service_records: Sequence[ServiceRecord],
    ) -> int:
        """Persist one batch durably; returns its sequence number.

        Blocking (file I/O): the daemon calls this via a worker thread,
        never directly on the event loop.
        """
        seq = self.next_seq
        block = pack_day_block(radio_events, service_records)
        self._store.save_unit(seq, _WAL_SHARD, _encode_envelope(batch_id, seq, block))
        self._store.mark_complete(seq, _WAL_SHARD)
        self.applied_batch_ids.add(batch_id)
        self.next_seq = seq + 1
        return seq

    def replay(self) -> List[ReplayedBatch]:
        """Recover every acknowledged batch, in sequence order.

        Corrupt or missing unit blocks are counted in ``n_torn_units``
        and skipped — their acks never made it out (the journal line is
        written strictly after the block), so nothing acknowledged is
        lost.
        """
        batches: List[ReplayedBatch] = []
        seen: Set[int] = set()
        for entry in self._store.journal_entries():
            seq = entry["day"]
            if seq in seen:
                continue
            seen.add(seq)
            try:
                header, block = _decode_envelope(
                    self._store.load_unit(seq, _WAL_SHARD)
                )
                events_c, records_c, _ = unpack_day_block(block)
            except CheckpointCorruption:
                self.n_torn_units += 1
                continue
            batch_id = str(header.get("batch_id", f"seq-{seq}"))
            batches.append(
                ReplayedBatch(
                    seq=seq,
                    batch_id=batch_id,
                    radio_events=events_c,
                    service_records=records_c,
                )
            )
            self.applied_batch_ids.add(batch_id)
        batches.sort(key=lambda b: b.seq)
        return batches

    def sync(self) -> None:
        """fsync the journal (the periodic snapshot cycle's durable step)."""
        self._store.sync()

    def close(self) -> None:
        self._store.close()

    def manifest_summary(self) -> Dict[str, int]:
        """Counters for health reporting."""
        return {
            "next_seq": self.next_seq,
            "n_torn_units": self.n_torn_units,
            "n_torn_journal_lines": self.n_torn_journal_lines,
            "attempt": self.attempt,
        }
