"""Wire protocol: line-delimited JSON requests, lenient batch parsing.

One request per line, one JSON response per line.  Ingest rows reuse the
exact dict shapes :mod:`repro.datasets.io` writes to JSONL, tagged with
a ``kind`` discriminator::

    {"op": "ingest", "batch_id": "b-1", "rows": [
        {"kind": "radio", "device_id": "d0", "ts": 10.0, "sim_plmn":
         "234-10", "tac": 86000012, "sector": 3, "iface": "4G-data",
         "type": "attach_request", "result": "success"},
        {"kind": "service", "device_id": "d0", "ts": 11.0, ...}]}

Parsing is *lenient* with the ingest taxonomy of
:class:`repro.datasets.io.IngestReport`: a row that is not a dict is a
``parse`` error, a dict that fails field extraction is ``schema``, and
one whose values violate the record invariants is ``semantic``.  A
hostile batch therefore degrades into quarantine counts in the ack, it
never kills the daemon.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.datasets.io import (
    IngestError,
    IngestErrorKind,
    IngestReport,
    _radio_event_fields,
    _service_record_fields,
)
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent

#: How much of a bad row an IngestError keeps for debugging.
_EXCERPT_CHARS = 80

#: Row discriminator values.
ROW_KIND_RADIO = "radio"
ROW_KIND_SERVICE = "service"


def _excerpt(row: Any) -> str:
    return repr(row)[:_EXCERPT_CHARS]


def parse_batch_rows(
    rows: Sequence[Any], source: str = "ingest"
) -> Tuple[List[RadioEvent], List[ServiceRecord], IngestReport]:
    """Leniently decode one batch's rows into typed records.

    Never raises on bad rows: every rejection is quarantined into the
    returned :class:`IngestReport` under the parse/schema/semantic
    taxonomy, and the good rows still ingest.
    """
    report = IngestReport(path=source)
    events: List[RadioEvent] = []
    records: List[ServiceRecord] = []
    for index, row in enumerate(rows):
        report.n_rows += 1
        line_no = index + 1
        if not isinstance(row, dict):
            report.errors.append(
                IngestError(
                    path=source,
                    line_no=line_no,
                    kind=IngestErrorKind.PARSE,
                    message=f"row is {type(row).__name__}, not an object",
                    excerpt=_excerpt(row),
                )
            )
            continue
        kind = row.get("kind")
        if kind == ROW_KIND_RADIO:
            fields_of, construct = _radio_event_fields, RadioEvent
        elif kind == ROW_KIND_SERVICE:
            fields_of, construct = _service_record_fields, ServiceRecord  # type: ignore[assignment]
        else:
            report.errors.append(
                IngestError(
                    path=source,
                    line_no=line_no,
                    kind=IngestErrorKind.SCHEMA,
                    message=f"unknown row kind {kind!r}",
                    excerpt=_excerpt(row),
                )
            )
            continue
        try:
            fields = fields_of(row)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            report.errors.append(
                IngestError(
                    path=source,
                    line_no=line_no,
                    kind=IngestErrorKind.SCHEMA,
                    message=str(exc),
                    excerpt=_excerpt(row),
                )
            )
            continue
        try:
            record = construct(**fields)
        except (ValueError, TypeError, AttributeError) as exc:
            # Mirrors repro.datasets.io._ingest: a constructor ValueError
            # is the record's own invariant (semantic); TypeError /
            # AttributeError mean a wrongly-typed value (still schema).
            report.errors.append(
                IngestError(
                    path=source,
                    line_no=line_no,
                    kind=(
                        IngestErrorKind.SEMANTIC
                        if isinstance(exc, ValueError)
                        else IngestErrorKind.SCHEMA
                    ),
                    message=str(exc),
                    excerpt=_excerpt(row),
                )
            )
            continue
        if kind == ROW_KIND_RADIO:
            events.append(record)  # type: ignore[arg-type]
        else:
            records.append(record)  # type: ignore[arg-type]
        report.n_ok += 1
    return events, records, report


def report_payload(report: IngestReport) -> Dict[str, Any]:
    """The ack's quarantine section: counts plus the first few errors."""
    return {
        "n_rows": report.n_rows,
        "n_ok": report.n_ok,
        "n_quarantined": report.n_quarantined,
        "coverage": report.coverage,
        "counts_by_kind": report.counts_by_kind,
        "errors": [str(error) for error in report.errors[:5]],
    }
