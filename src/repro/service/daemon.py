"""The catalog daemon: supervised ingest, durable acks, point queries.

:class:`CatalogDaemon` keeps one incremental
:class:`repro.core.catalog.CatalogBuilder` alive behind a line-JSON
socket API (see :mod:`repro.service.protocol`).  The data path is::

    client ──ingest──▶ parse (lenient) ──▶ BoundedIngestQueue
                                               │ (watermarks; shed)
                                   drain loop (supervised)
                                               │ WAL append  ◀─ ack here
                                               ▼
                                   CatalogBuilder.update(day, columns)

The ack is released only after the batch's rows are journaled in the
write-ahead log (:class:`repro.service.wal.BatchLog`) — a SIGKILL at
any instant loses only unacknowledged batches, which clients re-send
under their batch id (idempotent).  On restart the WAL replays into a
fresh builder, reproducing byte-for-byte the catalog state every ack
ever promised.

Catalog state is columnar end to end: each day accumulates as a pair of
dictionary-encoded stores sharing one daemon-wide
:class:`repro.columnar.store.ColumnPools`, live batches append parsed
rows onto the columns, and WAL replay folds the decoded blocks in with
:meth:`~repro.columnar.store.ColumnarRadioEvents.extend_from` — no
dataclass materialization on either path.

Blocking work (WAL file I/O) runs via ``asyncio.to_thread``; catalog
folds are pure CPU on in-memory state and run inline on the loop.  All
background coroutines live under :class:`TaskSupervisor` — lint rule
``SVC001`` bans bare ``asyncio.create_task`` in this package.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import shutil
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Set

import numpy as np

from repro.columnar.store import (
    NULL_ID,
    ColumnarRadioEvents,
    ColumnarServiceRecords,
    ColumnPools,
)
from repro.core.catalog import CatalogBuilder, DeviceDayRecord, DeviceSummary
from repro.core.classifier import Classification, DeviceClassifier
from repro.core.roaming import RoamingLabeler
from repro.ecosystem import Ecosystem
from repro.faults.retry import RetryPolicy
from repro.runtime.checkpoint import BeforeReplace
from repro.runtime.scrub import scrub_store
from repro.service.config import ServiceConfig
from repro.service.health import ServiceHealth
from repro.service.protocol import parse_batch_rows, report_payload
from repro.service.queue import BoundedIngestQueue, OverloadShed
from repro.service.supervisor import TaskSupervisor
from repro.service.wal import BatchLog
from repro.signaling.cdr import SERVICE_TYPES, ServiceRecord
from repro.signaling.events import RADIO_INTERFACES, RadioEvent
from repro.signaling.procedures import MESSAGE_TYPES, RESULT_CODES

#: Seam invoked with (batch_id, seq) just before a batch's WAL append —
#: chaos tests hang a KillSwitch here to die mid-publication.
OnBatch = Optional[Callable[[str, int], None]]

_HTTP_PATHS = {"/healthz": "healthz", "/readyz": "readyz"}


def _radio_sort_key(event: RadioEvent) -> Any:
    """Canonical within-day order: per-device chronological, total."""
    return (
        event.device_id, event.timestamp, event.sector_id,
        event.interface.value, event.event_type.value, event.result.value,
        event.tac, event.sim_plmn,
    )


def _service_sort_key(record: ServiceRecord) -> Any:
    return (
        record.device_id, record.timestamp, record.service.value,
        record.duration_s, record.bytes_total, record.visited_plmn,
        record.apn or "",
    )


#: Enum-index → wire-value scan tables, so the columnar sort keys below
#: compare the exact strings the row keys compare (all enum values in
#: this schema are strings, so tuple comparison semantics are identical).
_INTERFACE_VALUES = tuple(member.value for member in RADIO_INTERFACES)
_MESSAGE_VALUES = tuple(member.value for member in MESSAGE_TYPES)
_RESULT_VALUES = tuple(member.value for member in RESULT_CODES)
_SERVICE_VALUES = tuple(member.value for member in SERVICE_TYPES)


def _radio_sort_permutation(store: ColumnarRadioEvents) -> List[int]:
    """Stable sort permutation matching :func:`_radio_sort_key`.

    Builds the same key tuples the row sort would — pool strings and
    enum ``.value``s, not integer ids — so ``store.select(perm)`` is
    byte-identical to sorting materialized rows, without materializing
    any.
    """
    devices = store.pools.devices.strings
    plmns = store.pools.plmns.strings
    device_ids = store.device_ids
    timestamps = store.timestamps
    sector_ids = store.sector_ids
    interfaces = store.interfaces
    event_types = store.event_types
    results = store.results
    tacs = store.tacs
    sim_plmns = store.sim_plmns
    keys = [
        (
            devices[device_ids[i]], timestamps[i], sector_ids[i],
            _INTERFACE_VALUES[interfaces[i]], _MESSAGE_VALUES[event_types[i]],
            _RESULT_VALUES[results[i]], tacs[i], plmns[sim_plmns[i]],
        )
        for i in range(len(store))
    ]
    return sorted(range(len(keys)), key=keys.__getitem__)


def _service_sort_permutation(store: ColumnarServiceRecords) -> List[int]:
    """Stable sort permutation matching :func:`_service_sort_key`."""
    devices = store.pools.devices.strings
    plmns = store.pools.plmns.strings
    apn_strings = store.pools.apns.strings
    device_ids = store.device_ids
    timestamps = store.timestamps
    services = store.services
    durations = store.durations
    bytes_totals = store.bytes_totals
    visited_plmns = store.visited_plmns
    apns = store.apns
    keys = [
        (
            devices[device_ids[i]], timestamps[i], _SERVICE_VALUES[services[i]],
            durations[i], bytes_totals[i], plmns[visited_plmns[i]],
            apn_strings[apns[i]] if apns[i] != NULL_ID else "",
        )
        for i in range(len(store))
    ]
    return sorted(range(len(keys)), key=keys.__getitem__)


def catalog_digest(
    records: List[DeviceDayRecord], summaries: Mapping[str, DeviceSummary]
) -> str:
    """Canonical SHA-256 of a catalog's full state.

    Order-independent where the catalog is (frozensets are sorted) and
    exact where it matters (floats via ``repr``, never rounded) — two
    catalogs digest equal iff they are value-identical, which is the
    equality the chaos harness asserts between an interrupted-and-
    recovered daemon and an uninterrupted run.
    """
    hasher = hashlib.sha256()
    for r in records:
        mobility = (
            (repr(r.mobility.gyration_km), r.mobility.n_sectors)
            if r.mobility is not None
            else None
        )
        hasher.update(
            repr((
                r.device_id, r.day, r.sim_plmn, sorted(r.visited_plmns),
                r.n_events, r.n_failed_events, r.n_calls,
                repr(r.voice_minutes), r.n_data_sessions, r.bytes_total,
                sorted(r.apns), r.radio_flags.mask, r.voice_flags.mask,
                r.data_flags.mask, mobility, r.on_home_network,
            )).encode("utf-8")
        )
    for device_id in sorted(summaries):
        s = summaries[device_id]
        hasher.update(
            repr((
                s.device_id, s.sim_plmn, str(s.label), s.active_days,
                s.n_events, s.n_failed_events, s.n_calls,
                repr(s.voice_minutes), s.n_data_sessions, s.bytes_total,
                sorted(s.apns), sorted(s.visited_plmns),
                s.radio_flags.mask, s.voice_flags.mask, s.data_flags.mask,
                s.tac,
                None if s.mean_gyration_km is None else repr(s.mean_gyration_km),
            )).encode("utf-8")
        )
    return hasher.hexdigest()


@dataclass
class _PendingBatch:
    """One accepted batch waiting in the queue for its durable ack."""

    batch_id: str
    radio_events: List[RadioEvent]
    service_records: List[ServiceRecord]
    ack: "asyncio.Future[int]" = field(repr=False)


class CatalogDaemon:
    """One live catalog service instance.

    ``before_replace`` and ``on_batch`` are fault seams threaded to the
    WAL's :class:`repro.runtime.checkpoint.CheckpointStore` and the
    drain loop respectively; production leaves both None.
    """

    def __init__(
        self,
        ecosystem: Ecosystem,
        checkpoint_dir: str,
        config: Optional[ServiceConfig] = None,
        resume: bool = False,
        seed: int = 0,
        before_replace: BeforeReplace = None,
        on_batch: OnBatch = None,
        disk_probe: Optional[Callable[[], int]] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._checkpoint_dir = checkpoint_dir
        self._resume = resume
        self._before_replace = before_replace
        self._on_batch = on_batch
        #: Free bytes on the WAL volume; injectable so tests drive the
        #: watermarks without filling a real disk.
        self._disk_probe = disk_probe
        #: Hysteresis latch for disk shedding, mirroring the queue's:
        #: set when free space drops below ``disk_min_free_bytes``,
        #: cleared only past ``disk_resume_free_bytes``.
        self._disk_shedding = False
        labeler = RoamingLabeler(ecosystem.operators, ecosystem.uk_mno)
        self._builder = CatalogBuilder(
            ecosystem.tac_db, ecosystem.uk_sectors, labeler
        )
        self._classifier = DeviceClassifier()
        self.queue: BoundedIngestQueue[_PendingBatch] = BoundedIngestQueue(
            self.config.queue_high_watermark,
            self.config.queue_low_watermark,
            self.config.shed_retry_after_s,
        )
        self.health = ServiceHealth(depth_probe=lambda: self.queue.depth)
        self.supervisor = TaskSupervisor(
            RetryPolicy(
                base_delay_s=self.config.restart_base_delay_s,
                max_delay_s=self.config.restart_max_delay_s,
                max_attempts=self.config.restart_max_attempts,
                jitter=0.5,
            ),
            np.random.default_rng(seed),
            on_restart=self._record_restart,
        )
        self.wal: Optional[BatchLog] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._shutdown_task: Optional["asyncio.Task[None]"] = None
        #: Batches accepted but not yet durable, keyed by batch id —
        #: a concurrent re-send awaits the in-flight ack instead of
        #: double-applying the rows.
        self._pending: Dict[str, "asyncio.Future[int]"] = {}
        #: Per-day columnar accumulators: ``CatalogBuilder.update``
        #: replaces a day's whole slice, so each fold re-sends the full
        #: day.  Every day store shares ``_pools`` — the builder's
        #: columnar path requires one pool set across both streams, and
        #: a daemon-wide vocabulary means live appends and WAL replay
        #: extend the same dictionaries.
        self._pools = ColumnPools()
        self._events_by_day: Dict[int, ColumnarRadioEvents] = {}
        self._records_by_day: Dict[int, ColumnarServiceRecords] = {}
        #: Query caches, invalidated by every applied batch.
        self._dirty = True
        self._cached_records: List[DeviceDayRecord] = []
        self._cached_summaries: Dict[str, DeviceSummary] = {}
        self._cached_classes: Dict[str, Classification] = {}

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("daemon is not serving")
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        """Open (or resume) the WAL, replay it, and begin serving."""
        self._stopped = asyncio.Event()
        self.wal = await asyncio.to_thread(
            BatchLog,
            self._checkpoint_dir,
            self._resume,
            self._before_replace,
        )
        replayed = await asyncio.to_thread(self.wal.replay)
        for batch in replayed:
            self._apply_columns(batch.radio_events, batch.service_records)
            self.health.batches_replayed += 1
        if self.wal.n_torn_journal_lines:
            self.health.note_torn_wal(
                f"WAL journal torn tail: {self.wal.n_torn_journal_lines} "
                "line(s) discarded"
            )
        if self.wal.n_torn_units:
            self.health.note_torn_wal(
                f"{self.wal.n_torn_units} WAL unit(s) failed CRC and were "
                "discarded (never acknowledged)"
            )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_request_bytes,
        )
        self.supervisor.supervise("drain", self._drain_loop)
        self.supervisor.supervise("snapshot", self._snapshot_loop)
        if self.config.scrub_interval_s > 0:
            self.supervisor.supervise("scrub", self._scrub_loop)
        self.health.ready = True

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, sync the WAL, fail pending."""
        self.health.shutting_down = True
        self.health.ready = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.supervisor.shutdown()
        for pending in self.queue.drain_nowait():
            if not pending.ack.done():
                pending.ack.set_exception(
                    ConnectionError("daemon stopped before the batch was durable")
                )
        if self.wal is not None:
            await asyncio.to_thread(self.wal.sync)
            await asyncio.to_thread(self.wal.close)
        if self._stopped is not None:
            self._stopped.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` completes or the supervisor fails."""
        if self._stopped is None:
            raise RuntimeError("daemon was never started")
        stopped = asyncio.get_running_loop().create_task(self._stopped.wait())
        failed = asyncio.get_running_loop().create_task(
            self.supervisor.failed.wait()
        )
        try:
            await asyncio.wait(
                {stopped, failed}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (stopped, failed):
                task.cancel()
        if self.supervisor.failed.is_set():
            self.health.ready = False
            raise RuntimeError(self.supervisor.failure or "supervised task failed")

    # -- catalog state ---------------------------------------------------------

    def _day_events(self, day: int) -> ColumnarRadioEvents:
        store = self._events_by_day.get(day)
        if store is None:
            store = self._events_by_day[day] = ColumnarRadioEvents(self._pools)
        return store

    def _day_records(self, day: int) -> ColumnarServiceRecords:
        store = self._records_by_day.get(day)
        if store is None:
            store = self._records_by_day[day] = ColumnarServiceRecords(self._pools)
        return store

    def _apply_rows(
        self,
        radio_events: List[RadioEvent],
        service_records: List[ServiceRecord],
    ) -> None:
        """Fold one live batch's parsed rows into the incremental catalog.

        Rows are encoded straight onto the day's columns (``append``
        derives the same ``timestamp // 86400`` day as the row's
        ``.day`` property); the fold itself is shared with the replay
        path in :meth:`_fold_days`.
        """
        days: Set[int] = set()
        for event in radio_events:
            day = event.day
            self._day_events(day).append(event)
            days.add(day)
        for record in service_records:
            day = record.day
            self._day_records(day).append(record)
            days.add(day)
        self._fold_days(days)

    def _apply_columns(
        self,
        radio_events: ColumnarRadioEvents,
        service_records: ColumnarServiceRecords,
    ) -> None:
        """Fold one replayed batch's columnar block into the catalog.

        The WAL replays each batch as the decoded stores themselves;
        partitioning scans the cached ``days`` column into per-day index
        lists and ``extend_from`` re-encodes each slice against the
        daemon-wide pools — no row dataclass is ever built.
        """
        radio_slices: Dict[int, List[int]] = {}
        for index, day in enumerate(radio_events.days):
            radio_slices.setdefault(day, []).append(index)
        service_slices: Dict[int, List[int]] = {}
        for index, day in enumerate(service_records.days):
            service_slices.setdefault(day, []).append(index)
        for day, indices in radio_slices.items():
            self._day_events(day).extend_from(radio_events, indices)
        for day, indices in service_slices.items():
            self._day_records(day).extend_from(service_records, indices)
        self._fold_days(set(radio_slices) | set(service_slices))

    def _fold_days(self, days: Set[int]) -> None:
        """Re-sort and re-fold every touched day's accumulated slice.

        Each day is permuted into the canonical per-device chronological
        order before the fold, so ingest is *commutative*: any arrival
        order of (micro-)batches — concurrent clients, retried sheds,
        out-of-order re-sends — yields the value-identical catalog,
        because the fold itself is order-sensitive (float accumulation,
        mobility sequences, first-seen identity).  The permutation keys
        are the pool strings and enum values the row sort compared, so
        the folded order is byte-identical to the row path's.
        """
        # Ascending day order keeps identity resolution equal to the
        # batch pipeline's stream order (see CatalogBuilder.update).
        for day in sorted(days):
            day_events = self._day_events(day)
            day_records = self._day_records(day)
            perm = _radio_sort_permutation(day_events)
            if perm != list(range(len(perm))):
                day_events = day_events.select(perm)
                self._events_by_day[day] = day_events
            perm = _service_sort_permutation(day_records)
            if perm != list(range(len(perm))):
                day_records = day_records.select(perm)
                self._records_by_day[day] = day_records
            self._builder.update(day, day_events, day_records)
        if days:
            self._dirty = True

    def _refresh_caches(self) -> None:
        if not self._dirty:
            return
        self._cached_records, self._cached_summaries = self._builder.snapshot()
        # Classification is population-wide (property propagation), so
        # the point query's class comes from one full, cached pass.
        self._cached_classes = self._classifier.classify(self._cached_summaries)
        self._dirty = False

    # -- supervised loops ------------------------------------------------------

    async def _drain_loop(self) -> None:
        """Consume the queue: WAL append (durable), then catalog fold."""
        assert self.wal is not None
        while True:
            pending = await self.queue.get()
            try:
                if self._on_batch is not None:
                    self._on_batch(pending.batch_id, self.wal.next_seq)
                seq = await asyncio.to_thread(
                    self.wal.append,
                    pending.batch_id,
                    pending.radio_events,
                    pending.service_records,
                )
            except Exception as exc:
                if isinstance(exc, OSError):
                    # A disk-level append failure is a typed storage
                    # incident, not just a failed batch: the WAL left no
                    # torn state (save_unit is atomic; a failed journal
                    # append repairs itself), the batch is never acked,
                    # and the client re-sends under the same id.
                    self.health.note_storage_fault(
                        "write", self._checkpoint_dir, repr(exc)
                    )
                if not pending.ack.done():
                    pending.ack.set_exception(exc)
                raise
            self._apply_rows(pending.radio_events, pending.service_records)
            self.health.note_ack(
                len(pending.radio_events) + len(pending.service_records)
            )
            self._pending.pop(pending.batch_id, None)
            if not pending.ack.done():
                pending.ack.set_result(seq)

    async def _snapshot_loop(self) -> None:
        """Periodic durable snapshot: fsync the WAL journal."""
        assert self.wal is not None
        while True:
            await asyncio.sleep(self.config.snapshot_interval_s)
            try:
                await asyncio.to_thread(self.wal.sync)
            except Exception as exc:  # noqa: BLE001 — report, keep cycling
                self.health.note_snapshot_failure(repr(exc))
                continue
            self.health.note_snapshot(self.wal.next_seq - 1)

    async def _scrub_loop(self) -> None:
        """Periodic verify-only scrub of the live WAL store.

        Never repairs (the store is hot; a journaled unit observed
        damaged is a real incident, and the drain loop owns all writes)
        — damage is surfaced as typed ``scrub-damage`` incidents so
        operators learn about at-rest rot weeks before a restart's
        replay would.  Stray temps and a torn journal tail are *not*
        incidents here: a scrub racing an in-flight append can observe
        both legitimately.
        """
        while True:
            await asyncio.sleep(self.config.scrub_interval_s)
            try:
                report = await asyncio.to_thread(
                    scrub_store, self._checkpoint_dir
                )
            except OSError as exc:
                self.health.note_storage_fault(
                    "scrub", self._checkpoint_dir, repr(exc)
                )
                continue
            for unit in report.damaged:
                self.health.note_scrub_damage(str(unit))
            self.health.note_scrub(report.n_verified_ok)

    def _disk_free_bytes(self) -> int:
        if self._disk_probe is not None:
            return self._disk_probe()
        return shutil.disk_usage(self._checkpoint_dir).free

    def _check_disk_pressure(self) -> Optional[Dict[str, Any]]:
        """Typed shed response while the WAL volume is under pressure.

        Mirrors the ingest queue's hysteresis: shedding starts below
        ``disk_min_free_bytes`` and stops only past
        ``disk_resume_free_bytes``, with one ``disk-pressure`` incident
        per episode (each shed batch is still counted individually).
        """
        if self.config.disk_min_free_bytes <= 0:
            return None
        free = self._disk_free_bytes()
        if not self._disk_shedding:
            if free >= self.config.disk_min_free_bytes:
                return None
            self._disk_shedding = True
            self.health.note_disk_pressure(
                free, self.config.disk_min_free_bytes
            )
        elif free >= self.config.disk_resume_free_bytes:
            self._disk_shedding = False
            return None
        return {
            "status": "shed",
            "error": (
                f"WAL volume has {free} free bytes; ingest resumes past "
                f"{self.config.disk_resume_free_bytes}"
            ),
            "retry_after_s": self.config.shed_retry_after_s,
            "free_bytes": free,
        }

    def _record_restart(self, name: str, attempt: int, error: BaseException) -> None:
        self.health.note_task_restart(name, attempt, repr(error))

    # -- request handling ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Request line exceeded max_request_bytes: reject it
                    # without buffering it, then drop the connection
                    # (the stream is no longer line-synchronized).
                    writer.write(
                        json.dumps({
                            "status": "rejected",
                            "error": (
                                "request exceeds "
                                f"{self.config.max_request_bytes} bytes"
                            ),
                        }).encode("utf-8") + b"\n"
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if line.startswith(b"GET "):
                    await self._respond_http(writer, line)
                    break
                try:
                    response = await asyncio.wait_for(
                        self._dispatch_line(line),
                        timeout=self.config.request_timeout_s,
                    )
                except asyncio.TimeoutError:
                    response = {
                        "status": "retry",
                        "error": "request deadline exceeded",
                        "retry_after_s": self.config.shed_retry_after_s,
                    }
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
                if response.get("op") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            # The peer hung up mid-request; nothing to answer.
            return
        finally:
            writer.close()

    async def _respond_http(
        self, writer: asyncio.StreamWriter, request_line: bytes
    ) -> None:
        """Minimal HTTP/1.0 shim so probes can hit /healthz and /readyz."""
        parts = request_line.decode("latin-1").split()
        path = parts[1] if len(parts) > 1 else ""
        op = _HTTP_PATHS.get(path)
        if op == "healthz":
            code, payload = 200, self.health.healthz()
        elif op == "readyz":
            payload = self.health.readyz()
            code = 200 if payload["ready"] else 503
        else:
            code, payload = 404, {"error": f"unknown path {path!r}"}
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 404: "Not Found", 503: "Service Unavailable"}[code]
        writer.write(
            f"HTTP/1.0 {code} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n".encode("latin-1") + body
        )
        await writer.drain()

    async def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return {"status": "error", "error": f"unreadable request: {exc}"}
        if not isinstance(request, dict):
            return {"status": "error", "error": "request must be a JSON object"}
        op = request.get("op")
        if op == "ingest":
            return await self._op_ingest(request)
        if op == "query":
            return self._op_query(request)
        if op == "footprint":
            return self._op_footprint(request)
        if op == "digest":
            self._refresh_caches()
            return {
                "status": "ok",
                "digest": catalog_digest(
                    self._cached_records, self._cached_summaries
                ),
                "n_devices": len(self._cached_summaries),
                "n_records": len(self._cached_records),
            }
        if op == "healthz":
            return {"status": "ok", "healthz": self.health.healthz()}
        if op == "readyz":
            return {"status": "ok", "readyz": self.health.readyz()}
        if op == "shutdown":
            self.health.shutting_down = True
            # Retained on the instance: the shutdown task must outlive
            # this request handler.
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.stop()
            )
            return {"status": "ok", "op": "shutdown"}
        return {"status": "error", "error": f"unknown op {op!r}"}

    async def _op_ingest(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.wal is not None
        batch_id = request.get("batch_id")
        if not isinstance(batch_id, str) or not batch_id:
            return {"status": "error", "error": "ingest requires a batch_id"}
        rows = request.get("rows")
        if not isinstance(rows, list):
            return {"status": "error", "error": "ingest requires a rows list"}
        if len(rows) > self.config.max_batch_rows:
            return {
                "status": "rejected",
                "error": (
                    f"batch holds {len(rows)} rows; limit is "
                    f"{self.config.max_batch_rows}"
                ),
            }
        if batch_id in self.wal.applied_batch_ids:
            return {"status": "ok", "duplicate": True}
        in_flight = self._pending.get(batch_id)
        if in_flight is not None:
            return await self._await_ack(batch_id, in_flight, duplicate=True)
        pressure = self._check_disk_pressure()
        if pressure is not None:
            self.health.note_shed(batch_id, self.config.shed_retry_after_s)
            return pressure

        events, records, report = parse_batch_rows(rows, source=batch_id)
        ack: "asyncio.Future[int]" = asyncio.get_running_loop().create_future()
        pending = _PendingBatch(batch_id, events, records, ack)
        try:
            self.queue.put_nowait(pending)
        except OverloadShed as shed:
            if shed.saturation_started:
                self.health.note_queue_saturation(shed.depth, shed.high_watermark)
            self.health.note_shed(batch_id, shed.retry_after_s)
            return {
                "status": "shed",
                "error": str(shed),
                "retry_after_s": shed.retry_after_s,
                "queue_depth": shed.depth,
            }
        self._pending[batch_id] = ack
        response = await self._await_ack(batch_id, ack, report=report)
        return response

    async def _await_ack(
        self,
        batch_id: str,
        ack: "asyncio.Future[int]",
        duplicate: bool = False,
        report: Any = None,
    ) -> Dict[str, Any]:
        try:
            seq = await asyncio.wait_for(
                asyncio.shield(ack), timeout=self.config.batch_deadline_s
            )
        except asyncio.TimeoutError:
            # The batch stays queued; the ack future stays pending, so a
            # re-send under the same id awaits it instead of re-queueing.
            return {
                "status": "retry",
                "error": "batch deadline exceeded before durable ack",
                "batch_id": batch_id,
                "retry_after_s": self.config.shed_retry_after_s,
            }
        except Exception as exc:  # noqa: BLE001 — the drain loop parks the
            # WAL append's failure (whatever its type) on the ack future;
            # the client gets a typed error, never a dropped connection.
            self._pending.pop(batch_id, None)
            return {"status": "error", "error": repr(exc), "batch_id": batch_id}
        self._pending.pop(batch_id, None)
        response: Dict[str, Any] = {"status": "ok", "seq": seq, "batch_id": batch_id}
        if duplicate:
            response["duplicate"] = True
        if report is not None:
            response["ingest"] = report_payload(report)
        return response

    def _op_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        device_id = request.get("device_id")
        if not isinstance(device_id, str):
            return {"status": "error", "error": "query requires a device_id"}
        self._refresh_caches()
        summary = self._cached_summaries.get(device_id)
        if summary is None:
            return {"status": "not_found", "device_id": device_id}
        classification = self._cached_classes[device_id]
        return {
            "status": "ok",
            "device_id": device_id,
            "sim_plmn": summary.sim_plmn,
            "label": str(summary.label),
            "class": classification.label.value,
            "class_step": classification.step.value,
            "active_days": summary.active_days,
            "n_events": summary.n_events,
            "n_calls": summary.n_calls,
            "bytes_total": summary.bytes_total,
            "visited_plmns": sorted(summary.visited_plmns),
            "apns": sorted(summary.apns),
        }

    def _op_footprint(self, request: Dict[str, Any]) -> Dict[str, Any]:
        sim_plmn = request.get("sim_plmn")
        if not isinstance(sim_plmn, str):
            return {"status": "error", "error": "footprint requires a sim_plmn"}
        self._refresh_caches()
        visited: Set[str] = set()
        labels: Dict[str, int] = {}
        classes: Dict[str, int] = {}
        n_devices = 0
        for device_id, summary in self._cached_summaries.items():
            if summary.sim_plmn != sim_plmn:
                continue
            n_devices += 1
            visited.update(summary.visited_plmns)
            label = str(summary.label)
            labels[label] = labels.get(label, 0) + 1
            cls = self._cached_classes[device_id].label.value
            classes[cls] = classes.get(cls, 0) + 1
        return {
            "status": "ok",
            "sim_plmn": sim_plmn,
            "n_devices": n_devices,
            "visited_plmns": sorted(visited),
            "labels": dict(sorted(labels.items())),
            "classes": dict(sorted(classes.items())),
        }


async def run_daemon(
    ecosystem: Ecosystem,
    checkpoint_dir: str,
    config: Optional[ServiceConfig] = None,
    resume: bool = False,
    seed: int = 0,
    ready_callback: Optional[Callable[[int], None]] = None,
) -> None:
    """Start a daemon and serve until a shutdown op (CLI entry point)."""
    daemon = CatalogDaemon(
        ecosystem, checkpoint_dir, config=config, resume=resume, seed=seed
    )
    await daemon.start()
    if ready_callback is not None:
        ready_callback(daemon.port)
    await daemon.serve_until_stopped()
