"""Service-level health: RunHealth incidents plus liveness gauges.

The daemon reuses the batch runtime's incident taxonomy
(:class:`repro.parallel.health.RunHealth`) so one vocabulary covers
both execution modes — a torn WAL unit at daemon restart is the same
``torn-checkpoint`` incident a durable batch run reports.  On top of
the incident log sit plain gauges (queue depth, acked batches, snapshot
progress) that describe a *healthy* daemon; gauges never pollute the
incident list, so ``RunHealth.ok`` still means "nothing went wrong".

``healthz``/``readyz`` follow the usual split: *healthz* is "describe
yourself" (always answers, degraded or not); *readyz* is the gate ("may
traffic be routed here"), which drops the moment a supervised task
exhausts its restart budget or shutdown begins.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.parallel.health import (
    DISK_PRESSURE,
    OVERLOAD_SHED,
    QUEUE_SATURATION,
    SCRUB_DAMAGE,
    SNAPSHOT,
    STORAGE_FAULT,
    TASK_RESTART,
    TORN_CHECKPOINT,
    RunHealth,
    ShardIncident,
    StorageIncident,
)


class ServiceHealth:
    """One daemon's aggregate health: incidents + gauges.

    ``depth_probe`` is injected by the daemon so queue depth is read
    live at report time rather than cached on every transition.
    """

    def __init__(self, depth_probe: Optional[Callable[[], int]] = None) -> None:
        self.run_health = RunHealth()
        self._depth_probe = depth_probe
        self.batches_acked = 0
        self.rows_ingested = 0
        self.batches_replayed = 0
        self.snapshots_completed = 0
        self.last_snapshot_seq = -1
        self.scrubs_completed = 0
        self.last_scrub_verified_ok = -1
        self.ready = False
        self.shutting_down = False

    # -- incident recording (RunHealth kinds) --------------------------------

    def _record(self, kind: str, detail: str, attempt: int = 0) -> None:
        self.run_health.record(
            ShardIncident(shard_index=0, kind=kind, attempt=attempt, detail=detail)
        )

    def note_queue_saturation(self, depth: int, high_watermark: int) -> None:
        self._record(
            QUEUE_SATURATION, f"ingest queue reached {depth}/{high_watermark}"
        )

    def note_shed(self, batch_id: str, retry_after_s: float) -> None:
        self._record(
            OVERLOAD_SHED, f"batch {batch_id!r} shed; retry after {retry_after_s}s"
        )

    def note_task_restart(self, task_name: str, attempt: int, error: str) -> None:
        self._record(TASK_RESTART, f"task {task_name!r}: {error}", attempt=attempt)

    def note_snapshot_failure(self, error: str) -> None:
        self._record(SNAPSHOT, f"snapshot cycle failed: {error}")

    def note_torn_wal(self, detail: str) -> None:
        self._record(TORN_CHECKPOINT, detail)

    # -- storage incidents (StorageIncident kinds) ----------------------------

    def note_storage_fault(self, op: str, path: str, detail: str) -> None:
        self.run_health.record_storage(
            StorageIncident(kind=STORAGE_FAULT, op=op, path=path, detail=detail)
        )

    def note_disk_pressure(self, free_bytes: int, min_free_bytes: int) -> None:
        """One incident per shedding episode (hysteresis, not per batch)."""
        self.run_health.record_storage(
            StorageIncident(
                kind=DISK_PRESSURE,
                op="write",
                detail=(
                    f"free {free_bytes} bytes below watermark "
                    f"{min_free_bytes}; shedding ingest"
                ),
            )
        )

    def note_scrub_damage(self, detail: str) -> None:
        self.run_health.record_storage(
            StorageIncident(kind=SCRUB_DAMAGE, op="scrub", detail=detail)
        )

    # -- gauges ---------------------------------------------------------------

    def note_ack(self, n_rows: int) -> None:
        self.batches_acked += 1
        self.rows_ingested += n_rows

    def note_snapshot(self, seq: int) -> None:
        self.snapshots_completed += 1
        self.last_snapshot_seq = seq

    def note_scrub(self, n_verified_ok: int) -> None:
        self.scrubs_completed += 1
        self.last_scrub_verified_ok = n_verified_ok

    @property
    def queue_depth(self) -> int:
        return self._depth_probe() if self._depth_probe is not None else 0

    # -- endpoint payloads ----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Liveness report: always answers, flags degradation."""
        rh = self.run_health
        return {
            "status": "ok" if rh.ok else "degraded",
            "queue_depth": self.queue_depth,
            "batches_acked": self.batches_acked,
            "rows_ingested": self.rows_ingested,
            "batches_replayed": self.batches_replayed,
            "snapshots_completed": self.snapshots_completed,
            "last_snapshot_seq": self.last_snapshot_seq,
            "queue_saturations": rh.queue_saturations,
            "shed_batches": rh.shed_batches,
            "task_restarts": rh.task_restarts,
            "snapshot_failures": rh.snapshots,
            "torn_checkpoints": rh.torn_checkpoints,
            "storage_faults": rh.storage_faults,
            "disk_pressure_events": rh.disk_pressure_events,
            "scrub_damage_events": rh.scrub_damage_events,
            "scrubs_completed": self.scrubs_completed,
            "last_scrub_verified_ok": self.last_scrub_verified_ok,
            "n_incidents": len(rh.incidents) + len(rh.storage_incidents),
            "summary": rh.summary(),
        }

    def readyz(self) -> Dict[str, Any]:
        """Readiness gate: may traffic be routed to this daemon?"""
        ready = self.ready and not self.shutting_down
        return {"ready": ready, "shutting_down": self.shutting_down}
