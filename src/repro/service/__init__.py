"""Long-lived catalog service: ingest micro-batches, serve point queries.

The batch pipeline (:mod:`repro.pipeline`, :mod:`repro.runtime`) answers
"what did the whole window look like"; this package answers the
operational twin: a daemon that *stays up*, folds event micro-batches
into the incremental catalog (:meth:`repro.core.catalog.CatalogBuilder.
update`) as they arrive, and serves point queries about any device while
ingest continues.

The robustness contract, end to end:

* **Bounded memory** — ingest flows through a watermarked queue
  (:class:`BoundedIngestQueue`); past the high watermark the daemon
  sheds load with a typed :class:`OverloadShed` carrying retry guidance
  instead of buffering without bound.
* **No lost acknowledged batch** — a batch is acknowledged only after
  its rows are journaled in a write-ahead log built on
  :class:`repro.runtime.checkpoint.CheckpointStore`; a SIGKILL at any
  instant loses at most *unacknowledged* batches, which clients replay
  (idempotently, keyed by batch id).
* **No orphaned coroutines** — every background task runs under
  :class:`TaskSupervisor`, which retains the task, restarts crashes
  under a :class:`repro.faults.RetryPolicy` and fails loudly (readiness
  drops) once restarts are exhausted.
* **Observable health** — :class:`ServiceHealth` extends the
  :class:`repro.parallel.health.RunHealth` incident taxonomy with
  queue-saturation, shed, restart and snapshot kinds, served over
  ``healthz``/``readyz`` ops.

Start one with ``python -m repro serve`` or programmatically via
:class:`CatalogDaemon`; talk to it with :class:`CatalogClient`.
"""

from repro.service.config import ServiceConfig
from repro.service.client import CatalogClient, ServiceUnavailable
from repro.service.daemon import CatalogDaemon, catalog_digest
from repro.service.health import ServiceHealth
from repro.service.protocol import parse_batch_rows
from repro.service.queue import BoundedIngestQueue, OverloadShed
from repro.service.supervisor import TaskSupervisor
from repro.service.wal import BatchLog, ReplayedBatch

__all__ = [
    "BatchLog",
    "BoundedIngestQueue",
    "CatalogClient",
    "CatalogDaemon",
    "OverloadShed",
    "ReplayedBatch",
    "ServiceConfig",
    "ServiceHealth",
    "ServiceUnavailable",
    "TaskSupervisor",
    "catalog_digest",
    "parse_batch_rows",
]
