"""Supervised background tasks: no orphans, no silent death.

``asyncio.create_task`` with a dropped return value is the async
equivalent of a daemon thread nobody joins: the coroutine can die with
a traceback nobody sees (lint rule ``SVC001`` bans exactly that in this
package).  :class:`TaskSupervisor` is the sanctioned alternative —
every background coroutine is registered with a *factory*, the
supervisor retains the running task, and a crash is either restarted
(with :class:`repro.faults.RetryPolicy` backoff, recorded as a
``task-restart`` incident) or, once the restart budget is exhausted,
surfaced loudly through the ``failed`` event so the daemon can drop
readiness instead of limping on without its drain loop.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Awaitable, Callable, Dict, List, Optional

import numpy as np

from repro.faults.retry import RetryPolicy

#: A supervised coroutine is re-creatable: the supervisor restarts it by
#: calling the factory again, never by reusing a finished coroutine.
TaskFactory = Callable[[], Awaitable[None]]


class TaskSupervisor:
    """Owns every background task of one daemon.

    ``policy`` governs restart pacing; its jitter is drawn from the
    seeded ``rng`` so chaos tests see deterministic restart schedules.
    A factory coroutine that *returns* is treated as finished work (no
    restart); one that *raises* is restarted until ``policy.
    max_attempts`` restarts have been spent, after which ``failed`` is
    set and ``failure`` names the task and its last error.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        rng: np.random.Generator,
        on_restart: Optional[Callable[[str, int, BaseException], None]] = None,
    ) -> None:
        self._policy = policy
        self._rng = rng
        self._on_restart = on_restart
        #: Supervision wrappers, retained for the daemon's lifetime —
        #: the whole point of the class.
        self._tasks: Dict[str, "asyncio.Task[None]"] = {}
        self.failed = asyncio.Event()
        self.failure: Optional[str] = None
        self.restarts: Dict[str, int] = {}

    def supervise(self, name: str, factory: TaskFactory) -> None:
        """Start ``factory()`` under supervision as task ``name``."""
        if name in self._tasks:
            raise ValueError(f"task {name!r} is already supervised")
        self.restarts[name] = 0
        self._tasks[name] = asyncio.get_running_loop().create_task(
            self._run(name, factory)
        )

    async def _run(self, name: str, factory: TaskFactory) -> None:
        attempt = 0
        while True:
            try:
                await factory()
                return  # clean completion: the task's work is done
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — supervision boundary
                if attempt >= self._policy.max_attempts:
                    self.failure = f"task {name!r} failed permanently: {exc!r}"
                    self.failed.set()
                    raise
                delay = self._policy.delay_s(attempt, self._rng)
                self.restarts[name] += 1
                if self._on_restart is not None:
                    self._on_restart(name, attempt, exc)
                attempt += 1
                await asyncio.sleep(delay)

    @property
    def task_names(self) -> List[str]:
        return sorted(self._tasks)

    def is_running(self, name: str) -> bool:
        task = self._tasks.get(name)
        return task is not None and not task.done()

    async def shutdown(self) -> None:
        """Cancel every supervised task and wait for all to finish.

        Cancellation (and any error the dying task raises on its way
        out) is the *expected* outcome here; shutdown must reap every
        task regardless.
        """
        for task in self._tasks.values():
            task.cancel()
        for task in self._tasks.values():
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._tasks.clear()
