"""JSON (de)serialization of simulator configurations.

Reproducibility plumbing: a simulation is fully determined by its
configs, so persisting them alongside a generated dataset makes any run
re-creatable.  Handles :class:`EcosystemConfig`, :class:`PlatformConfig`
(with nested fleets and vertical mixes), :class:`MNOConfig` and
:class:`~repro.faults.FaultPlan` (with outage windows) —
**excluding** the MNO segment table, which is code-defined; a config
referencing custom segments round-trips everything else and records the
segment-table fingerprint so mismatches are detected at load time.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.devices.device import IoTVertical
from repro.ecosystem import EcosystemConfig
from repro.faults.plan import CorruptionKind, FaultPlan, OutageWindow
from repro.mno.config import MNOConfig, default_segments
from repro.platform_m2m.config import HMNOFleetConfig, PlatformConfig
from repro.signaling.procedures import ResultCode

PathLike = Union[str, Path]

_KIND_KEY = "__kind__"


def _segment_fingerprint(config: MNOConfig) -> str:
    """Stable hash of the segment table (names + fractions + profiles)."""
    payload = json.dumps(
        [(s.name, s.fraction, s.profile) for s in config.segments],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def ecosystem_config_to_dict(config: EcosystemConfig) -> Dict[str, Any]:
    """Serialize an EcosystemConfig to a JSON-ready dict."""
    return {
        _KIND_KEY: "EcosystemConfig",
        "uk_sites": config.uk_sites,
        "mvnos_on_study_mno": config.mvnos_on_study_mno,
        "seed": config.seed,
    }


def platform_config_to_dict(config: PlatformConfig) -> Dict[str, Any]:
    """Serialize a PlatformConfig (with fleets) to a JSON-ready dict."""
    return {
        _KIND_KEY: "PlatformConfig",
        "n_devices": config.n_devices,
        "window_days": config.window_days,
        "seed": config.seed,
        "native_median_txns": config.native_median_txns,
        "roaming_median_txns": config.roaming_median_txns,
        "txn_sigma": config.txn_sigma,
        "flooder_prob": config.flooder_prob,
        "flooder_multiplier": config.flooder_multiplier,
        "failed_only_fraction": config.failed_only_fraction,
        "sporadic_failure_prob": config.sporadic_failure_prob,
        "steering_mix": list(config.steering_mix),
        "fleets": {
            iso: {
                "share": fleet.share,
                "roaming_fraction": fleet.roaming_fraction,
                "visited_country_zipf": fleet.visited_country_zipf,
                "multi_country_fraction": fleet.multi_country_fraction,
                "vertical_mix": {
                    vertical.value: weight
                    for vertical, weight in fleet.vertical_mix.items()
                },
            }
            for iso, fleet in config.fleets.items()
        },
    }


def mno_config_to_dict(config: MNOConfig) -> Dict[str, Any]:
    """Serialize an MNOConfig (sans segment table) to a JSON-ready dict."""
    return {
        _KIND_KEY: "MNOConfig",
        "n_devices": config.n_devices,
        "window_days": config.window_days,
        "seed": config.seed,
        "voice_event_fraction": config.voice_event_fraction,
        "segment_fingerprint": _segment_fingerprint(config),
    }


def fault_plan_to_dict(plan: FaultPlan) -> Dict[str, Any]:
    """Serialize a FaultPlan (with outage windows) to a JSON-ready dict.

    A persisted plan plus a dataset config fully determines an injected
    dataset, so chaos runs are re-creatable the same way simulations are.
    """
    return {
        _KIND_KEY: "FaultPlan",
        "seed": plan.seed,
        "drop_rate": plan.drop_rate,
        "duplicate_rate": plan.duplicate_rate,
        "reorder_rate": plan.reorder_rate,
        "corrupt_rate": plan.corrupt_rate,
        "reorder_window": plan.reorder_window,
        "corruptions": [kind.value for kind in plan.corruptions],
        "truncate_fraction": plan.truncate_fraction,
        "outages": [
            {
                "start_s": window.start_s,
                "end_s": window.end_s,
                "plmn": window.plmn,
                "result": window.result.value,
            }
            for window in plan.outages
        ],
    }


def config_from_dict(payload: Dict[str, Any]):
    """Rebuild a config object from its dict form."""
    kind = payload.get(_KIND_KEY)
    if kind == "EcosystemConfig":
        return EcosystemConfig(
            uk_sites=payload["uk_sites"],
            mvnos_on_study_mno=payload["mvnos_on_study_mno"],
            seed=payload["seed"],
        )
    if kind == "PlatformConfig":
        fleets = {
            iso: HMNOFleetConfig(
                share=f["share"],
                roaming_fraction=f["roaming_fraction"],
                visited_country_zipf=f["visited_country_zipf"],
                multi_country_fraction=f["multi_country_fraction"],
                vertical_mix={
                    IoTVertical(v): w for v, w in f["vertical_mix"].items()
                },
            )
            for iso, f in payload["fleets"].items()
        }
        return PlatformConfig(
            n_devices=payload["n_devices"],
            window_days=payload["window_days"],
            seed=payload["seed"],
            fleets=fleets,
            native_median_txns=payload["native_median_txns"],
            roaming_median_txns=payload["roaming_median_txns"],
            txn_sigma=payload["txn_sigma"],
            flooder_prob=payload["flooder_prob"],
            flooder_multiplier=payload["flooder_multiplier"],
            failed_only_fraction=payload["failed_only_fraction"],
            sporadic_failure_prob=payload["sporadic_failure_prob"],
            steering_mix=tuple(payload["steering_mix"]),
        )
    if kind == "MNOConfig":
        config = MNOConfig(
            n_devices=payload["n_devices"],
            window_days=payload["window_days"],
            seed=payload["seed"],
            segments=default_segments(),
            voice_event_fraction=payload["voice_event_fraction"],
        )
        expected = payload.get("segment_fingerprint")
        actual = _segment_fingerprint(config)
        if expected is not None and expected != actual:
            raise ValueError(
                f"segment table changed since this config was saved "
                f"(saved {expected}, current {actual})"
            )
        return config
    if kind == "FaultPlan":
        return FaultPlan(
            seed=payload["seed"],
            drop_rate=payload["drop_rate"],
            duplicate_rate=payload["duplicate_rate"],
            reorder_rate=payload["reorder_rate"],
            corrupt_rate=payload["corrupt_rate"],
            reorder_window=payload["reorder_window"],
            corruptions=tuple(
                CorruptionKind(value) for value in payload["corruptions"]
            ),
            truncate_fraction=payload["truncate_fraction"],
            outages=tuple(
                OutageWindow(
                    start_s=window["start_s"],
                    end_s=window["end_s"],
                    plmn=window["plmn"],
                    result=ResultCode(window["result"]),
                )
                for window in payload["outages"]
            ),
        )
    raise ValueError(f"unknown config kind {kind!r}")


def to_dict(config) -> Dict[str, Any]:
    """Dispatch on config type."""
    if isinstance(config, EcosystemConfig):
        return ecosystem_config_to_dict(config)
    if isinstance(config, PlatformConfig):
        return platform_config_to_dict(config)
    if isinstance(config, MNOConfig):
        return mno_config_to_dict(config)
    if isinstance(config, FaultPlan):
        return fault_plan_to_dict(config)
    raise TypeError(f"unsupported config type {type(config).__name__}")


def save_config(path: PathLike, config) -> None:
    """Write a config as pretty JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_dict(config), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_config(path: PathLike):
    """Read a config back from JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        return config_from_dict(json.load(handle))
