"""One-call convenience pipeline: dataset in, everything the figures need out.

Wraps the §4 workflow — devices-catalog construction, roaming labeling,
classification — into a single :func:`run_pipeline` call whose result
object every analysis module and bench consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.catalog import CatalogBuilder, DeviceDayRecord, DeviceSummary
from repro.core.classifier import Classification, ClassifierConfig, DeviceClassifier
from repro.core.roaming import RoamingLabeler
from repro.datasets.containers import MNODataset
from repro.ecosystem import Ecosystem


@dataclass
class PipelineResult:
    """Everything derived from one MNO dataset."""

    dataset: MNODataset
    day_records: List[DeviceDayRecord]
    summaries: Dict[str, DeviceSummary]
    classifications: Dict[str, Classification]
    labeler: RoamingLabeler


def run_pipeline(
    dataset: MNODataset,
    ecosystem: Ecosystem,
    classifier_config: Optional[ClassifierConfig] = None,
    compute_mobility: bool = True,
) -> PipelineResult:
    """Run catalog building, labeling and classification end to end."""
    labeler = RoamingLabeler(ecosystem.operators, dataset.observer)
    builder = CatalogBuilder(
        dataset.tac_db,
        dataset.sector_catalog,
        labeler,
        compute_mobility=compute_mobility,
    )
    day_records, summaries = builder.build(
        dataset.radio_events, dataset.service_records
    )
    classifier = DeviceClassifier(classifier_config)
    classifications = classifier.classify(summaries)
    return PipelineResult(
        dataset=dataset,
        day_records=day_records,
        summaries=summaries,
        classifications=classifications,
        labeler=labeler,
    )
