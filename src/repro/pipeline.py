"""One-call convenience pipeline: dataset in, everything the figures need out.

Wraps the §4 workflow — devices-catalog construction, roaming labeling,
classification — into a single :func:`run_pipeline` call whose result
object every analysis module and bench consumes.

Graceful degradation (``lenient=True``): real probe feeds contain rows
the pipeline cannot interpret (see :mod:`repro.faults`), and one
poisoned device must not take the whole day's catalog down.  In lenient
mode each stage runs per device; a device whose records crash a stage is
quarantined and the run completes over the survivors, reporting what was
lost in a :class:`DegradationReport`.  Strict mode (the default) keeps
the historical all-or-nothing behavior so programming errors stay loud.
"""

from __future__ import annotations

import os
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.parallel.health sits behind the
    # repro.parallel package, whose executor imports this module.
    from repro.parallel.health import RunHealth

from repro.columnar.store import (
    ColumnarRadioEvents,
    ColumnarServiceRecords,
    from_record_streams,
)
from repro.core.catalog import CatalogBuilder, DeviceDayRecord, DeviceSummary
from repro.core.classifier import Classification, ClassifierConfig, DeviceClassifier
from repro.core.roaming import RoamingLabeler
from repro.datasets.containers import MNODataset
from repro.datasets.io import IngestReport
from repro.ecosystem import Ecosystem
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent

#: How many per-device failures a DegradationReport keeps verbatim.
MAX_EXEMPLAR_FAILURES = 10

#: Below this many total rows, ``n_workers="auto"`` stays serial: the
#: committed bench (benchmarks/BENCH_baseline.json) shows pool spawn +
#: shard pickling dominating at small scale (workers=2 ran at 0.28x
#: serial on the 1k-device bench).
AUTO_PARALLEL_MIN_ROWS = 250_000

#: Environment flag flipping ``run_pipeline``'s default data plane to
#: columnar — how CI runs the whole tier-1 suite over the columnar path
#: without touching call sites.
COLUMNAR_ENV_FLAG = "REPRO_COLUMNAR"


@dataclass(frozen=True)
class StageFailure:
    """One quarantined device: which stage crashed, and how."""

    device_id: str
    stage: str
    error: str

    def __str__(self) -> str:
        return f"{self.device_id}@{self.stage}: {self.error}"


@dataclass
class DegradationReport:
    """What a lenient pipeline run lost, and where.

    ``coverage`` is the fraction of observed devices that made it all
    the way through; ``exemplars`` holds up to
    :data:`MAX_EXEMPLAR_FAILURES` verbatim failures for debugging while
    ``n_failed_by_stage`` always counts everything.
    """

    n_devices_total: int = 0
    n_devices_ok: int = 0
    n_failed_by_stage: Counter = field(default_factory=Counter)
    exemplars: List[StageFailure] = field(default_factory=list)
    classifier_fallback: bool = False
    #: Row-level losses from lenient ingest (partition-backed runs);
    #: None when the run's input never passed through the ingest layer.
    ingest: Optional[IngestReport] = None

    @property
    def n_devices_failed(self) -> int:
        return sum(self.n_failed_by_stage.values())

    @property
    def coverage(self) -> float:
        if self.n_devices_total == 0:
            return 1.0
        return self.n_devices_ok / self.n_devices_total

    @property
    def ok(self) -> bool:
        return self.n_devices_failed == 0 and not self.classifier_fallback

    def record_failure(self, device_id: str, stage: str, error: Exception) -> None:
        self.n_failed_by_stage[stage] += 1
        if len(self.exemplars) < MAX_EXEMPLAR_FAILURES:
            self.exemplars.append(
                StageFailure(
                    device_id=device_id,
                    stage=stage,
                    error=f"{type(error).__name__}: {error}",
                )
            )

    def merge(self, other: "DegradationReport") -> "DegradationReport":
        """Combine two per-shard reports into one whole-run report.

        Totals and per-stage counters sum; ``classifier_fallback`` ORs.
        Exemplars are re-sorted by device ID and re-capped so the merged
        report keeps the same exemplars a serial run (which visits
        devices in sorted order) would have kept, regardless of how
        devices were sharded.  The inputs are left untouched.
        """
        exemplars = sorted(
            self.exemplars + other.exemplars, key=lambda f: f.device_id
        )[:MAX_EXEMPLAR_FAILURES]
        if self.ingest is None:
            ingest = other.ingest
        elif other.ingest is None:
            ingest = self.ingest
        else:
            ingest = self.ingest.merge(other.ingest)
        return DegradationReport(
            n_devices_total=self.n_devices_total + other.n_devices_total,
            n_devices_ok=self.n_devices_ok + other.n_devices_ok,
            n_failed_by_stage=self.n_failed_by_stage + other.n_failed_by_stage,
            exemplars=exemplars,
            classifier_fallback=self.classifier_fallback or other.classifier_fallback,
            ingest=ingest,
        )


@dataclass
class PipelineResult:
    """Everything derived from one MNO dataset."""

    dataset: MNODataset
    day_records: List[DeviceDayRecord]
    summaries: Dict[str, DeviceSummary]
    classifications: Dict[str, Classification]
    labeler: RoamingLabeler
    degradation: Optional[DegradationReport] = None
    #: Recovery record from the resilient pool seam / durable runtime;
    #: None for serial, non-durable runs (nothing to recover from).
    health: Optional["RunHealth"] = None


def _records_by_device(
    dataset: MNODataset,
) -> Tuple[Dict[str, List[RadioEvent]], Dict[str, List[ServiceRecord]], Dict[str, int]]:
    """Split the dataset's record streams per device (lenient mode)."""
    events: Dict[str, List[RadioEvent]] = defaultdict(list)
    services: Dict[str, List[ServiceRecord]] = defaultdict(list)
    tac_of: Dict[str, int] = {}
    for event in dataset.radio_events:
        events[event.device_id].append(event)
        tac_of.setdefault(event.device_id, event.tac)
    for record in dataset.service_records:
        services[record.device_id].append(record)
    return events, services, tac_of


def _records_by_device_columnar(
    radio_events: ColumnarRadioEvents,
    service_records: ColumnarServiceRecords,
) -> Tuple[Dict[str, List[RadioEvent]], Dict[str, List[ServiceRecord]], Dict[str, int]]:
    """Columnar twin of :func:`_records_by_device`.

    Grouping scans the interned device-id columns (int comparisons);
    rows are materialized per device only afterwards — via the batched
    ``rows_at`` gather, one hoisted-locals pass per device — because the
    lenient stage needs real dataclasses to exercise — and quarantine —
    exactly the per-device failures the row path sees.
    """
    radio_indices: Dict[int, List[int]] = defaultdict(list)
    tac_by_id: Dict[int, int] = {}
    tacs = radio_events.tacs
    for i, dev in enumerate(radio_events.device_ids):
        radio_indices[dev].append(i)
        if dev not in tac_by_id:
            tac_by_id[dev] = tacs[i]
    service_indices: Dict[int, List[int]] = defaultdict(list)
    for i, dev in enumerate(service_records.device_ids):
        service_indices[dev].append(i)
    lookup = radio_events.pools.devices.lookup
    events = {lookup(dev): radio_events.rows_at(idx) for dev, idx in radio_indices.items()}
    services = {
        lookup(dev): service_records.rows_at(idx) for dev, idx in service_indices.items()
    }
    tac_of = {lookup(dev): tac for dev, tac in tac_by_id.items()}
    return events, services, tac_of


def _lenient_catalog_stage(
    device_ids: List[str],
    events: Dict[str, List[RadioEvent]],
    services: Dict[str, List[ServiceRecord]],
    tac_of: Dict[str, int],
    builder: CatalogBuilder,
) -> Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary], DegradationReport]:
    """Per-device catalog + summary with quarantine, over ``device_ids``.

    The unit the shard layer (:mod:`repro.parallel`) fans out: each
    worker runs this over its shard's devices and the partial results —
    including the :class:`DegradationReport` — merge into exactly what a
    serial pass over all devices produces.
    """
    report = DegradationReport(n_devices_total=len(device_ids))
    day_records: List[DeviceDayRecord] = []
    summaries: Dict[str, DeviceSummary] = {}
    for device_id in device_ids:
        try:
            records = builder.build_day_records(
                events.get(device_id, []), services.get(device_id, [])
            )
        except Exception as exc:
            report.record_failure(device_id, "catalog", exc)
            continue
        try:
            summaries.update(builder.summarize(records, tac_of))
        except Exception as exc:
            report.record_failure(device_id, "summary", exc)
            continue
        day_records.extend(records)
    return day_records, summaries, report


def _lenient_classify_stage(
    summaries: Dict[str, DeviceSummary],
    classifier: DeviceClassifier,
    report: DegradationReport,
) -> Dict[str, Classification]:
    """Batch classification with per-device fallback (lenient mode).

    Classification propagates properties *across* devices sharing a
    (manufacturer, model), so the batch call is the real thing; if one
    device poisons the batch, degrade to per-device classification —
    weaker (no propagation) but isolating.
    """
    classifications: Dict[str, Classification]
    try:
        classifications = classifier.classify(summaries)
    except Exception:
        report.classifier_fallback = True
        classifications = {}
        for device_id, summary in summaries.items():
            try:
                classifications.update(classifier.classify({device_id: summary}))
            except Exception as exc:
                report.record_failure(device_id, "classify", exc)
    return classifications


def _run_lenient(
    dataset: MNODataset,
    builder: CatalogBuilder,
    classifier: DeviceClassifier,
    columnar: bool = False,
) -> Tuple[
    List[DeviceDayRecord],
    Dict[str, DeviceSummary],
    Dict[str, Classification],
    DegradationReport,
]:
    if columnar:
        events_c, records_c = from_record_streams(
            dataset.radio_events, dataset.service_records
        )
        events, services, tac_of = _records_by_device_columnar(events_c, records_c)
    else:
        events, services, tac_of = _records_by_device(dataset)
    device_ids = sorted(set(events) | set(services))
    day_records, summaries, report = _lenient_catalog_stage(
        device_ids, events, services, tac_of, builder
    )
    day_records.sort(key=lambda r: (r.device_id, r.day))
    classifications = _lenient_classify_stage(summaries, classifier, report)
    report.n_devices_ok = len(classifications)
    return day_records, summaries, classifications, report


def resolve_workers(
    n_workers: Union[int, str], n_rows: Optional[int] = None
) -> int:
    """Resolve an ``n_workers`` argument (int or ``"auto"``) to a count.

    ``"auto"`` stays serial on boxes with ``os.cpu_count() <= 2`` (the
    committed bench shows 2 workers running at 0.28x serial — pool spawn
    and pickling swamp the win) and on small inputs
    (< :data:`AUTO_PARALLEL_MIN_ROWS` rows when ``n_rows`` is known);
    otherwise it uses up to four workers, past which the shard merge is
    the bottleneck.
    """
    if n_workers == "auto":
        cpus = os.cpu_count() or 1
        if cpus <= 2:
            return 1
        if n_rows is not None and n_rows < AUTO_PARALLEL_MIN_ROWS:
            return 1
        return min(cpus, 4)
    if not isinstance(n_workers, int):
        raise ValueError(f"n_workers must be an int or 'auto', got {n_workers!r}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return n_workers


def _columnar_default() -> bool:
    """The :data:`COLUMNAR_ENV_FLAG` shim: 1/true/yes/on enable."""
    return os.environ.get(COLUMNAR_ENV_FLAG, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def run_pipeline(
    dataset: MNODataset,
    ecosystem: Ecosystem,
    classifier_config: Optional[ClassifierConfig] = None,
    compute_mobility: bool = True,
    lenient: bool = False,
    n_workers: Union[int, str] = "auto",
    columnar: Optional[bool] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    out_of_core: bool = False,
) -> PipelineResult:
    """Run catalog building, labeling and classification end to end.

    With ``lenient=True`` stage failures quarantine the offending device
    instead of raising, and ``result.degradation`` reports coverage;
    strict mode (default) raises on the first failure and leaves
    ``degradation`` as None.

    ``n_workers > 1`` shards the hot stages by device across a process
    pool (:mod:`repro.parallel`); the merged output is byte-identical to
    the serial run at any worker count.  ``n_workers=1`` takes the exact
    serial code path — no pool, no sharding — and the default
    ``"auto"`` picks a count from the machine and input size
    (:func:`resolve_workers`), staying serial whenever the committed
    benches say the pool would lose.

    ``columnar=True`` runs the catalog stage on the struct-of-arrays
    data plane (:mod:`repro.columnar`): record streams are
    dictionary-encoded once and the catalog kernel scans interned int
    columns instead of dataclass rows.  Output is byte-identical to the
    row path in every mode; only the execution plan changes.  The
    default (``None``) reads the ``REPRO_COLUMNAR`` environment flag,
    which is how CI sweeps the whole suite over the columnar plane.

    ``checkpoint_dir`` makes the run *durable*: the pipeline executes
    day by day through :mod:`repro.runtime`, checkpointing each
    ``(day, shard)`` unit atomically so a killed run can be continued
    with ``resume=True`` to a byte-identical result.  ``resume`` is
    only meaningful with a checkpoint directory.

    ``out_of_core=True`` runs the same day-by-day execution with spilled
    column blocks replayed through an mmap-backed LRU window
    (:mod:`repro.runtime.spill`) so peak RSS is bounded by the shard
    window instead of the population; without a ``checkpoint_dir`` the
    spill store is an ephemeral directory removed with the run.  Output
    stays byte-identical to the in-memory path.
    """
    n_workers = resolve_workers(
        n_workers, len(dataset.radio_events) + len(dataset.service_records)
    )
    if columnar is None:
        columnar = _columnar_default()
    if checkpoint_dir is not None or out_of_core:
        # Imported lazily: repro.runtime sits on top of repro.parallel,
        # which imports this module.
        from repro.runtime.run import run_durable_pipeline

        return run_durable_pipeline(
            dataset,
            ecosystem,
            checkpoint_dir,
            resume=resume,
            classifier_config=classifier_config,
            compute_mobility=compute_mobility,
            lenient=lenient,
            n_workers=n_workers,
            columnar=columnar,
            out_of_core=out_of_core,
        )
    if resume:
        raise ValueError("resume=True requires a checkpoint_dir")
    labeler = RoamingLabeler(ecosystem.operators, dataset.observer)
    builder = CatalogBuilder(
        dataset.tac_db,
        dataset.sector_catalog,
        labeler,
        compute_mobility=compute_mobility,
    )
    classifier = DeviceClassifier(classifier_config)
    degradation: Optional[DegradationReport] = None
    health: Optional["RunHealth"] = None
    if n_workers > 1:
        # Imported lazily: repro.parallel pulls in concurrent.futures and
        # is only needed when a pool is actually requested.
        from repro.parallel.executor import run_stages_sharded
        from repro.parallel.health import RunHealth as _RunHealth

        health = _RunHealth()
        day_records, summaries, classifications, degradation = run_stages_sharded(
            dataset,
            builder,
            classifier,
            n_workers=n_workers,
            lenient=lenient,
            columnar=columnar,
            health=health,
        )
    elif lenient:
        day_records, summaries, classifications, degradation = _run_lenient(
            dataset, builder, classifier, columnar=columnar
        )
    elif columnar:
        events_c, records_c = from_record_streams(
            dataset.radio_events, dataset.service_records
        )
        day_records, summaries = builder.build_from_columns(events_c, records_c)
        classifications = classifier.classify(summaries)
    else:
        day_records, summaries = builder.build(
            dataset.radio_events, dataset.service_records
        )
        classifications = classifier.classify(summaries)
    return PipelineResult(
        dataset=dataset,
        day_records=day_records,
        summaries=summaries,
        classifications=classifications,
        labeler=labeler,
        degradation=degradation,
        health=health,
    )
