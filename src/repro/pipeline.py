"""One-call convenience pipeline: dataset in, everything the figures need out.

Wraps the §4 workflow — devices-catalog construction, roaming labeling,
classification — into a single :func:`run_pipeline` call whose result
object every analysis module and bench consumes.

Graceful degradation (``lenient=True``): real probe feeds contain rows
the pipeline cannot interpret (see :mod:`repro.faults`), and one
poisoned device must not take the whole day's catalog down.  In lenient
mode each stage runs per device; a device whose records crash a stage is
quarantined and the run completes over the survivors, reporting what was
lost in a :class:`DegradationReport`.  Strict mode (the default) keeps
the historical all-or-nothing behavior so programming errors stay loud.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.catalog import CatalogBuilder, DeviceDayRecord, DeviceSummary
from repro.core.classifier import Classification, ClassifierConfig, DeviceClassifier
from repro.core.roaming import RoamingLabeler
from repro.datasets.containers import MNODataset
from repro.ecosystem import Ecosystem
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent

#: How many per-device failures a DegradationReport keeps verbatim.
MAX_EXEMPLAR_FAILURES = 10


@dataclass(frozen=True)
class StageFailure:
    """One quarantined device: which stage crashed, and how."""

    device_id: str
    stage: str
    error: str

    def __str__(self) -> str:
        return f"{self.device_id}@{self.stage}: {self.error}"


@dataclass
class DegradationReport:
    """What a lenient pipeline run lost, and where.

    ``coverage`` is the fraction of observed devices that made it all
    the way through; ``exemplars`` holds up to
    :data:`MAX_EXEMPLAR_FAILURES` verbatim failures for debugging while
    ``n_failed_by_stage`` always counts everything.
    """

    n_devices_total: int = 0
    n_devices_ok: int = 0
    n_failed_by_stage: Dict[str, int] = field(default_factory=dict)
    exemplars: List[StageFailure] = field(default_factory=list)
    classifier_fallback: bool = False

    @property
    def n_devices_failed(self) -> int:
        return sum(self.n_failed_by_stage.values())

    @property
    def coverage(self) -> float:
        if self.n_devices_total == 0:
            return 1.0
        return self.n_devices_ok / self.n_devices_total

    @property
    def ok(self) -> bool:
        return self.n_devices_failed == 0 and not self.classifier_fallback

    def record_failure(self, device_id: str, stage: str, error: Exception) -> None:
        self.n_failed_by_stage[stage] = self.n_failed_by_stage.get(stage, 0) + 1
        if len(self.exemplars) < MAX_EXEMPLAR_FAILURES:
            self.exemplars.append(
                StageFailure(
                    device_id=device_id,
                    stage=stage,
                    error=f"{type(error).__name__}: {error}",
                )
            )


@dataclass
class PipelineResult:
    """Everything derived from one MNO dataset."""

    dataset: MNODataset
    day_records: List[DeviceDayRecord]
    summaries: Dict[str, DeviceSummary]
    classifications: Dict[str, Classification]
    labeler: RoamingLabeler
    degradation: Optional[DegradationReport] = None


def _records_by_device(
    dataset: MNODataset,
) -> Tuple[Dict[str, List[RadioEvent]], Dict[str, List[ServiceRecord]], Dict[str, int]]:
    """Split the dataset's record streams per device (lenient mode)."""
    events: Dict[str, List[RadioEvent]] = defaultdict(list)
    services: Dict[str, List[ServiceRecord]] = defaultdict(list)
    tac_of: Dict[str, int] = {}
    for event in dataset.radio_events:
        events[event.device_id].append(event)
        tac_of.setdefault(event.device_id, event.tac)
    for record in dataset.service_records:
        services[record.device_id].append(record)
    return events, services, tac_of


def _run_lenient(
    dataset: MNODataset,
    builder: CatalogBuilder,
    classifier: DeviceClassifier,
) -> Tuple[
    List[DeviceDayRecord],
    Dict[str, DeviceSummary],
    Dict[str, Classification],
    DegradationReport,
]:
    events, services, tac_of = _records_by_device(dataset)
    device_ids = sorted(set(events) | set(services))
    report = DegradationReport(n_devices_total=len(device_ids))

    day_records: List[DeviceDayRecord] = []
    summaries: Dict[str, DeviceSummary] = {}
    for device_id in device_ids:
        try:
            records = builder.build_day_records(
                events.get(device_id, []), services.get(device_id, [])
            )
        except Exception as exc:
            report.record_failure(device_id, "catalog", exc)
            continue
        try:
            summaries.update(builder.summarize(records, tac_of))
        except Exception as exc:
            report.record_failure(device_id, "summary", exc)
            continue
        day_records.extend(records)

    day_records.sort(key=lambda r: (r.device_id, r.day))

    # Classification propagates properties *across* devices sharing a
    # (manufacturer, model), so the batch call is the real thing; if one
    # device poisons the batch, degrade to per-device classification —
    # weaker (no propagation) but isolating.
    classifications: Dict[str, Classification]
    try:
        classifications = classifier.classify(summaries)
    except Exception:
        report.classifier_fallback = True
        classifications = {}
        for device_id, summary in summaries.items():
            try:
                classifications.update(classifier.classify({device_id: summary}))
            except Exception as exc:
                report.record_failure(device_id, "classify", exc)

    report.n_devices_ok = len(classifications)
    return day_records, summaries, classifications, report


def run_pipeline(
    dataset: MNODataset,
    ecosystem: Ecosystem,
    classifier_config: Optional[ClassifierConfig] = None,
    compute_mobility: bool = True,
    lenient: bool = False,
) -> PipelineResult:
    """Run catalog building, labeling and classification end to end.

    With ``lenient=True`` stage failures quarantine the offending device
    instead of raising, and ``result.degradation`` reports coverage;
    strict mode (default) raises on the first failure and leaves
    ``degradation`` as None.
    """
    labeler = RoamingLabeler(ecosystem.operators, dataset.observer)
    builder = CatalogBuilder(
        dataset.tac_db,
        dataset.sector_catalog,
        labeler,
        compute_mobility=compute_mobility,
    )
    classifier = DeviceClassifier(classifier_config)
    degradation: Optional[DegradationReport] = None
    if lenient:
        day_records, summaries, classifications, degradation = _run_lenient(
            dataset, builder, classifier
        )
    else:
        day_records, summaries = builder.build(
            dataset.radio_events, dataset.service_records
        )
        classifications = classifier.classify(summaries)
    return PipelineResult(
        dataset=dataset,
        day_records=day_records,
        summaries=summaries,
        classifications=classifications,
        labeler=labeler,
        degradation=degradation,
    )
