"""Mobility analysis: Fig. 8 (radius of gyration per device class).

"Results confirm expectation, i.e., the M2M inbound roaming devices are
in majority stationary, with only 20% devices present a gyration larger
than 1km (some likely due to cell reselection, rather than actual
movements)."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.stats import ECDF
from repro.core.classifier import ClassLabel
from repro.pipeline import PipelineResult


@dataclass
class Fig8Result:
    """Gyration ECDFs per class (all devices with radio activity), plus
    the inbound-M2M slice the paper highlights."""

    by_class: Dict[ClassLabel, ECDF]
    m2m_inbound: Optional[ECDF]

    def m2m_inbound_fraction_above(self, km: float = 1.0) -> float:
        if self.m2m_inbound is None:
            return float("nan")
        return self.m2m_inbound.fraction_above(km)


def fig8_gyration(result: PipelineResult) -> Fig8Result:
    """Across-days average radius of gyration per device (Fig. 8)."""
    by_class: Dict[ClassLabel, List[float]] = {}
    m2m_inbound: List[float] = []
    for device_id, summary in result.summaries.items():
        if summary.mean_gyration_km is None:
            continue  # no radio activity -> no mobility estimate
        cls = result.classifications[device_id].label
        by_class.setdefault(cls, []).append(summary.mean_gyration_km)
        if cls is ClassLabel.M2M and summary.label.is_inbound_roamer:
            m2m_inbound.append(summary.mean_gyration_km)
    return Fig8Result(
        by_class={c: ECDF(v) for c, v in by_class.items() if v},
        m2m_inbound=ECDF(m2m_inbound) if m2m_inbound else None,
    )
