"""Device-activity analysis: Fig. 7 (number of active days).

"Considering inbound roamers, IoT devices are active 4.5x longer than
smartphones as a median (9 days for M2M devices and 2 days for
smartphones), while the 2 device types present similar properties if
they are native devices."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.analysis.stats import ECDF
from repro.core.classifier import ClassLabel
from repro.pipeline import PipelineResult


@dataclass
class Fig7Result:
    """Active-days ECDFs per (class, roaming group)."""

    inbound: Dict[ClassLabel, ECDF]
    native: Dict[ClassLabel, ECDF]

    def median_ratio_inbound(self) -> float:
        """Inbound M2M median active days over inbound smartphone median
        (the paper's 4.5x)."""
        m2m = self.inbound.get(ClassLabel.M2M)
        smart = self.inbound.get(ClassLabel.SMART)
        if m2m is None or smart is None or smart.median == 0:
            return float("nan")
        return m2m.median / smart.median


def fig7_active_days(
    result: PipelineResult,
    classes: Iterable[ClassLabel] = (ClassLabel.M2M, ClassLabel.SMART),
) -> Fig7Result:
    """Active days per device, split inbound roamers vs native (Fig. 7).

    "Native" here groups H:H and V:H devices, matching the paper's
    native/inbound contrast.
    """
    wanted = set(classes)
    inbound_days: Dict[ClassLabel, List[int]] = {c: [] for c in wanted}
    native_days: Dict[ClassLabel, List[int]] = {c: [] for c in wanted}
    for device_id, summary in result.summaries.items():
        cls = result.classifications[device_id].label
        if cls not in wanted:
            continue
        label = summary.label
        if label.is_inbound_roamer:
            inbound_days[cls].append(summary.active_days)
        elif label.visited.value == "H" and label.sim.value in ("H", "V"):
            native_days[cls].append(summary.active_days)
    return Fig7Result(
        inbound={c: ECDF(v) for c, v in inbound_days.items() if v},
        native={c: ECDF(v) for c, v in native_days.items() if v},
    )
