"""M2M-platform analyses: Fig. 2, Fig. 3 and the §3.2/§3.3 statistics."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.stats import ECDF, normalize_rows
from repro.cellular.countries import CountryRegistry
from repro.datasets.containers import M2MDataset
from repro.signaling.procedures import MessageType


def _country_iso(countries: CountryRegistry, mcc: int) -> str:
    country = countries.by_mcc(mcc)
    return country.iso if country else f"MCC{mcc}"


# -- Fig. 2 -------------------------------------------------------------------

@dataclass
class Fig2Result:
    """Devices per (HMNO home country, visited country), row-normalized.

    ``hmno_shares`` is the y-axis annotation of Fig. 2 (share of devices
    per HMNO); ``matrix[hmno][visited]`` the row-normalized cell values.
    """

    hmno_shares: Dict[str, float]
    matrix: Dict[str, Dict[str, float]]
    device_counts: Dict[str, int]

    def top_visited(self, hmno_iso: str, k: int = 5) -> List[Tuple[str, float]]:
        row = self.matrix.get(hmno_iso, {})
        return sorted(row.items(), key=lambda kv: -kv[1])[:k]


def fig2_device_distribution(
    dataset: M2MDataset,
    countries: CountryRegistry,
    min_cell_share: float = 0.001,
) -> Fig2Result:
    """Where each HMNO's devices operate (Fig. 2).

    Cells below ``min_cell_share`` of a row are folded into "Other",
    matching the paper's 0.1% breakdown threshold.
    """
    devices_seen: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
    devices_per_hmno: Dict[str, Set[str]] = defaultdict(set)
    for txn in dataset.transactions:
        hmno = _country_iso(countries, txn.sim_mcc)
        visited = _country_iso(countries, txn.visited_mcc)
        devices_seen[(hmno, visited)].add(txn.device_id)
        devices_per_hmno[hmno].add(txn.device_id)

    total_devices = sum(len(ids) for ids in devices_per_hmno.values())
    raw: Dict[str, Dict[str, float]] = defaultdict(dict)
    for (hmno, visited), ids in devices_seen.items():
        raw[hmno][visited] = float(len(ids))

    folded: Dict[str, Dict[str, float]] = {}
    for hmno, row in raw.items():
        row_total = sum(row.values())
        kept: Dict[str, float] = {}
        other = 0.0
        for visited, count in row.items():
            if count / row_total >= min_cell_share:
                kept[visited] = count
            else:
                other += count
        if other:
            kept["Other"] = other
        folded[hmno] = kept

    return Fig2Result(
        hmno_shares={
            hmno: len(ids) / total_devices for hmno, ids in devices_per_hmno.items()
        },
        matrix=normalize_rows(folded),
        device_counts={hmno: len(ids) for hmno, ids in devices_per_hmno.items()},
    )


# -- Fig. 3 -------------------------------------------------------------------

@dataclass
class DeviceSignalingProfile:
    """Per-device aggregates extracted from the transaction stream."""

    n_records: int = 0
    n_roaming_records: int = 0
    n_success: int = 0
    visited_plmns: Set[str] = field(default_factory=set)
    switches: int = 0
    _last_plmn: Optional[str] = None
    sim_mcc: int = 0

    @property
    def is_roaming(self) -> bool:
        return self.n_roaming_records > 0

    @property
    def has_success(self) -> bool:
        return self.n_success > 0


def device_profiles(dataset: M2MDataset) -> Dict[str, DeviceSignalingProfile]:
    """One pass over the (time-ordered) transactions → per-device stats.

    VMNO usage and inter-VMNO switches are tracked from the
    location-bearing procedures (Authentication / Update Location);
    Cancel Location records point at the *previous* VMNO by protocol
    design and would double-count every move if included.
    """
    profiles: Dict[str, DeviceSignalingProfile] = defaultdict(DeviceSignalingProfile)
    for txn in dataset.transactions:
        profile = profiles[txn.device_id]
        profile.n_records += 1
        profile.sim_mcc = txn.sim_mcc
        if txn.is_roaming:
            profile.n_roaming_records += 1
        if txn.result.is_success:
            profile.n_success += 1
        if txn.message_type is MessageType.CANCEL_LOCATION:
            continue
        profile.visited_plmns.add(txn.visited_plmn)
        if profile._last_plmn is not None and profile._last_plmn != txn.visited_plmn:
            profile.switches += 1
        profile._last_plmn = txn.visited_plmn
    return dict(profiles)


@dataclass
class Fig3Result:
    """The three panels of Fig. 3."""

    records_all: ECDF
    records_4g: ECDF          # devices with >=1 successful procedure
    records_roaming: ECDF
    records_native: ECDF
    vmno_counts: ECDF         # distinct VMNOs per roaming device
    switch_counts: ECDF       # inter-VMNO switches, devices with >=2 VMNOs

    @property
    def roaming_to_native_median_ratio(self) -> float:
        native = self.records_native.median
        return self.records_roaming.median / native if native else float("inf")


def fig3_dynamics(
    dataset: M2MDataset,
    profiles: Optional[Dict[str, DeviceSignalingProfile]] = None,
) -> Fig3Result:
    """Per-device signaling load, VMNO usage and switching (Fig. 3)."""
    profiles = profiles or device_profiles(dataset)
    records_all = [p.n_records for p in profiles.values()]
    records_4g = [p.n_records for p in profiles.values() if p.has_success]
    records_roaming = [p.n_records for p in profiles.values() if p.is_roaming]
    records_native = [p.n_records for p in profiles.values() if not p.is_roaming]
    vmnos = [len(p.visited_plmns) for p in profiles.values() if p.is_roaming]
    switches = [
        p.switches
        for p in profiles.values()
        if p.is_roaming and len(p.visited_plmns) >= 2
    ]
    return Fig3Result(
        records_all=ECDF(records_all),
        records_4g=ECDF(records_4g),
        records_roaming=ECDF(records_roaming),
        records_native=ECDF(records_native),
        vmno_counts=ECDF(vmnos),
        switch_counts=ECDF(switches),
    )


# -- §3.2 text statistics --------------------------------------------------------

@dataclass
class HMNOStats:
    """Per-HMNO operational summary (the §3.2 narrative numbers)."""

    iso: str
    device_share: float
    n_devices: int
    n_visited_countries: int
    n_visited_vmnos: int
    roaming_device_fraction: float
    signaling_share: float
    roaming_signaling_fraction: float


@dataclass
class PlatformStats:
    """Whole-platform summary."""

    per_hmno: Dict[str, HMNOStats]
    failed_only_fraction: float
    success_fraction: float
    n_devices: int
    n_transactions: int


def platform_stats(
    dataset: M2MDataset, countries: CountryRegistry
) -> PlatformStats:
    """Reproduce the §3.2/§3.3 text statistics from the raw stream."""
    profiles = device_profiles(dataset)
    total_records = sum(p.n_records for p in profiles.values())

    by_hmno: Dict[str, List[DeviceSignalingProfile]] = defaultdict(list)
    for profile in profiles.values():
        by_hmno[_country_iso(countries, profile.sim_mcc)].append(profile)

    visited_countries: Dict[str, Set[str]] = defaultdict(set)
    visited_vmnos: Dict[str, Set[str]] = defaultdict(set)
    for txn in dataset.transactions:
        hmno = _country_iso(countries, txn.sim_mcc)
        if txn.is_roaming:
            visited_countries[hmno].add(_country_iso(countries, txn.visited_mcc))
            visited_vmnos[hmno].add(txn.visited_plmn)

    per_hmno: Dict[str, HMNOStats] = {}
    for iso, devs in by_hmno.items():
        n_records = sum(p.n_records for p in devs)
        n_roaming_records = sum(p.n_roaming_records for p in devs)
        per_hmno[iso] = HMNOStats(
            iso=iso,
            device_share=len(devs) / len(profiles),
            n_devices=len(devs),
            n_visited_countries=len(visited_countries[iso]),
            n_visited_vmnos=len(visited_vmnos[iso]),
            roaming_device_fraction=(
                sum(1 for p in devs if p.is_roaming) / len(devs)
            ),
            signaling_share=n_records / total_records if total_records else 0.0,
            roaming_signaling_fraction=(
                n_roaming_records / n_records if n_records else 0.0
            ),
        )

    n_failed_only = sum(1 for p in profiles.values() if not p.has_success)
    return PlatformStats(
        per_hmno=per_hmno,
        failed_only_fraction=n_failed_only / len(profiles),
        success_fraction=1.0 - n_failed_only / len(profiles),
        n_devices=len(profiles),
        n_transactions=dataset.n_transactions,
    )
