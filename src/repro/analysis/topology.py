"""Roaming-ecosystem topology analysis (§2.1) via networkx.

"Operators connect to a hubbing solution provider to gain access to many
roaming partners, externalizing the roaming interworking establishment
to the roaming hub provider … The roaming hub solution does not preclude
the existence of bilateral agreements and can be viewed as a complement
to the bilateral roaming model."

The agreement registry *is* a graph — operators as nodes, agreements as
edges, each marked bilateral or hub-mediated.  This module materializes
it with networkx and answers the structural questions §2 raises: how
much reach the hub adds, how central the hub-homed operators are, and
what the partner-degree distribution looks like for platform HMNOs vs
ordinary operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.cellular.operators import OperatorRegistry
from repro.roaming.agreements import AgreementRegistry


def agreement_graph(
    operators: OperatorRegistry, agreements: AgreementRegistry
) -> nx.DiGraph:
    """Build the directed roaming graph.

    Node key: PLMN string.  Node attrs: ``country``, ``name``.  Edge
    attrs: ``via_hub`` (bool), ``rats`` (sorted list of RAT values).
    """
    graph = nx.DiGraph()
    for operator in operators:
        if operator.is_mvno:
            continue
        graph.add_node(
            str(operator.plmn),
            country=operator.country.iso,
            name=operator.name,
        )
    for agreement in agreements:
        home = str(agreement.home)
        visited = str(agreement.visited)
        if home in graph and visited in graph:
            graph.add_edge(
                home,
                visited,
                via_hub=agreement.via_hub,
                rats=sorted(r.value for r in agreement.rats),
            )
    return graph


@dataclass
class TopologyStats:
    """Structural summary of the roaming ecosystem."""

    n_operators: int
    n_agreements: int
    hub_mediated_share: float
    mean_out_degree: float
    max_out_degree: int
    max_out_degree_operator: str
    countries_reachable_from: Dict[str, int]

    def reach_of(self, plmn: str) -> int:
        return self.countries_reachable_from.get(plmn, 0)


def topology_stats(
    graph: nx.DiGraph, focus_plmns: Optional[List[str]] = None
) -> TopologyStats:
    """Degree structure and country reach of the agreement graph."""
    if graph.number_of_nodes() == 0:
        raise ValueError("empty agreement graph")
    out_degrees = dict(graph.out_degree())
    top = max(out_degrees, key=out_degrees.get)
    hub_edges = sum(1 for _, _, d in graph.edges(data=True) if d["via_hub"])

    reach: Dict[str, int] = {}
    for plmn in focus_plmns or []:
        if plmn not in graph:
            reach[plmn] = 0
            continue
        countries = {
            graph.nodes[partner]["country"] for partner in graph.successors(plmn)
        }
        reach[plmn] = len(countries)

    return TopologyStats(
        n_operators=graph.number_of_nodes(),
        n_agreements=graph.number_of_edges(),
        hub_mediated_share=(
            hub_edges / graph.number_of_edges() if graph.number_of_edges() else 0.0
        ),
        mean_out_degree=sum(out_degrees.values()) / len(out_degrees),
        max_out_degree=out_degrees[top],
        max_out_degree_operator=graph.nodes[top]["name"],
        countries_reachable_from=reach,
    )


def hub_reach_gain(
    graph: nx.DiGraph, plmn: str
) -> Tuple[int, int]:
    """(bilateral-only country reach, total reach) for one operator.

    The difference is exactly what the hub bought the operator — the
    §2.1 argument for hubbing, quantified.
    """
    if plmn not in graph:
        raise KeyError(f"unknown operator {plmn}")
    bilateral: Set[str] = set()
    total: Set[str] = set()
    for partner in graph.successors(plmn):
        country = graph.nodes[partner]["country"]
        total.add(country)
        if not graph.edges[plmn, partner]["via_hub"]:
            bilateral.add(country)
    return len(bilateral), len(total)


def reciprocity_holds(graph: nx.DiGraph) -> bool:
    """Roaming agreements in this world are provisioned reciprocally;
    verify the graph reflects that (every edge has its reverse)."""
    return all(graph.has_edge(v, u) for u, v in graph.edges)
