"""Population analyses: Fig. 5 (home countries), Fig. 6 (class × label),
and the §4.2/§4.3 share statistics."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.stats import normalize_columns, normalize_rows, top_k_share
from repro.cellular.countries import CountryRegistry
from repro.cellular.identifiers import mcc_of
from repro.core.classifier import ClassLabel
from repro.core.roaming import RoamingLabel, VisitedSide
from repro.pipeline import PipelineResult


def _home_iso(countries: CountryRegistry, sim_plmn: str) -> str:
    mcc = mcc_of(sim_plmn)
    country = countries.by_mcc(mcc)
    return country.iso if country else f"MCC{mcc:03d}"


# -- Fig. 5 ---------------------------------------------------------------------

@dataclass
class Fig5Result:
    """Inbound-roamer home-country distribution."""

    overall: Dict[str, float]                      # top panel
    by_class: Dict[ClassLabel, Dict[str, float]]   # bottom panel (row-norm)
    top3_overall_share: float
    top20_overall_share: float
    top3_m2m_share: float

    def top_countries(self, k: int = 20) -> List[Tuple[str, float]]:
        return sorted(self.overall.items(), key=lambda kv: -kv[1])[:k]


def fig5_home_countries(
    result: PipelineResult, countries: CountryRegistry
) -> Fig5Result:
    """Home countries of inbound roaming devices (Fig. 5)."""
    overall: Counter = Counter()
    by_class: Dict[ClassLabel, Counter] = defaultdict(Counter)
    for device_id, summary in result.summaries.items():
        if not summary.label.is_inbound_roamer:
            continue
        iso = _home_iso(countries, summary.sim_plmn)
        overall[iso] += 1
        label = result.classifications[device_id].label
        by_class[label][iso] += 1

    total = sum(overall.values())
    overall_shares = (
        {iso: count / total for iso, count in overall.most_common()} if total else {}
    )
    by_class_shares = {
        label: normalize_rows({"row": dict(counter)})["row"]
        for label, counter in by_class.items()
    }
    m2m_counts = dict(by_class.get(ClassLabel.M2M, Counter()))
    return Fig5Result(
        overall=overall_shares,
        by_class=by_class_shares,
        top3_overall_share=top_k_share(dict(overall), 3),
        top20_overall_share=top_k_share(dict(overall), 20),
        top3_m2m_share=top_k_share(m2m_counts, 3),
    )


# -- Fig. 6 ---------------------------------------------------------------------

@dataclass
class Fig6Result:
    """Class × roaming-label heatmaps in both normalizations."""

    counts: Dict[ClassLabel, Dict[str, int]]
    by_class: Dict[ClassLabel, Dict[str, float]]   # row-normalized (left)
    by_label: Dict[ClassLabel, Dict[str, float]]   # column-normalized (right)

    def share_of_label(self, label_str: str, cls: ClassLabel) -> float:
        """e.g. share_of_label("I:H", M2M) == 71.1% in the paper."""
        return self.by_label.get(cls, {}).get(label_str, 0.0)

    def share_of_class(self, cls: ClassLabel, label_str: str) -> float:
        """e.g. share_of_class(M2M, "I:H") == 74.7% in the paper."""
        return self.by_class.get(cls, {}).get(label_str, 0.0)


def fig6_class_vs_label(result: PipelineResult) -> Fig6Result:
    """Device class against roaming label (Fig. 6)."""
    counts: Dict[ClassLabel, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for device_id, summary in result.summaries.items():
        cls = result.classifications[device_id].label
        counts[cls][str(summary.label)] += 1
    plain = {cls: dict(row) for cls, row in counts.items()}
    return Fig6Result(
        counts=plain,
        by_class=normalize_rows(plain),
        by_label=normalize_columns(plain),
    )


# -- §4.2 / §4.3 share statistics ----------------------------------------------

@dataclass
class PopulationShares:
    """Whole-period and per-day composition of the population."""

    class_shares: Dict[ClassLabel, float]
    label_shares: Dict[str, float]            # whole-period, by device
    per_day_label_shares: Dict[str, float]    # averaged over days
    n_devices: int


def population_shares(result: PipelineResult) -> PopulationShares:
    """Class and roaming-label composition (§4.2, §4.3).

    The paper's "48% / 33% / 18% per day" numbers are daily-active
    shares; whole-period shares skew toward inbound roamers because
    visitors churn.  Both are computed here.
    """
    class_counter: Counter = Counter(
        c.label for c in result.classifications.values()
    )
    label_counter: Counter = Counter(
        str(s.label) for s in result.summaries.values()
    )
    n = len(result.summaries)

    # Per-day shares from the daily catalog: a device contributes to a
    # day if it had any activity that day.
    day_label_counts: Dict[int, Counter] = defaultdict(Counter)
    for record in result.day_records:
        if not record.has_activity:
            continue
        origin = result.labeler.sim_origin(record.sim_plmn)
        side = VisitedSide.HOME if record.on_home_network else VisitedSide.ABROAD
        label = RoamingLabel(origin, side)
        day_label_counts[record.day][str(label)] += 1

    per_day_totals: Counter = Counter()
    for counter in day_label_counts.values():
        day_total = sum(counter.values())
        for label, count in counter.items():
            per_day_totals[label] += count / day_total
    n_days = len(day_label_counts) or 1

    return PopulationShares(
        class_shares={
            label: class_counter.get(label, 0) / n for label in ClassLabel
        },
        label_shares={label: count / n for label, count in label_counter.most_common()},
        per_day_label_shares={
            label: total / n_days for label, total in per_day_totals.most_common()
        },
        n_devices=n,
    )
