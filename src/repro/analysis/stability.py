"""Temporal stability of the population composition (§4.2).

"The shares of devices of the roaming labels are stable across the 22
days we verify."  This module computes the day-by-day roaming-label and
class-share time series from the daily devices-catalog and summarizes
their stability (max absolute day-to-day deviation from the window
mean), turning the paper's one-sentence claim into a checkable metric.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.classifier import ClassLabel
from repro.core.roaming import RoamingLabel, VisitedSide
from repro.pipeline import PipelineResult


@dataclass
class ShareSeries:
    """A per-day share time series for one category."""

    category: str
    shares: List[float]  # one entry per day with activity

    @property
    def mean(self) -> float:
        return float(np.mean(self.shares))

    @property
    def max_abs_deviation(self) -> float:
        """Largest |daily - mean| across the window (the stability
        metric; small = "stable across the 22 days")."""
        mean = self.mean
        return float(max(abs(s - mean) for s in self.shares))

    @property
    def relative_instability(self) -> float:
        """Max deviation relative to the mean share."""
        return self.max_abs_deviation / self.mean if self.mean else float("inf")


@dataclass
class StabilityResult:
    """Stability of label shares and class shares over the window."""

    label_series: Dict[str, ShareSeries]
    class_series: Dict[ClassLabel, ShareSeries]
    n_days: int

    def worst_label_deviation(self) -> float:
        return max(s.max_abs_deviation for s in self.label_series.values())

    def worst_class_deviation(self) -> float:
        return max(s.max_abs_deviation for s in self.class_series.values())


def share_stability(result: PipelineResult) -> StabilityResult:
    """Per-day label and class share series from the daily catalog."""
    label_by_day: Dict[int, Counter] = defaultdict(Counter)
    class_by_day: Dict[int, Counter] = defaultdict(Counter)
    class_of = {d: c.label for d, c in result.classifications.items()}

    for record in result.day_records:
        if not record.has_activity:
            continue
        origin = result.labeler.sim_origin(record.sim_plmn)
        side = VisitedSide.HOME if record.on_home_network else VisitedSide.ABROAD
        label_by_day[record.day][str(RoamingLabel(origin, side))] += 1
        class_by_day[record.day][class_of[record.device_id]] += 1

    days = sorted(label_by_day)
    if not days:
        raise ValueError("no active device-days")

    label_names = sorted({name for c in label_by_day.values() for name in c})
    label_series: Dict[str, ShareSeries] = {}
    for name in label_names:
        shares = []
        for day in days:
            total = sum(label_by_day[day].values())
            shares.append(label_by_day[day].get(name, 0) / total)
        label_series[name] = ShareSeries(category=name, shares=shares)

    class_series: Dict[ClassLabel, ShareSeries] = {}
    for cls in ClassLabel:
        shares = []
        for day in days:
            total = sum(class_by_day[day].values())
            shares.append(class_by_day[day].get(cls, 0) / total)
        class_series[cls] = ShareSeries(category=cls.value, shares=shares)

    return StabilityResult(
        label_series=label_series,
        class_series=class_series,
        n_days=len(days),
    )
