"""IoT-vertical contrast: Fig. 12 (connected cars vs smart meters).

"Connected cars are very similar to normal inbound roaming smartphones,
with high mobility patterns, large volume of signaling traffic and data
traffic.  At the same time, smart energy meters … are stationary devices
that generate very little signaling traffic as well as data traffic."

Vertical membership is derived from *observables* — the keyword matched
by the classifier's APN step — not from ground truth, mirroring §7.2
("using the exposed APN information … we separate devices mapping to
connected cars").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.analysis.stats import ECDF
from repro.core.classifier import ClassLabel
from repro.devices.device import IoTVertical
from repro.pipeline import PipelineResult


@dataclass
class VerticalStats:
    """One vertical's Fig. 12 panels."""

    n_devices: int
    gyration_km: Optional[ECDF]
    signaling_per_day: ECDF
    bytes_per_day: ECDF


@dataclass
class Fig12Result:
    cars: VerticalStats
    meters: VerticalStats
    inbound_smartphones: VerticalStats

    @property
    def car_meter_gyration_ratio(self) -> float:
        if self.cars.gyration_km is None or self.meters.gyration_km is None:
            return float("nan")
        meters = self.meters.gyration_km.mean
        return self.cars.gyration_km.mean / meters if meters else float("inf")


def _vertical_devices(
    result: PipelineResult, vertical: IoTVertical, inbound_only: bool = True
) -> Set[str]:
    """Devices whose classification traced to this vertical's APNs."""
    ids: Set[str] = set()
    for device_id, classification in result.classifications.items():
        if classification.vertical is not vertical:
            continue
        if inbound_only and not result.summaries[device_id].label.is_inbound_roamer:
            continue
        ids.add(device_id)
    return ids


def _stats_for(result: PipelineResult, device_ids: Set[str]) -> VerticalStats:
    gyration: List[float] = []
    signaling: List[float] = []
    data: List[float] = []
    n = 0
    for device_id in device_ids:
        summary = result.summaries[device_id]
        if summary.active_days == 0:
            continue
        n += 1
        if summary.mean_gyration_km is not None:
            gyration.append(summary.mean_gyration_km)
        signaling.append(summary.n_events / summary.active_days)
        data.append(summary.bytes_total / summary.active_days)
    if n == 0:
        raise ValueError("vertical has no active devices")
    return VerticalStats(
        n_devices=n,
        gyration_km=ECDF(gyration) if gyration else None,
        signaling_per_day=ECDF(signaling),
        bytes_per_day=ECDF(data),
    )


def fig12_verticals(result: PipelineResult) -> Fig12Result:
    """Connected cars vs smart meters vs inbound smartphones (Fig. 12)."""
    cars = _vertical_devices(result, IoTVertical.CONNECTED_CAR)
    meters = _vertical_devices(result, IoTVertical.SMART_METER)
    smartphones = {
        device_id
        for device_id, c in result.classifications.items()
        if c.label is ClassLabel.SMART
        and result.summaries[device_id].label.is_inbound_roamer
    }
    if not cars or not meters:
        raise ValueError("dataset lacks inbound cars or meters")
    return Fig12Result(
        cars=_stats_for(result, cars),
        meters=_stats_for(result, meters),
        inbound_smartphones=_stats_for(result, smartphones),
    )
