"""Diurnal-pattern analysis: M2M vs phone traffic timing.

The paper motivates the operator's problem with prior work [18]: "M2M
traffic exhibits significantly different features than phone traffic in
a range of aspects from signaling, to uplink/downlink traffic volume
ratios to diurnal patterns".  This module computes per-class hourly
activity profiles from the raw radio events and quantifies the
divergence — smartphones peak in waking hours, meters report in
off-peak batches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.classifier import ClassLabel
from repro.pipeline import PipelineResult


@dataclass
class HourlyProfile:
    """A normalized 24-bin activity histogram."""

    bins: np.ndarray  # shape (24,), sums to 1

    def __post_init__(self) -> None:
        if self.bins.shape != (24,):
            raise ValueError("hourly profile needs 24 bins")
        total = float(self.bins.sum())
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"profile must be normalized, sums to {total}")

    @property
    def peak_hour(self) -> int:
        return int(np.argmax(self.bins))

    @property
    def peak_to_trough(self) -> float:
        trough = float(self.bins.min())
        return float(self.bins.max()) / trough if trough > 0 else float("inf")

    def night_share(self, start: int = 0, end: int = 6) -> float:
        """Share of activity in the [start, end) night window."""
        return float(self.bins[start:end].sum())


def total_variation(a: HourlyProfile, b: HourlyProfile) -> float:
    """Total-variation distance between two profiles, in [0, 1]."""
    return float(np.abs(a.bins - b.bins).sum() / 2.0)


@dataclass
class DiurnalResult:
    """Per-class hourly profiles plus the headline divergences."""

    profiles: Dict[ClassLabel, HourlyProfile]

    def divergence(self, a: ClassLabel, b: ClassLabel) -> float:
        return total_variation(self.profiles[a], self.profiles[b])


def diurnal_profiles(
    result: PipelineResult,
    classes: Iterable[ClassLabel] = (
        ClassLabel.SMART,
        ClassLabel.FEAT,
        ClassLabel.M2M,
    ),
) -> DiurnalResult:
    """Hourly radio-event histograms per classified device class."""
    wanted = set(classes)
    counts: Dict[ClassLabel, np.ndarray] = {
        cls: np.zeros(24) for cls in wanted
    }
    class_of = {
        device_id: c.label for device_id, c in result.classifications.items()
    }
    for event in result.dataset.radio_events:
        cls = class_of.get(event.device_id)
        if cls not in wanted:
            continue
        hour = int((event.timestamp % 86400.0) // 3600.0)
        counts[cls][hour] += 1.0

    profiles: Dict[ClassLabel, HourlyProfile] = {}
    for cls, bins in counts.items():
        total = bins.sum()
        if total == 0:
            continue
        profiles[cls] = HourlyProfile(bins / total)
    if not profiles:
        raise ValueError("no radio events for the requested classes")
    return DiurnalResult(profiles=profiles)


def meter_reporting_window(
    result: PipelineResult, meter_device_ids: Iterable[str]
) -> Optional[int]:
    """The hour at which the meter fleet's reporting batch peaks."""
    bins = np.zeros(24)
    meters = set(meter_device_ids)
    for event in result.dataset.radio_events:
        if event.device_id in meters:
            bins[int((event.timestamp % 86400.0) // 3600.0)] += 1.0
    if bins.sum() == 0:
        return None
    return int(np.argmax(bins))
