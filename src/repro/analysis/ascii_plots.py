"""ASCII rendering of the paper's figure types.

Terminal-friendly stand-ins for the paper's plots: ECDF curves (Figs. 3,
7, 8, 10), grouped bars (Figs. 5, 9) and heatmaps (Figs. 2, 6).  Used by
the examples and the CLI's ``figure --plot`` mode; also handy in test
failure output.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence

from repro.analysis.stats import ECDF

_BLOCKS = " .:-=+*#%@"


def render_ecdf(
    curves: Mapping[str, ECDF],
    width: int = 60,
    height: int = 12,
    log_x: bool = False,
    title: str = "",
) -> str:
    """Render one or more ECDFs as an ASCII line chart.

    Each named curve gets a marker character; the y-axis is F(x) in
    [0, 1], the x-axis spans the pooled value range (optionally log).
    """
    if not curves:
        raise ValueError("nothing to plot")
    if width < 10 or height < 4:
        raise ValueError("plot area too small")

    markers = "ox+*#@%&"
    lo = min(e.quantile(0.0) for e in curves.values())
    hi = max(e.max for e in curves.values())
    if log_x:
        lo = max(lo, 1e-9)
        hi = max(hi, lo * 10)

    def x_to_col(x: float) -> int:
        if hi == lo:
            return 0
        if log_x:
            x = max(x, lo)
            frac = (math.log10(x) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo)
            )
        else:
            frac = (x - lo) / (hi - lo)
        return min(width - 1, max(0, int(frac * (width - 1))))

    grid = [[" "] * width for _ in range(height)]
    for (name, ecdf), marker in zip(curves.items(), markers):
        for col in range(width):
            # Invert: find F at the x mapped to this column.
            if log_x:
                x = 10 ** (
                    math.log10(lo)
                    + col / (width - 1) * (math.log10(hi) - math.log10(lo))
                )
            else:
                x = lo + col / (width - 1) * (hi - lo)
            f = ecdf.fraction_at_most(x)
            row = height - 1 - min(height - 1, int(f * (height - 1)))
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_label = f"{1.0 - i / (height - 1):4.2f} |"
        lines.append(y_label + "".join(row))
    axis = " " * 6 + "-" * width
    lines.append(axis)
    lines.append(
        " " * 6 + f"{lo:.3g}".ljust(width - 8) + f"{hi:.3g}"
    )
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(curves.items(), markers)
    )
    lines.append(" " * 6 + legend)
    return "\n".join(lines)


def render_bars(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
    fmt: str = "{:.1%}",
) -> str:
    """Horizontal bar chart for share-style data (Figs. 5, 9)."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(values.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        bar = "#" * max(0, int(value / peak * width))
        lines.append(
            f"{str(key):>{label_width}} | {bar} {fmt.format(value)}"
        )
    return "\n".join(lines)


def render_heatmap(
    matrix: Mapping[str, Mapping[str, float]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Shade-character heatmap for matrix data (Figs. 2, 6).

    Cell values are expected in [0, 1] (row-normalized shares).
    """
    if not matrix:
        raise ValueError("nothing to plot")
    if columns is None:
        seen: List[str] = []
        for row in matrix.values():
            for col in row:
                if col not in seen:
                    seen.append(col)
        columns = seen
    row_width = max(len(str(k)) for k in matrix)
    lines = [title] if title else []
    header = " " * (row_width + 1) + " ".join(f"{c[:4]:>4}" for c in columns)
    lines.append(header)
    for row_key, row in matrix.items():
        cells = []
        for col in columns:
            value = row.get(col, 0.0)
            index = min(len(_BLOCKS) - 1, int(value * (len(_BLOCKS) - 1) + 0.5))
            cells.append(f"{_BLOCKS[index] * 4}")
        lines.append(f"{str(row_key):>{row_width}} " + " ".join(cells))
    lines.append(f"shade scale: '{_BLOCKS}' = 0..1")
    return "\n".join(lines)
