"""Smart-meter (SMIP) analysis: Fig. 11 and the §7.1 statistics.

Contrasts the MNO's native SMIP meters (dedicated IMSI range, long-lived
attachments, 3G-capable) against the roaming meters on Dutch IoT SIMs
(short presence spells, ~10x the signaling per day, 2G-only, higher
failure incidence).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.stats import ECDF
from repro.mno.smip import smip_devices
from repro.pipeline import PipelineResult


@dataclass
class SMIPGroupStats:
    """One SMIP fleet's Fig. 11 metrics."""

    n_devices: int
    active_days: ECDF
    active_days_day1_cohort: Optional[ECDF]
    signaling_per_day: ECDF
    full_period_fraction: float
    full_period_fraction_day1: float
    failed_device_fraction: float
    rat_pattern_shares: Dict[str, float]


@dataclass
class Fig11Result:
    native: SMIPGroupStats
    roaming: SMIPGroupStats

    @property
    def signaling_ratio(self) -> float:
        """Roaming-over-native mean signaling per device per day (the
        paper's ~10x)."""
        native = self.native.signaling_per_day.mean
        return self.roaming.signaling_per_day.mean / native if native else float("inf")


def _first_active_day(result: PipelineResult) -> Dict[str, int]:
    first: Dict[str, int] = {}
    for record in result.day_records:
        if not record.has_activity:
            continue
        day = first.get(record.device_id)
        if day is None or record.day < day:
            first[record.device_id] = record.day
    return first


def _group_stats(
    result: PipelineResult, device_ids: Set[str], window_days: int
) -> SMIPGroupStats:
    first_day = _first_active_day(result)
    active: List[int] = []
    active_day1: List[int] = []
    signaling: List[float] = []
    failed = 0
    rat_patterns: Dict[str, int] = defaultdict(int)
    n = 0
    for device_id in device_ids:
        summary = result.summaries.get(device_id)
        if summary is None or summary.active_days == 0:
            continue
        n += 1
        active.append(summary.active_days)
        if first_day.get(device_id) == 0:
            active_day1.append(summary.active_days)
        signaling.append(summary.n_events / summary.active_days)
        if summary.n_failed_events > 0:
            failed += 1
        rat_patterns[summary.radio_flags.label()] += 1
    if not active:
        raise ValueError("SMIP group has no active devices")
    full = sum(1 for d in active if d >= window_days) / len(active)
    full_day1 = (
        sum(1 for d in active_day1 if d >= window_days) / len(active_day1)
        if active_day1
        else 0.0
    )
    return SMIPGroupStats(
        n_devices=n,
        active_days=ECDF(active),
        active_days_day1_cohort=ECDF(active_day1) if active_day1 else None,
        signaling_per_day=ECDF(signaling),
        full_period_fraction=full,
        full_period_fraction_day1=full_day1,
        failed_device_fraction=failed / n,
        rat_pattern_shares={
            pattern: count / n for pattern, count in rat_patterns.items()
        },
    )


def fig11_smip_activity(
    result: PipelineResult, full_period_days: Optional[int] = None
) -> Fig11Result:
    """SMIP native vs roaming device activity and signaling (Fig. 11).

    ``full_period_days`` defaults to ~85% of the window — "active the
    whole period" with an allowance for occasional silent days.
    """
    window = result.dataset.window_days
    threshold = full_period_days if full_period_days is not None else int(window * 0.85)
    native_ids, roaming_ids = smip_devices(result.dataset.ground_truth)
    if not native_ids or not roaming_ids:
        raise ValueError("dataset has no SMIP ground truth")
    return Fig11Result(
        native=_group_stats(result, native_ids, threshold),
        roaming=_group_stats(result, roaming_ids, threshold),
    )
