"""Per-figure analyses: the code behind every table and figure.

Each module mirrors one piece of the paper's evaluation:

================  ==========================================================
module            reproduces
================  ==========================================================
``stats``         ECDF/quantile/share helpers shared by everything below
``platform``      Fig. 2, Fig. 3 and the §3.2 text statistics
``population``    Fig. 5 (home countries) and Fig. 6 (class × label)
``activity``      Fig. 7 (active days)
``mobility``      Fig. 8 (radius of gyration)
``network_usage`` Fig. 9 (RAT dependence for connectivity / data / voice)
``traffic``       Fig. 10 (signaling / calls / data volumes)
``smart_meters``  Fig. 11 (SMIP native vs roaming)
``verticals``     Fig. 12 (connected cars vs smart meters)
``report``        ASCII rendering and paper-vs-measured comparison rows
================  ==========================================================
"""

from repro.analysis.stats import ECDF, shares, quantile

__all__ = ["ECDF", "quantile", "shares"]
