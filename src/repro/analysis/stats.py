"""Distribution helpers shared by all figure analyses."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

import numpy as np


class ECDF:
    """An empirical CDF over a sample, with the queries figures need."""

    def __init__(self, values: Iterable[float]):
        data = np.asarray(sorted(float(v) for v in values), dtype=float)
        if data.size == 0:
            raise ValueError("ECDF of an empty sample")
        self._values = data

    @property
    def n(self) -> int:
        return int(self._values.size)

    @property
    def values(self) -> np.ndarray:
        return self._values.copy()

    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self._values, q))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        return float(self._values.mean())

    @property
    def max(self) -> float:
        return float(self._values[-1])

    def fraction_at_most(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self._values, x, side="right")) / self.n

    def fraction_above(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self.fraction_at_most(x)

    def curve(self, points: int = 50) -> List[Tuple[float, float]]:
        """(x, F(x)) pairs for plotting/printing the CDF."""
        if points < 2:
            raise ValueError("need at least two curve points")
        qs = np.linspace(0.0, 1.0, points)
        return [(float(np.quantile(self._values, q)), float(q)) for q in qs]


def quantile(values: Sequence[float], q: float) -> float:
    """One-shot quantile without building an ECDF."""
    if len(values) == 0:
        raise ValueError("quantile of empty sample")
    return float(np.quantile(np.asarray(values, dtype=float), q))


def shares(items: Iterable[Hashable]) -> Dict[Hashable, float]:
    """Normalized frequency of each distinct item."""
    counts = Counter(items)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {key: count / total for key, count in counts.most_common()}


def top_k_share(weights: Mapping[Hashable, float], k: int) -> float:
    """Combined share of the k heaviest keys (weights need not be
    normalized)."""
    if k <= 0:
        raise ValueError("k must be positive")
    total = sum(weights.values())
    if total <= 0:
        return 0.0
    heaviest = sorted(weights.values(), reverse=True)[:k]
    return sum(heaviest) / total


def normalize_rows(
    matrix: Mapping[Hashable, Mapping[Hashable, float]]
) -> Dict[Hashable, Dict[Hashable, float]]:
    """Row-normalize a nested mapping (as the paper's heatmaps do)."""
    result: Dict[Hashable, Dict[Hashable, float]] = {}
    for row_key, row in matrix.items():
        total = sum(row.values())
        result[row_key] = (
            {col: value / total for col, value in row.items()} if total else dict(row)
        )
    return result


def normalize_columns(
    matrix: Mapping[Hashable, Mapping[Hashable, float]]
) -> Dict[Hashable, Dict[Hashable, float]]:
    """Column-normalize a nested mapping."""
    column_totals: Dict[Hashable, float] = {}
    for row in matrix.values():
        for col, value in row.items():
            column_totals[col] = column_totals.get(col, 0.0) + value
    result: Dict[Hashable, Dict[Hashable, float]] = {}
    for row_key, row in matrix.items():
        result[row_key] = {
            col: (value / column_totals[col] if column_totals.get(col) else value)
            for col, value in row.items()
        }
    return result


@dataclass(frozen=True)
class DistributionSummary:
    """Compact distribution description for report tables."""

    n: int
    mean: float
    median: float
    p90: float
    p97: float
    max: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "DistributionSummary":
        ecdf = ECDF(values)
        return cls(
            n=ecdf.n,
            mean=ecdf.mean,
            median=ecdf.median,
            p90=ecdf.quantile(0.90),
            p97=ecdf.quantile(0.97),
            max=ecdf.max,
        )

    def format(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.1f} median={self.median:.1f} "
            f"p90={self.p90:.1f} p97={self.p97:.1f} max={self.max:.0f}"
        )
