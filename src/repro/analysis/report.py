"""Report rendering: ASCII tables and paper-vs-measured comparison rows.

Every bench prints its figure through these helpers so EXPERIMENTS.md
and the bench output read the same way: one row per paper statistic,
with the paper's reported value, our measured value, and a shape verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

Number = Union[int, float]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], indent: str = "  "
) -> str:
    """Render a simple aligned ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return indent + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


@dataclass
class ComparisonRow:
    """One paper-vs-measured statistic."""

    statistic: str
    paper: str
    measured: Number
    #: acceptance window (lo, hi) on the measured value; None = informative only
    window: Optional[tuple] = None

    @property
    def verdict(self) -> str:
        if self.window is None:
            return "info"
        lo, hi = self.window
        return "OK" if lo <= self.measured <= hi else "OFF"

    @property
    def holds(self) -> bool:
        return self.verdict in ("OK", "info")


@dataclass
class ExperimentReport:
    """A figure/table reproduction report: header plus comparison rows."""

    experiment_id: str
    title: str
    rows: List[ComparisonRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(
        self,
        statistic: str,
        paper: str,
        measured: Number,
        window: Optional[tuple] = None,
    ) -> None:
        self.rows.append(ComparisonRow(statistic, paper, measured, window))

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def all_hold(self) -> bool:
        return all(row.holds for row in self.rows)

    def failing_rows(self) -> List[ComparisonRow]:
        return [row for row in self.rows if not row.holds]

    def format(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        table_rows = [
            (
                row.statistic,
                row.paper,
                f"{row.measured:.3f}" if isinstance(row.measured, float) else str(row.measured),
                row.verdict,
            )
            for row in self.rows
        ]
        lines.append(
            format_table(("statistic", "paper", "measured", "verdict"), table_rows)
        )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
