"""IoT-growth projection: the §9 market outlook, applied to the MNO.

"In a market expected to reach 75.44 billion worldwide by 2025, i.e.,
almost 10x the estimated world population, this puts in perspective the
importance of the M2M platform …"

Given today's pipeline result, :func:`project_growth` scales the M2M
population by a growth factor (person devices held constant — people do
not multiply 10x) and recomputes the composition and load statistics the
paper worries about: the M2M share of devices, of radio signaling, and
of wholesale revenue.  The divergence between the first two and the last
is the projected stress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.classifier import ClassLabel
from repro.pipeline import PipelineResult
from repro.roaming.billing import WholesaleRater, WholesaleTariff


@dataclass
class GrowthPoint:
    """Projected composition at one M2M growth factor."""

    factor: float
    m2m_device_share: float
    m2m_signaling_share: float
    m2m_revenue_share: float

    @property
    def stress_index(self) -> float:
        """Signaling share over revenue share: how disproportionately
        the projected M2M population loads the network."""
        if self.m2m_revenue_share <= 0:
            return float("inf") if self.m2m_signaling_share > 0 else 0.0
        return self.m2m_signaling_share / self.m2m_revenue_share


def _class_aggregates(result: PipelineResult) -> Dict[ClassLabel, Dict[str, float]]:
    """Per-class device counts, signaling events and wholesale revenue."""
    rater = WholesaleRater(str(result.labeler.observer.plmn), WholesaleTariff())
    tap = rater.rate_records(result.dataset.service_records)
    revenue_per_device = WholesaleRater.revenue_per_device(tap)
    aggregates: Dict[ClassLabel, Dict[str, float]] = {
        cls: {"devices": 0.0, "events": 0.0, "revenue": 0.0} for cls in ClassLabel
    }
    for device_id, summary in result.summaries.items():
        cls = result.classifications[device_id].label
        aggregates[cls]["devices"] += 1
        aggregates[cls]["events"] += summary.n_events
        aggregates[cls]["revenue"] += revenue_per_device.get(device_id, 0.0)
    return aggregates


def project_growth(
    result: PipelineResult,
    factors: Sequence[float] = (1.0, 2.0, 5.0, 10.0),
) -> List[GrowthPoint]:
    """Scale the M2M population (m2m + m2m-maybe) by each factor.

    The projection is first-order: per-device behaviour is today's;
    only the M2M headcount multiplies.  That is exactly the scenario the
    paper's "10x the world population" remark sketches.
    """
    base = _class_aggregates(result)
    m2m_classes = (ClassLabel.M2M, ClassLabel.M2M_MAYBE)

    points: List[GrowthPoint] = []
    for factor in factors:
        if factor <= 0:
            raise ValueError("growth factor must be positive")
        devices = {
            cls: base[cls]["devices"] * (factor if cls in m2m_classes else 1.0)
            for cls in ClassLabel
        }
        events = {
            cls: base[cls]["events"] * (factor if cls in m2m_classes else 1.0)
            for cls in ClassLabel
        }
        revenue = {
            cls: base[cls]["revenue"] * (factor if cls in m2m_classes else 1.0)
            for cls in ClassLabel
        }
        total_devices = sum(devices.values())
        total_events = sum(events.values()) or 1.0
        total_revenue = sum(revenue.values()) or 1.0
        m2m_devices = sum(devices[c] for c in m2m_classes)
        m2m_events = sum(events[c] for c in m2m_classes)
        m2m_revenue = sum(revenue[c] for c in m2m_classes)
        points.append(
            GrowthPoint(
                factor=factor,
                m2m_device_share=m2m_devices / total_devices,
                m2m_signaling_share=m2m_events / total_events,
                m2m_revenue_share=m2m_revenue / total_revenue,
            )
        )
    return points
