"""2G/3G sunset what-if analysis (§6.1, §8).

"The sustained dependency of M2M devices and also feature phones on the
2G network brings to light the discussion around the need of MNOs to
keep maintaining the legacy technology.  Some MNOs (e.g., AT&T) already
shut down 2G services" … "IoT devices such as smart meters are currently
active mostly in 2G or 3G networks."

Given a pipeline result, :func:`sunset_impact` computes, per device
class, the share of devices *stranded* (no remaining usable RAT) under a
retirement scenario — the quantitative version of the paper's
discussion, and the reason it calls its 4G-only platform view "a
lower-bound".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Set

from repro.cellular.rats import RAT
from repro.core.classifier import ClassLabel
from repro.pipeline import PipelineResult


@dataclass(frozen=True)
class SunsetScenario:
    """A legacy-retirement scenario: the RATs being switched off."""

    name: str
    retired: FrozenSet[RAT]

    def __post_init__(self) -> None:
        if not self.retired:
            raise ValueError("a sunset scenario must retire something")
        if self.retired >= {RAT.GSM, RAT.UMTS, RAT.LTE}:
            raise ValueError("cannot retire every RAT")


SUNSET_2G = SunsetScenario("2G sunset", frozenset({RAT.GSM}))
SUNSET_3G = SunsetScenario("3G sunset", frozenset({RAT.UMTS}))
SUNSET_2G_3G = SunsetScenario("2G+3G sunset", frozenset({RAT.GSM, RAT.UMTS}))


@dataclass
class SunsetImpact:
    """Per-class stranding shares for one scenario."""

    scenario: SunsetScenario
    stranded_share: Dict[ClassLabel, float]
    degraded_share: Dict[ClassLabel, float]
    n_devices: Dict[ClassLabel, int]

    def stranded(self, cls: ClassLabel) -> float:
        return self.stranded_share.get(cls, 0.0)

    def format(self) -> str:
        lines = [f"scenario: {self.scenario.name}"]
        for cls in sorted(self.stranded_share, key=lambda c: c.value):
            lines.append(
                f"  {cls.value:>10}: stranded {self.stranded_share[cls]:6.1%}, "
                f"degraded {self.degraded_share[cls]:6.1%} "
                f"(n={self.n_devices[cls]})"
            )
        return "\n".join(lines)


def sunset_impact(
    result: PipelineResult,
    scenario: SunsetScenario,
    classes: Iterable[ClassLabel] = (
        ClassLabel.SMART,
        ClassLabel.FEAT,
        ClassLabel.M2M,
    ),
) -> SunsetImpact:
    """Who survives the retirement?

    A device's usable RATs are what it *successfully used* during the
    window (its radio flags — the observable capability floor).  Under a
    scenario, a device is **stranded** when every RAT it used is retired
    and **degraded** when some but not all are.
    """
    wanted = set(classes)
    stranded: Dict[ClassLabel, int] = Counter()
    degraded: Dict[ClassLabel, int] = Counter()
    totals: Dict[ClassLabel, int] = Counter()
    for device_id, summary in result.summaries.items():
        cls = result.classifications[device_id].label
        if cls not in wanted:
            continue
        used = summary.radio_flags.rats
        if not used:
            continue  # no radio visibility -> cannot assess
        totals[cls] += 1
        remaining = used - scenario.retired
        if not remaining:
            stranded[cls] += 1
        elif used & scenario.retired:
            degraded[cls] += 1
    if not totals:
        raise ValueError("no devices with radio visibility")
    return SunsetImpact(
        scenario=scenario,
        stranded_share={
            cls: stranded[cls] / totals[cls] for cls in totals
        },
        degraded_share={
            cls: degraded[cls] / totals[cls] for cls in totals
        },
        n_devices=dict(totals),
    )


def stranded_device_ids(
    result: PipelineResult, scenario: SunsetScenario
) -> Set[str]:
    """The concrete devices a retirement would orphan."""
    orphans: Set[str] = set()
    for device_id, summary in result.summaries.items():
        used = summary.radio_flags.rats
        if used and not (used - scenario.retired):
            orphans.add(device_id)
    return orphans
