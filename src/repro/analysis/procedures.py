"""Procedure-level platform analysis (§3.3).

"We look at the frequency of three procedures we monitor (Update
Location, Authentication and Cancel Location).  Each record has a status
message associated, describing the outcome of the procedure (i.e., OK,
Feature Unsupported, Roaming Not Allowed or Unknown Subscription)."

This module breaks the transaction stream down along both axes —
message type and result code — overall and split by roaming status, the
§3.3 companion numbers to Fig. 3.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict

from repro.datasets.containers import M2MDataset
from repro.signaling.procedures import MessageType, ResultCode


@dataclass
class ProcedureBreakdown:
    """Shares of the transaction stream along both §3.3 axes."""

    message_type_shares: Dict[MessageType, float]
    result_shares: Dict[ResultCode, float]
    failure_share: float
    result_shares_roaming: Dict[ResultCode, float]
    result_shares_native: Dict[ResultCode, float]
    n_transactions: int

    def failure_share_of(self, roaming: bool) -> float:
        table = self.result_shares_roaming if roaming else self.result_shares_native
        return sum(share for code, share in table.items() if code.is_failure)

    def format(self) -> str:
        lines = [f"transactions: {self.n_transactions}"]
        lines.append("message types:")
        for message_type, share in sorted(
            self.message_type_shares.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {message_type.value:>16}: {share:6.1%}")
        lines.append("results:")
        for code, share in sorted(self.result_shares.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {code.value:>20}: {share:6.1%}")
        lines.append(
            f"failure share: roaming {self.failure_share_of(True):.1%} "
            f"vs native {self.failure_share_of(False):.1%}"
        )
        return "\n".join(lines)


def _normalize(counter: Counter) -> Dict:
    total = sum(counter.values())
    if total == 0:
        return {}
    return {key: count / total for key, count in counter.most_common()}


def procedure_breakdown(dataset: M2MDataset) -> ProcedureBreakdown:
    """Break the stream down by procedure kind and outcome."""
    if not dataset.transactions:
        raise ValueError("empty dataset")
    message_types: Counter = Counter()
    results: Counter = Counter()
    results_roaming: Counter = Counter()
    results_native: Counter = Counter()
    failures = 0
    for txn in dataset.transactions:
        message_types[txn.message_type] += 1
        results[txn.result] += 1
        if txn.result.is_failure:
            failures += 1
        if txn.is_roaming:
            results_roaming[txn.result] += 1
        else:
            results_native[txn.result] += 1
    return ProcedureBreakdown(
        message_type_shares=_normalize(message_types),
        result_shares=_normalize(results),
        failure_share=failures / len(dataset.transactions),
        result_shares_roaming=_normalize(results_roaming),
        result_shares_native=_normalize(results_native),
        n_transactions=len(dataset.transactions),
    )


def per_device_procedure_mix(
    dataset: M2MDataset,
) -> Dict[str, Dict[MessageType, int]]:
    """Per-device counts of each procedure kind (§3.3's device view)."""
    mix: Dict[str, Counter] = defaultdict(Counter)
    for txn in dataset.transactions:
        mix[txn.device_id][txn.message_type] += 1
    return {device: dict(counter) for device, counter in mix.items()}
