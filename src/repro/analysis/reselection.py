"""Cell-reselection disambiguation for the mobility analysis (Fig. 8).

The paper hedges its gyration reading for meters: devices above 1 km are
"some likely due to cell reselection, rather than actual movements".
This module implements the disambiguation the hedge implies: a genuinely
moving device *progresses* through sectors, while a stationary device on
a cell boundary *ping-pongs* between a small set of neighbours.

The discriminator per device-day:

* **sector support** — how many distinct sectors served it;
* **revisit ratio** — transitions returning to an already-seen sector,
  as a fraction of all transitions.  Ping-pong reselection has a high
  revisit ratio over tiny support; movement has low revisit over larger
  support.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.core.classifier import ClassLabel
from repro.pipeline import PipelineResult
from repro.signaling.events import RadioEvent


@dataclass(frozen=True)
class ReselectionVerdict:
    """One device's movement-vs-reselection assessment."""

    device_id: str
    n_sectors: int
    n_transitions: int
    revisit_ratio: float
    is_ping_pong: bool

    def __post_init__(self) -> None:
        if not 0.0 <= self.revisit_ratio <= 1.0:
            raise ValueError("revisit ratio must be in [0, 1]")


def classify_movement(
    events: Sequence[RadioEvent],
    max_ping_pong_sectors: int = 3,
    min_revisit_ratio: float = 0.5,
) -> Optional[ReselectionVerdict]:
    """Assess one device's event stream (any window).

    Returns None when there are no sector transitions to judge.
    A device is flagged *ping-pong* when its distinct-sector support is
    tiny and most transitions revisit known sectors.
    """
    ordered = sorted(events, key=lambda e: e.timestamp)
    transitions = 0
    revisits = 0
    seen: Set[int] = set()
    last: Optional[int] = None
    for event in ordered:
        if last is None:
            seen.add(event.sector_id)
        elif event.sector_id != last:
            transitions += 1
            if event.sector_id in seen:
                revisits += 1
            seen.add(event.sector_id)
        last = event.sector_id
    if transitions == 0:
        return None
    revisit_ratio = revisits / transitions
    return ReselectionVerdict(
        device_id=ordered[0].device_id,
        n_sectors=len(seen),
        n_transitions=transitions,
        revisit_ratio=revisit_ratio,
        is_ping_pong=(
            len(seen) <= max_ping_pong_sectors
            and revisit_ratio >= min_revisit_ratio
        ),
    )


@dataclass
class ReselectionResult:
    """Fig. 8 hedge, quantified, for one device class."""

    n_assessed: int
    n_mobile_looking: int       # gyration above the threshold
    n_ping_pong: int            # of those, flagged as reselection artefacts
    threshold_km: float

    @property
    def artefact_share(self) -> float:
        """Share of apparently-mobile devices that are really ping-pong."""
        return self.n_ping_pong / self.n_mobile_looking if self.n_mobile_looking else 0.0


def reselection_analysis(
    result: PipelineResult,
    cls: ClassLabel = ClassLabel.M2M,
    gyration_threshold_km: float = 1.0,
    inbound_only: bool = True,
) -> ReselectionResult:
    """How much of a class's >threshold gyration is reselection artefact.

    Applies :func:`classify_movement` to the devices of ``cls`` whose
    mean gyration exceeds the threshold (the paper's ">1 km" fraction).
    """
    events_by_device: Dict[str, List[RadioEvent]] = defaultdict(list)
    suspects: Set[str] = set()
    for device_id, summary in result.summaries.items():
        if result.classifications[device_id].label is not cls:
            continue
        if inbound_only and not summary.label.is_inbound_roamer:
            continue
        if summary.mean_gyration_km is None:
            continue
        if summary.mean_gyration_km > gyration_threshold_km:
            suspects.add(device_id)
    if not suspects:
        return ReselectionResult(0, 0, 0, gyration_threshold_km)

    for event in result.dataset.radio_events:
        if event.device_id in suspects:
            events_by_device[event.device_id].append(event)

    n_ping_pong = 0
    n_assessed = 0
    for device_id in suspects:
        verdict = classify_movement(events_by_device.get(device_id, []))
        if verdict is None:
            continue
        n_assessed += 1
        if verdict.is_ping_pong:
            n_ping_pong += 1
    return ReselectionResult(
        n_assessed=n_assessed,
        n_mobile_looking=len(suspects),
        n_ping_pong=n_ping_pong,
        threshold_km=gyration_threshold_km,
    )
