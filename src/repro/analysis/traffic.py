"""Traffic-volume analysis: Fig. 10 (signaling, calls, data per class).

Per device class and roaming configuration (native vs inbound roaming):

* radio-resource-management signaling events per device per active day
  (M2M ≪ smartphones; feature phones lowest);
* voice calls per day (vast majority of M2M devices: none);
* data bytes per day (inbound M2M ≈ inbound feature phones, tiny;
  inbound smartphones ≪ native smartphones — bill shock).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.stats import ECDF
from repro.core.classifier import ClassLabel
from repro.pipeline import PipelineResult


class RoamingGroup(str, Enum):
    """The two roaming configurations Fig. 10 contrasts."""

    NATIVE = "native"
    INBOUND = "inbound"


GroupKey = Tuple[ClassLabel, RoamingGroup]


@dataclass
class Fig10Result:
    """Per-(class, group) ECDFs of the three per-day traffic metrics."""

    signaling_per_day: Dict[GroupKey, ECDF]
    calls_per_day: Dict[GroupKey, ECDF]
    bytes_per_day: Dict[GroupKey, ECDF]

    def median(self, metric: str, cls: ClassLabel, group: RoamingGroup) -> float:
        table: Dict[GroupKey, ECDF] = getattr(self, metric)
        ecdf = table.get((cls, group))
        return ecdf.median if ecdf else float("nan")

    def zero_call_fraction(self, cls: ClassLabel, group: RoamingGroup) -> float:
        ecdf = self.calls_per_day.get((cls, group))
        return ecdf.fraction_at_most(0.0) if ecdf else float("nan")


def _group_of(result: PipelineResult, device_id: str) -> Optional[RoamingGroup]:
    label = result.summaries[device_id].label
    if label.is_inbound_roamer:
        return RoamingGroup.INBOUND
    if label.visited.value == "H" and label.sim.value in ("H", "V"):
        return RoamingGroup.NATIVE
    return None


def fig10_traffic_volumes(
    result: PipelineResult,
    classes: Iterable[ClassLabel] = (
        ClassLabel.SMART,
        ClassLabel.FEAT,
        ClassLabel.M2M,
    ),
) -> Fig10Result:
    """Signaling / calls / bytes per device per active day (Fig. 10)."""
    wanted = set(classes)
    signaling: Dict[GroupKey, List[float]] = {}
    calls: Dict[GroupKey, List[float]] = {}
    data: Dict[GroupKey, List[float]] = {}
    for device_id, summary in result.summaries.items():
        cls = result.classifications[device_id].label
        if cls not in wanted:
            continue
        group = _group_of(result, device_id)
        if group is None or summary.active_days == 0:
            continue
        key = (cls, group)
        days = summary.active_days
        signaling.setdefault(key, []).append(summary.n_events / days)
        calls.setdefault(key, []).append(summary.n_calls / days)
        data.setdefault(key, []).append(summary.bytes_total / days)
    return Fig10Result(
        signaling_per_day={k: ECDF(v) for k, v in signaling.items() if v},
        calls_per_day={k: ECDF(v) for k, v in calls.items() if v},
        bytes_per_day={k: ECDF(v) for k, v in data.items() if v},
    )
