"""Roaming-revenue and silent-roamer analysis (§6, §8).

The paper's economic observation: M2M inbound roamers "occupy radio
resources in MNOs networks and exploit the MNOs interconnections …
[but] do not generate traffic that would allow MNOs to accrue revenue".
§8 adds the regulatory angle of "silent roamers" — devices attached to
a visited network that never produce billable traffic at all.

:func:`revenue_by_class` rates every inbound-roamer service record
through the wholesale tariff and aggregates per class;
:func:`silent_roamers` finds the attached-but-unbillable population.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from repro.analysis.stats import ECDF
from repro.core.classifier import ClassLabel
from repro.pipeline import PipelineResult
from repro.roaming.billing import WholesaleRater, WholesaleTariff


@dataclass
class ClassRevenue:
    """Wholesale-revenue profile of one inbound-roamer class."""

    n_devices: int
    total_eur: float
    per_device: ECDF
    zero_revenue_share: float

    @property
    def mean_eur(self) -> float:
        return self.total_eur / self.n_devices if self.n_devices else 0.0


@dataclass
class RevenueReport:
    """Per-class revenue plus the resource-vs-revenue asymmetry."""

    by_class: Dict[ClassLabel, ClassRevenue]
    signaling_share: Dict[ClassLabel, float]
    revenue_share: Dict[ClassLabel, float]

    def asymmetry(self, cls: ClassLabel) -> float:
        """Radio-resource share divided by revenue share: >1 means the
        class consumes more network than it pays for."""
        revenue = self.revenue_share.get(cls, 0.0)
        signaling = self.signaling_share.get(cls, 0.0)
        if revenue <= 0:
            return float("inf") if signaling > 0 else 0.0
        return signaling / revenue

    def format(self) -> str:
        lines = ["inbound-roamer wholesale revenue by class:"]
        for cls, rev in sorted(self.by_class.items(), key=lambda kv: kv[0].value):
            lines.append(
                f"  {cls.value:>6}: {rev.n_devices:5d} devices, "
                f"total {rev.total_eur:9.2f} EUR, "
                f"mean {rev.mean_eur:7.4f} EUR/device, "
                f"zero-revenue {rev.zero_revenue_share:5.1%}, "
                f"signaling/revenue asymmetry {self.asymmetry(cls):6.1f}"
            )
        return "\n".join(lines)


def revenue_by_class(
    result: PipelineResult,
    tariff: Optional[WholesaleTariff] = None,
    classes: Iterable[ClassLabel] = (
        ClassLabel.SMART,
        ClassLabel.FEAT,
        ClassLabel.M2M,
    ),
) -> RevenueReport:
    """Rate inbound-roamer usage and aggregate per classified class."""
    rater = WholesaleRater(
        str(result.labeler.observer.plmn), tariff or WholesaleTariff()
    )
    tap = rater.rate_records(result.dataset.service_records)
    revenue_per_device = WholesaleRater.revenue_per_device(tap)

    wanted = set(classes)
    values: Dict[ClassLabel, list] = defaultdict(list)
    signaling: Dict[ClassLabel, float] = defaultdict(float)
    for device_id, summary in result.summaries.items():
        if not summary.label.is_inbound_roamer:
            continue
        cls = result.classifications[device_id].label
        if cls not in wanted:
            continue
        values[cls].append(revenue_per_device.get(device_id, 0.0))
        signaling[cls] += summary.n_events

    if not values:
        raise ValueError("no inbound roamers in the dataset")

    by_class: Dict[ClassLabel, ClassRevenue] = {}
    for cls, revenues in values.items():
        by_class[cls] = ClassRevenue(
            n_devices=len(revenues),
            total_eur=sum(revenues),
            per_device=ECDF(revenues),
            zero_revenue_share=sum(1 for v in revenues if abs(v) < 1e-9)
            / len(revenues),
        )

    total_signaling = sum(signaling.values()) or 1.0
    total_revenue = sum(c.total_eur for c in by_class.values()) or 1.0
    return RevenueReport(
        by_class=by_class,
        signaling_share={
            cls: events / total_signaling for cls, events in signaling.items()
        },
        revenue_share={
            cls: c.total_eur / total_revenue for cls, c in by_class.items()
        },
    )


def silent_roamers(
    result: PipelineResult, billable_threshold_eur: float = 0.001
) -> Set[str]:
    """Inbound roamers that attach but generate ~no billable traffic.

    These are the devices the EU "awakening of silent roamers"
    regulatory effort targets (§8): visible in signaling, invisible in
    revenue.
    """
    rater = WholesaleRater(str(result.labeler.observer.plmn))
    tap = rater.rate_records(result.dataset.service_records)
    revenue = WholesaleRater.revenue_per_device(tap)
    silent: Set[str] = set()
    for device_id, summary in result.summaries.items():
        if not summary.label.is_inbound_roamer:
            continue
        if summary.n_events == 0:
            continue  # never attached to the radio network
        if revenue.get(device_id, 0.0) < billable_threshold_eur:
            silent.add(device_id)
    return silent
