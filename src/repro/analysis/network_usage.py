"""Network-usage analysis: Fig. 9 (RAT dependence per device class).

Three panels, all shares of devices within a class:

* **connectivity** — which RAT combinations a device successfully used
  at all (77.4% of M2M devices are 2G-only);
* **data** — RAT combinations on data interfaces only (56.7% of M2M are
  2G-data-only; 24.5% use no data at all);
* **voice** — RAT combinations on voice interfaces only (60.6% of M2M
  use 2G voice; 27.5% generate no voice traffic).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable

from repro.cellular.rats import RadioFlags
from repro.core.classifier import ClassLabel
from repro.pipeline import PipelineResult


@dataclass
class Fig9Result:
    """Per-class shares of RAT-usage patterns for the three panels.

    Pattern keys are :meth:`RadioFlags.label` strings ("2G-only",
    "2G+3G", …) plus "none" for devices with no activity on that plane.
    """

    connectivity: Dict[ClassLabel, Dict[str, float]]
    data: Dict[ClassLabel, Dict[str, float]]
    voice: Dict[ClassLabel, Dict[str, float]]

    def share(self, panel: str, cls: ClassLabel, pattern: str) -> float:
        table = getattr(self, panel)
        return table.get(cls, {}).get(pattern, 0.0)


def _pattern(flags: RadioFlags) -> str:
    return flags.label()


def fig9_network_usage(
    result: PipelineResult,
    classes: Iterable[ClassLabel] = (
        ClassLabel.SMART,
        ClassLabel.FEAT,
        ClassLabel.M2M,
    ),
) -> Fig9Result:
    """RAT-usage pattern shares per device class (Fig. 9).

    Only devices with radio visibility (i.e. seen on the home network)
    enter the panels — outbound roamers have no interface information.
    """
    wanted = set(classes)
    conn: Dict[ClassLabel, Counter] = defaultdict(Counter)
    data: Dict[ClassLabel, Counter] = defaultdict(Counter)
    voice: Dict[ClassLabel, Counter] = defaultdict(Counter)
    for device_id, summary in result.summaries.items():
        cls = result.classifications[device_id].label
        if cls not in wanted:
            continue
        if summary.radio_flags.is_empty and summary.n_events == 0:
            continue  # CDR-only device: no radio interface visibility
        conn[cls][_pattern(summary.radio_flags)] += 1
        data[cls][_pattern(summary.data_flags)] += 1
        voice[cls][_pattern(summary.voice_flags)] += 1

    def normalize(table: Dict[ClassLabel, Counter]) -> Dict[ClassLabel, Dict[str, float]]:
        out: Dict[ClassLabel, Dict[str, float]] = {}
        for cls, counter in table.items():
            total = sum(counter.values())
            out[cls] = {pattern: count / total for pattern, count in counter.most_common()}
        return out

    return Fig9Result(
        connectivity=normalize(conn),
        data=normalize(data),
        voice=normalize(voice),
    )
