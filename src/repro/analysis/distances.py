"""HMNO-VMNO distance analysis (§3.2).

"The geographical distances between the HMNO and the VMNO are not
always small (e.g., Spain to Australia), pointing to potential serious
performance penalties in the case of HR roaming.  In this case, the M2M
platform uses different roaming configurations in order to optimize the
performance of IoT devices roaming in very far destinations."

This module computes, per transaction and per device, the great-circle
HMNO→VMNO distance, the HR-vs-IHBO user-plane detour through the hub,
and how often the distance-aware policy would break out at the hub.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.stats import ECDF
from repro.cellular.countries import CountryRegistry
from repro.cellular.geo import GeoPoint, haversine_km
from repro.datasets.containers import M2MDataset
from repro.roaming.configs import RoamingConfig, pick_config_for_distance
from repro.roaming.hub import IPXHub


@dataclass
class DistanceResult:
    """Distance structure of a platform's roaming footprint."""

    txn_distance: ECDF           # per-transaction HMNO->VMNO distance (km)
    device_max_distance: ECDF    # per-device farthest VMNO
    intercontinental_share: float  # transactions beyond 5,000 km
    ihbo_share: float            # roaming txns where the policy breaks out
    mean_hr_detour_km: float
    mean_policy_detour_km: float

    @property
    def detour_saving(self) -> float:
        """Fractional user-plane distance saved by the distance-aware
        policy over always-HR."""
        if self.mean_hr_detour_km == 0:
            return 0.0
        return 1.0 - self.mean_policy_detour_km / self.mean_hr_detour_km


def roaming_distances(
    dataset: M2MDataset,
    countries: CountryRegistry,
    hub: Optional[IPXHub] = None,
    intercontinental_km: float = 5000.0,
) -> DistanceResult:
    """Distance profile of every *roaming* transaction in the dataset.

    Distances use country centroids — the same granularity the paper's
    "Spain to Australia" remark implies.  When ``hub`` is given, the
    HR-vs-IHBO comparison runs per transaction.
    """
    txn_distances: List[float] = []
    per_device_max: Dict[str, float] = defaultdict(float)
    ihbo = 0
    hr_detour_total = 0.0
    policy_detour_total = 0.0
    n_roaming = 0

    for txn in dataset.transactions:
        if not txn.is_roaming:
            continue
        home = countries.by_mcc(txn.sim_mcc)
        visited = countries.by_mcc(txn.visited_mcc)
        if home is None or visited is None:
            continue
        n_roaming += 1
        home_point = GeoPoint(home.lat, home.lon)
        visited_point = GeoPoint(visited.lat, visited.lon)
        distance = haversine_km(home_point, visited_point)
        txn_distances.append(distance)
        per_device_max[txn.device_id] = max(per_device_max[txn.device_id], distance)
        if hub is not None:
            pop = hub.nearest_pop(visited_point)
            config = pick_config_for_distance(
                visited_point, home_point, pop.location
            )
            hr_detour_total += distance
            if config is RoamingConfig.IPX_HUB_BREAKOUT:
                ihbo += 1
                policy_detour_total += haversine_km(visited_point, pop.location)
            else:
                policy_detour_total += distance

    if not txn_distances:
        raise ValueError("dataset contains no roaming transactions")

    return DistanceResult(
        txn_distance=ECDF(txn_distances),
        device_max_distance=ECDF(list(per_device_max.values())),
        intercontinental_share=sum(
            1 for d in txn_distances if d > intercontinental_km
        ) / len(txn_distances),
        ihbo_share=ihbo / n_roaming if hub is not None else 0.0,
        mean_hr_detour_km=(
            hr_detour_total / n_roaming if hub is not None else 0.0
        ),
        mean_policy_detour_km=(
            policy_detour_total / n_roaming if hub is not None else 0.0
        ),
    )


def farthest_pairs(
    dataset: M2MDataset, countries: CountryRegistry, k: int = 5
) -> List[Tuple[str, str, float]]:
    """The k most distant (home, visited) country pairs observed."""
    seen: Set[Tuple[str, str]] = set()
    pairs: List[Tuple[str, str, float]] = []
    for txn in dataset.transactions:
        if not txn.is_roaming:
            continue
        home = countries.by_mcc(txn.sim_mcc)
        visited = countries.by_mcc(txn.visited_mcc)
        if home is None or visited is None:
            continue
        key = (home.iso, visited.iso)
        if key in seen:
            continue
        seen.add(key)
        pairs.append(
            (
                home.iso,
                visited.iso,
                haversine_km(
                    GeoPoint(home.lat, home.lon), GeoPoint(visited.lat, visited.lon)
                ),
            )
        )
    pairs.sort(key=lambda p: -p[2])
    return pairs[:k]
