"""Store scrubbing: verify CRCs end-to-end, classify and repair damage.

A checkpoint store (or the daemon's WAL, which is one) can rot *at
rest*: the run that wrote it saw every write succeed, and the damage —
a flipped byte, a truncated tail from a lost cache, a unit file that
vanished — surfaces only when a resume finally reads the unit, possibly
weeks later.  :func:`scrub_store` is the proactive half of the
durability story: walk a store **without opening it as a run** (no
attempt bump, no fingerprint needed), re-validate every journaled
unit's framed block CRC end-to-end, and classify what fails:

``torn-tail``
    The file is shorter than its frame header declares (or too short to
    hold a frame at all) — the signature of an interrupted write.
``bit-rot``
    The full length is present but the content fails validation (CRC
    mismatch, bad magic/version, trailing bytes) — at-rest corruption.
``missing``
    The journal names a unit whose block file does not exist.
``read-error``
    The file cannot be read at all (``EIO`` from a failing device).

With ``repair=True`` the scrubber heals what it can: a ``recompute``
callback re-derives a unit's bytes from the original inputs (units are
pure, so the rebuilt block is byte-identical) and the unit is
atomically rewritten and re-verified; units it cannot rebuild are
**marked for re-execution** — the block file is removed and the unit's
journal entries are dropped (journal atomically rewritten), so the next
``resume=True`` run recomputes exactly the damaged units.  Stray
staging temps and a torn journal tail are swept the same way the store
itself would sweep them on open.

Everything is reported in a typed :class:`ScrubReport`; the CLI
(``repro scrub``) prints it and exits nonzero while damage remains.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.columnar.blocks import _FRAME, _HEADER_LEN
from repro.runtime import fsio
from repro.runtime.checkpoint import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    UNITS_DIRNAME,
    _TMP_SUFFIX,
    CheckpointError,
    PathLike,
    _payload_crc,
    atomic_write_bytes,
    load_manifest,
    parse_journal_lines,
)
from repro.runtime.serialize import unpack_day_block

__all__ = [
    "DAMAGE_BIT_ROT",
    "DAMAGE_MISSING",
    "DAMAGE_READ_ERROR",
    "DAMAGE_TORN_TAIL",
    "DamagedUnit",
    "Recompute",
    "ScrubReport",
    "recompute_from_dataset",
    "scrub_store",
]

DAMAGE_TORN_TAIL = "torn-tail"
DAMAGE_BIT_ROT = "bit-rot"
DAMAGE_MISSING = "missing"
DAMAGE_READ_ERROR = "read-error"

#: What the scrubber did about one damaged unit.
ACTION_REPORTED = "reported"
ACTION_RECOMPUTED = "recomputed"
ACTION_MARKED_RERUN = "marked-for-rerun"

#: ``recompute(day, shard, n_shards) -> bytes | None``: re-derive one
#: unit's block bytes from original inputs, or ``None`` if it cannot.
Recompute = Callable[[int, int, int], Optional[bytes]]


@dataclass(frozen=True)
class DamagedUnit:
    """One journaled unit that failed end-to-end verification."""

    day: int
    shard: int
    damage: str
    action: str = ACTION_REPORTED
    detail: str = ""

    def __str__(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        return (
            f"unit (day={self.day}, shard={self.shard}) {self.damage} "
            f"[{self.action}]{suffix}"
        )


@dataclass
class ScrubReport:
    """Typed outcome of one :func:`scrub_store` walk."""

    directory: str
    n_journaled_units: int = 0
    n_verified_ok: int = 0
    damaged: List[DamagedUnit] = field(default_factory=list)
    n_recomputed: int = 0
    n_marked_for_rerun: int = 0
    n_torn_journal_lines: int = 0
    n_stray_tmp: int = 0
    manifest_error: str = ""
    repaired: bool = False

    @property
    def unrepaired(self) -> List[DamagedUnit]:
        """Damage the scrub did not (or could not) resolve."""
        return [unit for unit in self.damaged if unit.action == ACTION_REPORTED]

    @property
    def ok(self) -> bool:
        """True when the store verified clean end to end."""
        return (
            not self.damaged
            and not self.n_torn_journal_lines
            and not self.n_stray_tmp
            and not self.manifest_error
        )

    @property
    def healthy_after_scrub(self) -> bool:
        """True when nothing unresolved remains (clean, or fully repaired)."""
        return not self.unrepaired and not self.manifest_error and (
            self.repaired or self.ok
        )

    def payload(self) -> Dict[str, Any]:
        return {
            "directory": self.directory,
            "n_journaled_units": self.n_journaled_units,
            "n_verified_ok": self.n_verified_ok,
            "n_damaged": len(self.damaged),
            "damaged": [
                {
                    "day": unit.day,
                    "shard": unit.shard,
                    "damage": unit.damage,
                    "action": unit.action,
                    "detail": unit.detail,
                }
                for unit in self.damaged
            ],
            "n_recomputed": self.n_recomputed,
            "n_marked_for_rerun": self.n_marked_for_rerun,
            "n_torn_journal_lines": self.n_torn_journal_lines,
            "n_stray_tmp": self.n_stray_tmp,
            "manifest_error": self.manifest_error,
            "repaired": self.repaired,
            "ok": self.ok,
            "healthy_after_scrub": self.healthy_after_scrub,
        }

    def to_json(self) -> str:
        return json.dumps(self.payload(), sort_keys=True)

    def format(self) -> str:
        lines = [
            f"scrub {self.directory}: "
            f"{self.n_verified_ok}/{self.n_journaled_units} unit(s) verified ok"
        ]
        for unit in self.damaged:
            lines.append(f"  {unit}")
        if self.n_torn_journal_lines:
            action = "truncated" if self.repaired else "found"
            lines.append(
                f"  journal: {action} torn tail "
                f"({self.n_torn_journal_lines} line(s))"
            )
        if self.n_stray_tmp:
            action = "removed" if self.repaired else "found"
            lines.append(f"  staging: {action} {self.n_stray_tmp} stray temp file(s)")
        if self.manifest_error:
            lines.append(f"  manifest: {self.manifest_error}")
        if self.repaired:
            lines.append(
                f"  repair: {self.n_recomputed} recomputed, "
                f"{self.n_marked_for_rerun} marked for re-execution on resume"
            )
        lines.append("  status: " + ("healthy" if self.ok else (
            "repaired" if self.healthy_after_scrub else "damage remains"
        )))
        return "\n".join(lines)


def _classify_block(data: bytes) -> Optional[Tuple[str, str]]:
    """(damage class, detail) for one unit's bytes, or ``None`` if clean.

    Length-first: a file shorter than its frame header declares is a
    torn tail (an interrupted write truncates; rot does not shorten a
    file), anything else that fails validation at full length is bit
    rot.  Validation is end-to-end — after the frame CRC the block is
    fully decoded, so a block whose CRC collided with damaged content
    still cannot pass.
    """
    frame_size = _FRAME.size
    if len(data) < frame_size:
        return (
            DAMAGE_TORN_TAIL,
            f"file holds {len(data)} byte(s), frame needs {frame_size}",
        )
    _magic, _version, _crc, body_len = _FRAME.unpack_from(data)
    declared = frame_size + int(body_len)
    if len(data) < declared:
        return (
            DAMAGE_TORN_TAIL,
            f"file holds {len(data)} of {declared} declared byte(s)",
        )
    try:
        unpack_day_block(data)
    except Exception as exc:  # noqa: BLE001 — every decode failure at
        # full declared length is at-rest corruption, whatever its type.
        return (DAMAGE_BIT_ROT, f"{type(exc).__name__}: {exc}")
    return None


def _strip_wal_envelope(data: bytes) -> bytes:
    """Drop a WAL unit's ``len | header JSON`` prefix, keeping the block.

    The envelope has no checksum of its own (the block's CRC is the
    integrity bearer); a torn or rotted envelope always leaves the
    framed block failing validation too, so classification on the
    stripped bytes is still length-first correct.
    """
    if len(data) < _HEADER_LEN.size:
        return data
    (header_len,) = _HEADER_LEN.unpack_from(data)
    offset = _HEADER_LEN.size + header_len
    if header_len < 0 or offset > len(data):
        return data
    return data[offset:]


def scrub_store(
    directory: PathLike,
    repair: bool = False,
    recompute: Optional[Recompute] = None,
) -> ScrubReport:
    """Walk one store, verifying every journaled unit end-to-end.

    Read-only unless ``repair=True``.  Raises :class:`CheckpointError`
    if ``directory`` holds no manifest at all (not a store); a corrupt
    manifest is *reported* (``manifest_error``) and the walk continues —
    journal and units are self-validating and independently useful.
    """
    root = Path(directory)
    report = ScrubReport(directory=str(root), repaired=repair)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise CheckpointError(f"{root} holds no {MANIFEST_NAME}; not a store")

    n_shards = 0
    wal_role = False
    try:
        payload = load_manifest(manifest_path)
        n_shards = int(payload.get("n_shards", 0))
        fingerprint = payload.get("fingerprint", {})
        wal_role = (
            isinstance(fingerprint, dict)
            and fingerprint.get("role") == "service-wal"
        )
    except CheckpointError as exc:
        report.manifest_error = str(exc)

    entries: List[Dict[str, int]] = []
    journal_path = root / JOURNAL_NAME
    if journal_path.exists():
        try:
            text = fsio.read_file_bytes(journal_path).decode("utf-8")
        except OSError as exc:
            raise CheckpointError(f"journal unreadable: {exc}") from exc
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        entries, report.n_torn_journal_lines = parse_journal_lines(lines)

    units_dir = root / UNITS_DIRNAME
    seen = {(entry["day"], entry["shard"]) for entry in entries}
    report.n_journaled_units = len(seen)

    for day, shard in sorted(seen):
        path = units_dir / f"day_{day:03d}.shard_{shard:03d}.ckpt"
        if not path.exists():
            report.damaged.append(
                DamagedUnit(day, shard, DAMAGE_MISSING, detail=str(path.name))
            )
            continue
        try:
            data = fsio.read_file_bytes(path)
        except OSError as exc:
            report.damaged.append(
                DamagedUnit(day, shard, DAMAGE_READ_ERROR, detail=str(exc))
            )
            continue
        if wal_role:
            data = _strip_wal_envelope(data)
        verdict = _classify_block(data)
        if verdict is None:
            report.n_verified_ok += 1
            continue
        damage, detail = verdict
        report.damaged.append(DamagedUnit(day, shard, damage, detail=detail))

    strays = sorted(root.rglob(f"*{_TMP_SUFFIX}"))
    report.n_stray_tmp = len(strays)

    if not repair:
        return report

    # -- repair pass ---------------------------------------------------------
    for stray in strays:
        stray.unlink()

    rerun: List[Tuple[int, int]] = []
    healed: List[DamagedUnit] = []
    for unit in report.damaged:
        path = units_dir / f"day_{unit.day:03d}.shard_{unit.shard:03d}.ckpt"
        rebuilt: Optional[bytes] = None
        if recompute is not None and not wal_role:
            rebuilt = recompute(unit.day, unit.shard, n_shards)
        if rebuilt is not None and _classify_block(rebuilt) is None:
            atomic_write_bytes(path, rebuilt)
            report.n_recomputed += 1
            healed.append(
                DamagedUnit(
                    unit.day,
                    unit.shard,
                    unit.damage,
                    action=ACTION_RECOMPUTED,
                    detail=unit.detail,
                )
            )
        else:
            # Cannot rebuild here: drop the unit so the next resume
            # re-executes it (WAL units were by definition acked, but a
            # damaged one was already unreplayable — dropping it turns a
            # latent replay failure into an explicit re-send).
            path.unlink(missing_ok=True)
            rerun.append((unit.day, unit.shard))
            report.n_marked_for_rerun += 1
            healed.append(
                DamagedUnit(
                    unit.day,
                    unit.shard,
                    unit.damage,
                    action=ACTION_MARKED_RERUN,
                    detail=unit.detail,
                )
            )
    report.damaged = healed

    if rerun or report.n_torn_journal_lines:
        dropped = set(rerun)
        kept = [
            entry
            for entry in entries
            if (entry["day"], entry["shard"]) not in dropped
        ]
        body = "".join(
            json.dumps(dict(e, crc=_payload_crc(e)), sort_keys=True) + "\n"
            for e in kept
        )
        atomic_write_bytes(journal_path, body.encode("utf-8"))
    return report


def recompute_from_dataset(
    dataset: Any,
    lenient: bool = False,
    builder: Optional[Any] = None,
) -> Recompute:
    """Build a :data:`Recompute` that re-derives units from a dataset.

    Units are pure functions of (day slice, shard count), so the
    returned callback rebuilds byte-identical blocks from the same
    in-memory dataset the original run consumed.  ``lenient`` runs need
    the run's ``builder`` (for per-unit validation); strict runs don't.
    """
    from repro.parallel.sharding import shard_mno_records
    from repro.runtime.run import _day_slices, _encode_block

    slices = _day_slices(dataset)

    def recompute(day: int, shard: int, n_shards: int) -> Optional[bytes]:
        if n_shards < 1 or shard >= n_shards:
            return None
        radio_day, service_day = slices.get(day, ([], []))
        shard_slices = shard_mno_records(radio_day, service_day, n_shards)
        radio, service = shard_slices[shard]
        if lenient and builder is None:
            return None
        return _encode_block(builder, lenient, radio, service)

    return recompute
