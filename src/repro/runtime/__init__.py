"""Durable execution for multi-day pipeline runs.

Three layers, lowest first:

- :mod:`repro.runtime.serialize` — CRC-framed, self-contained
  serialization of one ``(day, shard)`` columnar block;
- :mod:`repro.runtime.checkpoint` — the atomic
  :class:`CheckpointStore`: write-temp → fsync → rename publication,
  versioned run manifest, append-only completion journal;
- :mod:`repro.runtime.spill` — out-of-core replay: mmap-backed
  :class:`BlockReader` attach of spilled blocks plus the LRU
  :class:`ReplayWindow` that bounds resident column memory;
- :mod:`repro.runtime.run` — :func:`run_durable_pipeline`, the driver
  that executes units through the resilient pool seam, persists them,
  and replays the incremental catalog engine on resume (optionally
  out-of-core, attaching blocks through the window instead of loading
  them).

The contract the chaos kill-matrix enforces: kill the run at any
instant, resume it, and the catalogs, summaries and classifier output
are byte-identical to an uninterrupted run.

:func:`atomic_write_bytes` / :func:`atomic_write_text` are exported for
any code that persists durable artifacts (checkpoints, bench baselines);
lint rule ``DUR001`` bans non-atomic writes of such artifacts outside
this package.
"""

from repro.runtime.checkpoint import (
    CheckpointStore,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.runtime.run import run_durable_pipeline
from repro.runtime.serialize import (
    CheckpointCorruption,
    CheckpointError,
    StaleManifestError,
    attach_day_block,
    pack_day_block,
    unpack_day_block,
)
from repro.runtime.spill import (
    BlockReader,
    ReplayWindow,
    open_reader_count,
)

__all__ = [
    "BlockReader",
    "CheckpointCorruption",
    "CheckpointError",
    "CheckpointStore",
    "ReplayWindow",
    "StaleManifestError",
    "atomic_write_bytes",
    "atomic_write_text",
    "attach_day_block",
    "open_reader_count",
    "pack_day_block",
    "run_durable_pipeline",
    "unpack_day_block",
]
