"""Out-of-core replay: mmap-backed readers over spilled column blocks.

The durable runtime already persists every ``(day, shard)`` unit as a
self-contained CRC-framed column block (:mod:`repro.runtime.serialize`).
This module is the read side of out-of-core execution: instead of
loading each block back into materialized ``array`` columns, a
:class:`BlockReader` maps the unit file and attaches the columns as
typed ``memoryview`` slices over the mapping (zero-copy; CRC verified
lazily, at attach time).  A :class:`ReplayWindow` keeps an LRU of open
readers bounded by ``max_resident_shards`` / ``max_resident_bytes``, so
a catalog fold over any population only ever holds a few shards of
column data — peak RSS becomes a function of the window, not the
device count.

Fallback matrix: when ``mmap`` is unusable on the target file (or the
``REPRO_SPILL_NO_MMAP`` environment flag is set, e.g. on filesystems
that cannot map), the reader degrades to a streamed ``read_bytes`` +
:func:`~repro.runtime.serialize.unpack_day_block` — same validation,
same rows, one buffer copy.  Either way every integrity failure is a
:class:`~repro.columnar.blocks.CheckpointCorruption` naming the
offending ``(day, shard)``.

Lifetime discipline: attached stores *borrow* the reader's mapping.
They are valid until the reader is evicted or closed; the window
guarantees the most recently attached unit is never evicted, so the
standard fold pattern — attach, fold into an accumulator, move on — is
safe.  ``close`` releases every exported column view before unmapping
(Python raises ``BufferError`` otherwise), and the module-level
:func:`open_reader_count` exposes the live-reader count so chaos tests
can assert nothing leaks.
"""

from __future__ import annotations

import mmap
import os
from collections import OrderedDict
from struct import error as struct_error
from pathlib import Path
from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.columnar.blocks import (
    RADIO_COLUMNS,
    SERVICE_COLUMNS,
    CheckpointCorruption,
)
from repro.columnar.store import ColumnarRadioEvents, ColumnarServiceRecords
from repro.runtime import fsio
from repro.runtime.checkpoint import PathLike, _TMP_SUFFIX
from repro.runtime.serialize import (
    QuarantineEntry,
    attach_day_block,
    unpack_day_block,
)

__all__ = [
    "SPILL_NO_MMAP_ENV",
    "BlockReader",
    "ReplayWindow",
    "SpillDescriptor",
    "open_reader_count",
    "spill_tmp_path",
    "write_spill_blob",
]

#: Set (to any non-empty value) to force the streamed-read fallback —
#: the escape hatch for filesystems where mmap is unavailable, and the
#: switch the fallback-matrix tests flip.
SPILL_NO_MMAP_ENV = "REPRO_SPILL_NO_MMAP"

#: Readers currently holding an open mapping or buffer.  Chaos and
#: leak tests assert this returns to zero after every run.
_OPEN_READERS = 0


def open_reader_count() -> int:
    """How many :class:`BlockReader` instances are currently open."""
    return _OPEN_READERS


class SpillDescriptor(NamedTuple):
    """What a spill worker sends back across the pool seam.

    The block itself stays on disk (written + fsynced by the worker);
    only this fixed-size descriptor crosses the process boundary, so
    the parent's ingest cost per unit is a rename, not a blob copy.
    """

    day: int
    shard: int
    path: str
    nbytes: int


def spill_tmp_path(spill_dir: PathLike, day: int, shard: int) -> Path:
    """Worker-side staging path for one unit's spilled block.

    Lives inside the store's ``units/`` directory under the checkpoint
    temp suffix, so a SIGKILL between spill and adopt leaves a stray
    that the store's resume-time temp sweep removes.  The writer's pid
    is part of the name: a timed-out worker's zombie attempt and its
    retry can never interleave writes into the same file.
    """
    return Path(spill_dir) / (
        f"day_{day:03d}.shard_{shard:03d}.ckpt.{os.getpid()}{_TMP_SUFFIX}"
    )


def write_spill_blob(path: PathLike, data: bytes) -> int:
    """Durably write one framed block to its staging path.

    Routed through the fault-aware seam: on any write/fsync failure the
    partial staging file is removed before the ``OSError`` propagates.
    """
    return fsio.write_file_bytes(path, data)


class BlockReader:
    """One spilled unit, attached zero-copy (mmap) or streamed.

    ``attach`` validates the frame (magic, version, strict length, CRC
    over the whole body) and exposes the unit as attached columnar
    stores plus its quarantine entries.  All integrity errors surface
    as :class:`CheckpointCorruption` naming this reader's (day, shard).
    """

    def __init__(self, path: PathLike, day: int, shard: int) -> None:
        self.path = Path(path)
        self.day = day
        self.shard = shard
        self.nbytes = 0
        self.events: Optional[ColumnarRadioEvents] = None
        self.records: Optional[ColumnarServiceRecords] = None
        self.quarantine: List[QuarantineEntry] = []
        self._mmap: Optional[mmap.mmap] = None
        self._view: Optional[memoryview] = None
        self._open = False

    def _corrupt(self, exc: Exception) -> CheckpointCorruption:
        return CheckpointCorruption(
            f"spilled unit (day={self.day}, shard={self.shard}): {exc}"
        )

    def attach(
        self,
    ) -> Tuple[ColumnarRadioEvents, ColumnarServiceRecords, List[QuarantineEntry]]:
        """Map (or read) the block and attach its columns."""
        global _OPEN_READERS
        if self._open:
            assert self.events is not None and self.records is not None
            return self.events, self.records, self.quarantine
        use_mmap = not os.environ.get(SPILL_NO_MMAP_ENV)
        mapped: Optional[mmap.mmap] = None
        if use_mmap:
            try:
                # mmap reads bypass read() syscalls, so probe the
                # fault seam explicitly before mapping: injected
                # read-EIO must reach zero-copy consumers too.
                fsio.check_read(self.path)
                fd = os.open(self.path, os.O_RDONLY)
            except OSError as exc:
                raise self._corrupt(exc) from exc
            try:
                mapped = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
            except (OSError, ValueError, OverflowError):
                # mmap unavailable here (or degenerate file, e.g. an
                # empty one): fall through to the streamed read, which
                # applies the same validation and raises the same
                # corruption errors.
                mapped = None
            finally:
                os.close(fd)
        try:
            if mapped is not None:
                self._mmap = mapped
                self._view = memoryview(mapped)
                self.nbytes = len(mapped)
                events, records, quarantine = attach_day_block(self._view)
            else:
                try:
                    data = fsio.read_file_bytes(self.path)
                except OSError as exc:
                    raise self._corrupt(exc) from exc
                self.nbytes = len(data)
                events, records, quarantine = unpack_day_block(data)
        except CheckpointCorruption as exc:
            self.close()
            raise self._corrupt(exc) from exc
        except (ValueError, KeyError, TypeError, struct_error) as exc:
            # A valid CRC over a malformed header/spec cannot happen by
            # bit rot, but a hand-edited or cross-version block can get
            # here; name the unit either way.
            self.close()
            raise self._corrupt(exc) from exc
        self.events = events
        self.records = records
        self.quarantine = quarantine
        self._open = True
        _OPEN_READERS += 1
        return events, records, quarantine

    def close(self) -> None:
        """Release every exported column view, then unmap."""
        global _OPEN_READERS
        if self._open:
            _OPEN_READERS -= 1
            self._open = False
        for store, names in (
            (self.events, RADIO_COLUMNS),
            (self.records, SERVICE_COLUMNS),
        ):
            if store is None:
                continue
            for name in names:
                column = getattr(store, name, None)
                if isinstance(column, memoryview):
                    column.release()
        self.events = None
        self.records = None
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    def __enter__(self) -> "BlockReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ReplayWindow:
    """LRU window of open :class:`BlockReader` mappings.

    ``attach(path, day, shard)`` returns the unit's attached stores,
    opening a reader on miss and bumping it to most-recently-used on
    hit.  After every attach the window evicts least-recently-used
    readers until it is back within ``max_resident_shards`` and
    ``max_resident_bytes`` (the unit just attached is never evicted,
    even when it alone exceeds the byte budget).  Eviction closes the
    reader — munmap is what actually bounds resident column memory.
    """

    def __init__(
        self,
        max_resident_shards: int = 4,
        max_resident_bytes: Optional[int] = None,
    ) -> None:
        if max_resident_shards < 1:
            raise ValueError(
                f"max_resident_shards must be >= 1, got {max_resident_shards}"
            )
        self.max_resident_shards = max_resident_shards
        self.max_resident_bytes = max_resident_bytes
        self._readers: "OrderedDict[Tuple[int, int], BlockReader]" = OrderedDict()

    @property
    def resident_shards(self) -> int:
        return len(self._readers)

    @property
    def resident_bytes(self) -> int:
        return sum(reader.nbytes for reader in self._readers.values())

    def resident_keys(self) -> Iterator[Tuple[int, int]]:
        """(day, shard) keys currently resident, LRU first."""
        return iter(tuple(self._readers))

    def attach(
        self, path: PathLike, day: int, shard: int
    ) -> Tuple[ColumnarRadioEvents, ColumnarServiceRecords, List[QuarantineEntry]]:
        """Attach one unit, evicting LRU readers past the budgets."""
        key = (day, shard)
        reader = self._readers.pop(key, None)
        if reader is None:
            reader = BlockReader(path, day, shard)
            reader.attach()
        self._readers[key] = reader
        self._evict(keep=key)
        assert reader.events is not None and reader.records is not None
        return reader.events, reader.records, reader.quarantine

    def _evict(self, keep: Tuple[int, int]) -> None:
        def over_budget() -> bool:
            if len(self._readers) > self.max_resident_shards:
                return True
            return (
                self.max_resident_bytes is not None
                and self.resident_bytes > self.max_resident_bytes
            )

        while over_budget():
            oldest = next(iter(self._readers))
            if oldest == keep:
                break
            self._readers.pop(oldest).close()

    def close(self) -> None:
        """Close every resident reader."""
        while self._readers:
            _, reader = self._readers.popitem(last=False)
            reader.close()

    def __enter__(self) -> "ReplayWindow":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
