"""CRC-framed serialization of one ``(day, shard)`` columnar block.

A durable run's unit of work is one shard of one day's records.  Each
unit is persisted as a **self-contained** byte block: the shard slice
dictionary-encoded onto its own :class:`~repro.columnar.store.ColumnPools`
(pool vocabularies embedded), every column written as its raw ``array``
buffer, and — in lenient mode — the unit's quarantine decisions riding
in the header.  Self-containment is what makes resume trivial: a block
can be decoded years later with nothing but this module, no shared pool
state to reconstruct.

The framing and column chunking live in :mod:`repro.columnar.blocks`
(shared with the zero-copy shard transport)::

    MAGIC (4) | version u32 | crc32(body) u32 | len(body) u64 | body
    body = header_len u32 | header JSON (utf-8) | column buffers

The CRC covers the whole body, so a torn write (truncated file, partial
rename source) or bit rot is detected before a single row is decoded —
:class:`CheckpointCorruption` is raised, never a silently-wrong catalog.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.columnar.blocks import (
    BLOCK_VERSION,
    MAGIC,
    RADIO_COLUMNS,
    SERVICE_COLUMNS,
    CheckpointCorruption,
    CheckpointError,
    build_block,
    column_chunks,
    load_column_chunks,
    load_column_views,
    pools_from_header,
    pools_header,
    read_block,
    read_block_view,
)
from repro.columnar.store import (
    ColumnPools,
    ColumnarRadioEvents,
    ColumnarServiceRecords,
)
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent

__all__ = [
    "BLOCK_VERSION",
    "MAGIC",
    "RADIO_COLUMNS",
    "SERVICE_COLUMNS",
    "CheckpointCorruption",
    "CheckpointError",
    "QuarantineEntry",
    "StaleManifestError",
    "attach_day_block",
    "pack_day_block",
    "unpack_day_block",
]

#: One lenient-mode quarantine decision: (device_id, stage, error text).
QuarantineEntry = Tuple[str, str, str]


class StaleManifestError(CheckpointError):
    """A checkpoint directory's manifest does not match this run."""


def pack_day_block(
    radio_events: Sequence[RadioEvent],
    service_records: Sequence[ServiceRecord],
    quarantine: Sequence[QuarantineEntry] = (),
) -> bytes:
    """Encode one unit's row slice into a framed, checksummed block."""
    pools = ColumnPools()
    events = ColumnarRadioEvents.from_rows(radio_events, pools)
    records = ColumnarServiceRecords.from_rows(service_records, pools)

    radio_spec, radio_chunks = column_chunks(events, RADIO_COLUMNS)
    service_spec, service_chunks = column_chunks(records, SERVICE_COLUMNS)
    # Header key order is part of the on-disk byte format (version 1
    # blocks predate the shared codec); keep it stable.
    header = {
        "pools": pools_header(pools),
        "radio": radio_spec,
        "service": service_spec,
        "quarantine": [list(entry) for entry in quarantine],
    }
    return build_block(header, [*radio_chunks, *service_chunks])


def unpack_day_block(
    data: bytes,
) -> Tuple[ColumnarRadioEvents, ColumnarServiceRecords, List[QuarantineEntry]]:
    """Decode a framed block, validating checksum and version first."""
    header, body, offset = read_block(data)
    pools = pools_from_header(header["pools"])
    events = ColumnarRadioEvents(pools)
    offset = load_column_chunks(events, header["radio"], body, offset)
    records = ColumnarServiceRecords(pools)
    load_column_chunks(records, header["service"], body, offset)
    quarantine = [
        (str(device_id), str(stage), str(error))
        for device_id, stage, error in header["quarantine"]
    ]
    return events, records, quarantine


def attach_day_block(
    data: memoryview,
) -> Tuple[ColumnarRadioEvents, ColumnarServiceRecords, List[QuarantineEntry]]:
    """:func:`unpack_day_block` without copying the column buffers.

    Validates exactly like :func:`unpack_day_block` (CRC over the whole
    body, strict length), then attaches each column as a typed
    ``memoryview`` over ``data`` — typically an mmap'd spill file — so
    decoding a block costs one checksum pass plus the pool vocabularies,
    never a buffer copy.  The stores borrow ``data``: release every
    column view (see :class:`repro.runtime.spill.BlockReader`) before
    closing the backing buffer.
    """
    header, body, offset = read_block_view(data)
    events: Optional[ColumnarRadioEvents] = None
    records: Optional[ColumnarServiceRecords] = None
    try:
        pools = pools_from_header(header["pools"])
        events = ColumnarRadioEvents(pools)
        offset = load_column_views(events, header["radio"], body, offset)
        records = ColumnarServiceRecords(pools)
        load_column_views(records, header["service"], body, offset)
        quarantine = [
            (str(device_id), str(stage), str(error))
            for device_id, stage, error in header["quarantine"]
        ]
        return events, records, quarantine
    except BaseException:
        # A half-attached store's views (and this frame's locals, held
        # alive by the raised exception's traceback) would otherwise
        # block closing the backing mmap; release everything attached
        # so far before propagating.
        for store, names in ((events, RADIO_COLUMNS), (records, SERVICE_COLUMNS)):
            if store is None:
                continue
            for name in names:
                column = getattr(store, name, None)
                if isinstance(column, memoryview):
                    column.release()
        raise
    finally:
        body.release()
