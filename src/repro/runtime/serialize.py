"""CRC-framed serialization of one ``(day, shard)`` columnar block.

A durable run's unit of work is one shard of one day's records.  Each
unit is persisted as a **self-contained** byte block: the shard slice
dictionary-encoded onto its own :class:`~repro.columnar.store.ColumnPools`
(pool vocabularies embedded), every column written as its raw ``array``
buffer, and — in lenient mode — the unit's quarantine decisions riding
in the header.  Self-containment is what makes resume trivial: a block
can be decoded years later with nothing but this module, no shared pool
state to reconstruct.

Framing::

    MAGIC (4) | version u32 | crc32(body) u32 | len(body) u64 | body
    body = header_len u32 | header JSON (utf-8) | column buffers

The CRC covers the whole body, so a torn write (truncated file, partial
rename source) or bit rot is detected before a single row is decoded —
:class:`CheckpointCorruption` is raised, never a silently-wrong catalog.
"""

from __future__ import annotations

import json
import struct
import zlib
from array import array
from typing import List, Sequence, Tuple

from repro.columnar.store import (
    ColumnPools,
    ColumnarRadioEvents,
    ColumnarServiceRecords,
    StringPool,
)
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent

MAGIC = b"RPCK"
BLOCK_VERSION = 1

_FRAME = struct.Struct("<4sIIQ")
_HEADER_LEN = struct.Struct("<I")

#: Column storage order, fixed per format version.  Mirrors the
#: ``__slots__`` of the columnar stores minus ``pools``.
RADIO_COLUMNS = (
    "device_ids",
    "timestamps",
    "days",
    "sim_plmns",
    "tacs",
    "sector_ids",
    "interfaces",
    "event_types",
    "results",
)
SERVICE_COLUMNS = (
    "device_ids",
    "timestamps",
    "days",
    "sim_plmns",
    "visited_plmns",
    "services",
    "durations",
    "bytes_totals",
    "apns",
)

#: One lenient-mode quarantine decision: (device_id, stage, error text).
QuarantineEntry = Tuple[str, str, str]


class CheckpointError(RuntimeError):
    """Base class for durable-run checkpoint failures."""


class CheckpointCorruption(CheckpointError):
    """A persisted payload failed checksum or format validation."""


class StaleManifestError(CheckpointError):
    """A checkpoint directory's manifest does not match this run."""


def pack_day_block(
    radio_events: Sequence[RadioEvent],
    service_records: Sequence[ServiceRecord],
    quarantine: Sequence[QuarantineEntry] = (),
) -> bytes:
    """Encode one unit's row slice into a framed, checksummed block."""
    pools = ColumnPools()
    events = ColumnarRadioEvents.from_rows(radio_events, pools)
    records = ColumnarServiceRecords.from_rows(service_records, pools)

    chunks: List[bytes] = []
    radio_spec = []
    for name in RADIO_COLUMNS:
        column: array = getattr(events, name)
        data = column.tobytes()
        radio_spec.append([name, column.typecode, len(data)])
        chunks.append(data)
    service_spec = []
    for name in SERVICE_COLUMNS:
        column = getattr(records, name)
        data = column.tobytes()
        service_spec.append([name, column.typecode, len(data)])
        chunks.append(data)

    header = {
        "pools": {
            "devices": list(pools.devices.strings),
            "plmns": list(pools.plmns.strings),
            "apns": list(pools.apns.strings),
        },
        "radio": radio_spec,
        "service": service_spec,
        "quarantine": [list(entry) for entry in quarantine],
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    body = b"".join([_HEADER_LEN.pack(len(header_bytes)), header_bytes, *chunks])
    frame = _FRAME.pack(MAGIC, BLOCK_VERSION, zlib.crc32(body), len(body))
    return frame + body


def unpack_day_block(
    data: bytes,
) -> Tuple[ColumnarRadioEvents, ColumnarServiceRecords, List[QuarantineEntry]]:
    """Decode a framed block, validating checksum and version first."""
    if len(data) < _FRAME.size:
        raise CheckpointCorruption(
            f"block too short for frame ({len(data)} bytes)"
        )
    magic, version, crc, body_len = _FRAME.unpack_from(data)
    if magic != MAGIC:
        raise CheckpointCorruption(f"bad magic {magic!r}")
    if version != BLOCK_VERSION:
        raise CheckpointCorruption(
            f"block version {version} != supported {BLOCK_VERSION}"
        )
    body = data[_FRAME.size:]
    if len(body) != body_len:
        raise CheckpointCorruption(
            f"torn block: body holds {len(body)} of {body_len} bytes"
        )
    if zlib.crc32(body) != crc:
        raise CheckpointCorruption("block checksum mismatch")

    (header_len,) = _HEADER_LEN.unpack_from(body)
    offset = _HEADER_LEN.size
    header = json.loads(body[offset:offset + header_len].decode("utf-8"))
    offset += header_len

    pools = ColumnPools(
        devices=StringPool(header["pools"]["devices"]),
        plmns=StringPool(header["pools"]["plmns"]),
        apns=StringPool(header["pools"]["apns"]),
    )
    events = ColumnarRadioEvents(pools)
    for name, typecode, nbytes in header["radio"]:
        column = array(typecode)
        column.frombytes(body[offset:offset + nbytes])
        offset += nbytes
        setattr(events, name, column)
    records = ColumnarServiceRecords(pools)
    for name, typecode, nbytes in header["service"]:
        column = array(typecode)
        column.frombytes(body[offset:offset + nbytes])
        offset += nbytes
        setattr(records, name, column)
    quarantine = [
        (str(device_id), str(stage), str(error))
        for device_id, stage, error in header["quarantine"]
    ]
    return events, records, quarantine
