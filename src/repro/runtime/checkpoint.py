"""Atomic, crash-safe persistence for durable pipeline runs.

Everything a durable run writes goes through the write-temp → fsync →
rename discipline in :func:`atomic_write_bytes`: a reader can observe
the old file or the new file, never a torn one.  What survives a kill
at *any* instant is therefore always one of three valid states —

- **manifest** (``MANIFEST.json``): the run's identity.  A version and
  a CRC-checksummed fingerprint of everything that must match for old
  checkpoints to be reusable (dataset shape, mode flags, shard count).
  Rewritten atomically once per attempt with a bumped attempt counter.
- **journal** (``journal.jsonl``): append-only completion log, one
  self-checksummed line per finished ``(day, shard)`` unit, tagged with
  the attempt that produced it.  A torn tail line (the crash case) is
  detected by its CRC and everything from it on is discarded — the unit
  simply re-executes, which is safe because units are pure.
- **units** (``units/day_DDD.shard_SSS.ckpt``): the serialized columnar
  blocks themselves (:mod:`repro.runtime.serialize`), each internally
  CRC-framed.

A unit counts as complete only when *both* its journal line and its
block validate; either one failing integrity checks costs exactly one
unit of recomputation, never a wrong result.

All raw file operations route through :mod:`repro.runtime.fsio` (lint
rule ``FS001``), which consults the ambient filesystem fault injector
and owns the failure hygiene: a failed staging write or publish rename
removes its partial/staged file before the ``OSError`` propagates, so
the store never strands torn ``*.tmp`` files, and a failed journal
append triggers :meth:`CheckpointStore._repair_journal` — the on-disk
journal is rewritten from validated in-memory entries so a retry never
appends onto a torn tail.
"""

from __future__ import annotations

import contextlib
import json
import zlib
from pathlib import Path
from typing import Any, Callable, Dict, IO, List, Optional, Tuple, Union

from repro.runtime import fsio
from repro.runtime.serialize import (
    CheckpointCorruption,
    CheckpointError,
    StaleManifestError,
)

PathLike = Union[str, Path]

MANIFEST_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.jsonl"
UNITS_DIRNAME = "units"
_TMP_SUFFIX = ".tmp"

#: Hook invoked with the destination path just before the atomic rename —
#: the seam :class:`repro.faults.crash.KillSwitch` uses to model a crash
#: *during* checkpoint publication.
BeforeReplace = Optional[Callable[[Path], None]]

#: Kept as the module's name for directory fsync (tests and callers
#: predating the fsio seam import it from here).
_fsync_dir = fsio.fsync_dir


class StorageAbort(CheckpointError):
    """A unit could not be persisted within the retry budget (strict mode).

    Raised by :func:`repro.runtime.run.run_durable_pipeline` after the
    storage retry policy is exhausted on a write/rename/fsync fault.
    The store is left consistent (journal repaired, no torn files), so
    the run is resumable once the underlying condition clears.
    """

    def __init__(self, day: int, shard: int, attempts: int, last_error: Any):
        super().__init__(
            f"unit (day={day}, shard={shard}) could not be persisted after "
            f"{attempts} attempt(s): {last_error}; the store is consistent "
            "and the run can be resumed"
        )
        self.day = day
        self.shard = shard
        self.attempts = attempts
        self.last_error = last_error


def atomic_write_bytes(
    path: PathLike, data: bytes, before_replace: BeforeReplace = None
) -> Path:
    """Write ``data`` to ``path`` via write-temp → fsync → rename.

    A failure at any step (including the rename) removes the staged
    temp file before propagating, so no ``*.tmp`` outlives the call.
    """
    target = Path(path)
    tmp = target.with_name(target.name + _TMP_SUFFIX)
    fsio.write_file_bytes(tmp, data)
    if before_replace is not None:
        before_replace(target)
    fsio.replace_file(tmp, target)
    fsio.fsync_dir(target.parent)
    return target


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> Path:
    """Atomic twin of ``Path.write_text`` for durable artifacts."""
    return atomic_write_bytes(path, text.encode(encoding))


def _payload_crc(payload: Any) -> int:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def load_manifest(path: PathLike) -> Dict[str, Any]:
    """Read and validate a manifest envelope, returning its payload.

    Shared by :class:`CheckpointStore` resume and the scrubber
    (:mod:`repro.runtime.scrub`), which must read a store's identity
    without instantiating the store (no attempt bump, no fingerprint to
    compare against).
    """
    text = fsio.read_file_bytes(path).decode("utf-8")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointCorruption(f"unreadable manifest: {exc}") from exc
    if not isinstance(doc, dict) or "payload" not in doc or "crc32" not in doc:
        raise CheckpointCorruption("manifest missing payload/crc32 envelope")
    payload = doc["payload"]
    if _payload_crc(payload) != doc["crc32"]:
        raise CheckpointCorruption("manifest checksum mismatch")
    if doc.get("version") != MANIFEST_VERSION:
        raise StaleManifestError(
            f"manifest version {doc.get('version')} != supported "
            f"{MANIFEST_VERSION}"
        )
    if not isinstance(payload, dict):
        raise CheckpointCorruption("manifest payload must be an object")
    return payload


def parse_journal_lines(
    lines: List[str],
) -> Tuple[List[Dict[str, int]], int]:
    """Validate journal lines: (valid-prefix entries, torn-line count).

    The journal is append-only, so the first line failing its CRC (or
    failing to parse at all) marks a torn tail: it and everything after
    it are discarded, and the count of discarded lines is returned so
    the discard is observable.
    """
    entries: List[Dict[str, int]] = []
    n_torn = 0
    for index, line in enumerate(lines):
        try:
            doc = json.loads(line)
            crc = doc.pop("crc")
        except (json.JSONDecodeError, KeyError, AttributeError):
            n_torn = len(lines) - index
            break
        if crc != _payload_crc(doc):
            n_torn = len(lines) - index
            break
        entries.append(
            {
                "day": int(doc["day"]),
                "shard": int(doc["shard"]),
                "attempt": int(doc["attempt"]),
            }
        )
    return entries, n_torn


class CheckpointStore:
    """One durable run's on-disk state: manifest + journal + unit blocks.

    ``resume=False`` (the default) demands a directory with no prior
    run; pointing it at one raises :class:`CheckpointError` rather than
    silently clobbering checkpoints.  ``resume=True`` validates the
    manifest (version, fingerprint) against this run, adopts the
    recorded ``n_shards`` — the unit partitioning is fixed for the
    run's lifetime so resume works at any worker count — and bumps the
    attempt counter.  Journal lines carry the attempt that produced
    them, so tests (and operators) can see exactly which units each
    attempt executed.
    """

    def __init__(
        self,
        directory: PathLike,
        fingerprint: Dict[str, Any],
        n_shards: int,
        resume: bool = False,
        before_replace: BeforeReplace = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.directory = Path(directory)
        self.before_replace = before_replace
        self.fingerprint = fingerprint
        self.units_dir = self.directory / UNITS_DIRNAME
        self.units_dir.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.directory / MANIFEST_NAME
        self._journal_path = self.directory / JOURNAL_NAME

        if self._manifest_path.exists():
            if not resume:
                raise CheckpointError(
                    f"{self.directory} already holds a run manifest; "
                    "pass resume=True to continue it"
                )
            payload = self._read_manifest()
            self._validate_manifest(payload)
            self.n_shards = int(payload["n_shards"])
            self.attempt = int(payload["attempt"]) + 1
        else:
            self.n_shards = n_shards
            self.attempt = 0
        #: Stray staging files swept on open — observable so resume
        #: tests (and the scrubber) can assert nothing was stranded.
        self.n_stale_tmp_removed = self._clean_temp_files()
        self._write_manifest()
        self._completed: Dict[Tuple[int, int], int] = {}
        self._entries: List[Dict[str, int]] = []
        #: Journal lines discarded as a torn tail on load (the crash
        #: case): the units they named simply re-execute, but the
        #: discard must be observable so runs can report it as a
        #: ``TORN_CHECKPOINT`` incident instead of recovering silently.
        self.n_torn_journal_lines = 0
        self._load_journal()
        self._journal: IO[str] = fsio.open_append(self._journal_path)

    # -- manifest ------------------------------------------------------------

    def _read_manifest(self) -> Dict[str, Any]:
        return load_manifest(self._manifest_path)

    def _validate_manifest(self, payload: Dict[str, Any]) -> None:
        recorded = payload.get("fingerprint", {})
        if _payload_crc(recorded) != _payload_crc(self.fingerprint):
            differing = sorted(
                key
                for key in set(recorded) | set(self.fingerprint)
                if recorded.get(key) != self.fingerprint.get(key)
            )
            raise StaleManifestError(
                "checkpoint fingerprint does not match this run "
                f"(differing keys: {differing})"
            )

    def _write_manifest(self) -> None:
        payload = {
            "fingerprint": self.fingerprint,
            "n_shards": self.n_shards,
            "attempt": self.attempt,
        }
        doc = {
            "version": MANIFEST_VERSION,
            "crc32": _payload_crc(payload),
            "payload": payload,
        }
        atomic_write_bytes(
            self._manifest_path,
            json.dumps(doc, sort_keys=True, indent=2).encode("utf-8"),
        )

    # -- journal -------------------------------------------------------------

    def _load_journal(self) -> None:
        if not self._journal_path.exists():
            return
        lines = [
            line.strip()
            for line in self._journal_path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        self._entries, self.n_torn_journal_lines = parse_journal_lines(lines)
        for entry in self._entries:
            self._completed[(entry["day"], entry["shard"])] = entry["attempt"]
        if self.n_torn_journal_lines:
            # Physically remove the torn tail before the journal is
            # reopened for append: a torn line has no trailing newline,
            # so appending to it would glue the *next* completion record
            # onto the garbage and lose it too on the following load.
            body = "".join(
                json.dumps(dict(e, crc=_payload_crc(e)), sort_keys=True) + "\n"
                for e in self._entries
            )
            atomic_write_bytes(self._journal_path, body.encode("utf-8"))

    def mark_complete(self, day: int, shard: int) -> None:
        """Append one completed unit to the journal (flushed, not fsynced).

        Losing un-fsynced journal lines in a crash is safe — the units
        merely re-execute; call :meth:`sync` at day boundaries to bound
        that recomputation without paying an fsync per unit.
        """
        entry = {"day": day, "shard": shard, "attempt": self.attempt}
        doc = dict(entry)
        doc["crc"] = _payload_crc(entry)
        try:
            fsio.append_text(
                self._journal, self._journal_path, json.dumps(doc, sort_keys=True) + "\n"
            )
        except OSError:
            # The failed append may have left a torn tail; rewrite the
            # journal from validated in-memory entries so a retried
            # append never glues a good line onto garbage.
            self._repair_journal()
            raise
        self._entries.append(entry)
        self._completed[(day, shard)] = self.attempt

    def _repair_journal(self) -> None:
        """Rewrite the on-disk journal from in-memory entries, reopen it."""
        with contextlib.suppress(OSError):
            self._journal.close()
        try:
            body = "".join(
                json.dumps(dict(e, crc=_payload_crc(e)), sort_keys=True) + "\n"
                for e in self._entries
            )
            atomic_write_bytes(self._journal_path, body.encode("utf-8"))
        finally:
            self._journal = fsio.open_append(self._journal_path)

    def sync(self) -> None:
        """fsync the journal so completions survive power loss."""
        self._journal.flush()
        fsio.fsync_handle(self._journal, self._journal_path)

    def journal_entries(self) -> List[Dict[str, int]]:
        """Every valid journal entry, in append order."""
        return [dict(entry) for entry in self._entries]

    # -- units ---------------------------------------------------------------

    def unit_path(self, day: int, shard: int) -> Path:
        return self.units_dir / f"day_{day:03d}.shard_{shard:03d}.ckpt"

    def is_journaled(self, day: int, shard: int) -> bool:
        return (day, shard) in self._completed

    def save_unit(self, day: int, shard: int, data: bytes) -> Path:
        return atomic_write_bytes(
            self.unit_path(day, shard), data, before_replace=self.before_replace
        )

    def adopt_unit(self, day: int, shard: int, source: PathLike) -> Path:
        """Publish an already-written (fsynced) block file as a unit.

        The spill path writes each block once in the worker (to a
        ``.tmp``-suffixed file inside ``units/``) and the parent merely
        renames it into place — the same publish discipline as
        :func:`atomic_write_bytes` minus the redundant data copy.  The
        caller guarantees ``source`` is durable (written + fsynced);
        crash mid-adopt leaves either the old unit or the new one, and
        the orphaned source is swept by :meth:`_clean_temp_files` on the
        next resume.  If the rename itself fails, the staged source is
        unlinked (see :func:`repro.runtime.fsio.replace_file`) so a
        failed adoption cannot strand staging files.
        """
        target = self.unit_path(day, shard)
        if self.before_replace is not None:
            self.before_replace(target)
        fsio.replace_file(source, target)
        fsio.fsync_dir(target.parent)
        return target

    def load_unit(self, day: int, shard: int) -> bytes:
        path = self.unit_path(day, shard)
        try:
            return fsio.read_file_bytes(path)
        except FileNotFoundError as exc:
            raise CheckpointCorruption(
                f"journaled unit (day={day}, shard={shard}) has no block file"
            ) from exc
        except OSError as exc:
            raise CheckpointCorruption(
                f"journaled unit (day={day}, shard={shard}) unreadable: {exc}"
            ) from exc

    # -- lifecycle -----------------------------------------------------------

    def _clean_temp_files(self) -> int:
        n_removed = 0
        for stray in self.directory.rglob(f"*{_TMP_SUFFIX}"):
            stray.unlink()
            n_removed += 1
        return n_removed

    def close(self) -> None:
        if not self._journal.closed:
            # Best-effort final fsync: the journal lines are already
            # flushed, and close() runs on abort paths where a failing
            # disk must not mask the typed error being raised.
            with contextlib.suppress(OSError):
                self.sync()
            self._journal.close()

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
