"""Atomic, crash-safe persistence for durable pipeline runs.

Everything a durable run writes goes through the write-temp → fsync →
rename discipline in :func:`atomic_write_bytes`: a reader can observe
the old file or the new file, never a torn one.  What survives a kill
at *any* instant is therefore always one of three valid states —

- **manifest** (``MANIFEST.json``): the run's identity.  A version and
  a CRC-checksummed fingerprint of everything that must match for old
  checkpoints to be reusable (dataset shape, mode flags, shard count).
  Rewritten atomically once per attempt with a bumped attempt counter.
- **journal** (``journal.jsonl``): append-only completion log, one
  self-checksummed line per finished ``(day, shard)`` unit, tagged with
  the attempt that produced it.  A torn tail line (the crash case) is
  detected by its CRC and everything from it on is discarded — the unit
  simply re-executes, which is safe because units are pure.
- **units** (``units/day_DDD.shard_SSS.ckpt``): the serialized columnar
  blocks themselves (:mod:`repro.runtime.serialize`), each internally
  CRC-framed.

A unit counts as complete only when *both* its journal line and its
block validate; either one failing integrity checks costs exactly one
unit of recomputation, never a wrong result.
"""

from __future__ import annotations

import contextlib
import json
import os
import zlib
from pathlib import Path
from typing import Any, Callable, Dict, IO, List, Optional, Tuple, Union

from repro.runtime.serialize import (
    CheckpointCorruption,
    CheckpointError,
    StaleManifestError,
)

PathLike = Union[str, Path]

MANIFEST_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.jsonl"
UNITS_DIRNAME = "units"
_TMP_SUFFIX = ".tmp"

#: Hook invoked with the destination path just before the atomic rename —
#: the seam :class:`repro.faults.crash.KillSwitch` uses to model a crash
#: *during* checkpoint publication.
BeforeReplace = Optional[Callable[[Path], None]]


def _fsync_dir(directory: Path) -> None:
    # Directory fsync persists the rename itself; not all filesystems
    # support opening a directory, so failure here is best-effort.
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: PathLike, data: bytes, before_replace: BeforeReplace = None
) -> Path:
    """Write ``data`` to ``path`` via write-temp → fsync → rename."""
    target = Path(path)
    tmp = target.with_name(target.name + _TMP_SUFFIX)
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    if before_replace is not None:
        before_replace(target)
    os.replace(tmp, target)
    _fsync_dir(target.parent)
    return target


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> Path:
    """Atomic twin of ``Path.write_text`` for durable artifacts."""
    return atomic_write_bytes(path, text.encode(encoding))


def _payload_crc(payload: Any) -> int:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


class CheckpointStore:
    """One durable run's on-disk state: manifest + journal + unit blocks.

    ``resume=False`` (the default) demands a directory with no prior
    run; pointing it at one raises :class:`CheckpointError` rather than
    silently clobbering checkpoints.  ``resume=True`` validates the
    manifest (version, fingerprint) against this run, adopts the
    recorded ``n_shards`` — the unit partitioning is fixed for the
    run's lifetime so resume works at any worker count — and bumps the
    attempt counter.  Journal lines carry the attempt that produced
    them, so tests (and operators) can see exactly which units each
    attempt executed.
    """

    def __init__(
        self,
        directory: PathLike,
        fingerprint: Dict[str, Any],
        n_shards: int,
        resume: bool = False,
        before_replace: BeforeReplace = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.directory = Path(directory)
        self.before_replace = before_replace
        self.fingerprint = fingerprint
        self.units_dir = self.directory / UNITS_DIRNAME
        self.units_dir.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.directory / MANIFEST_NAME
        self._journal_path = self.directory / JOURNAL_NAME

        if self._manifest_path.exists():
            if not resume:
                raise CheckpointError(
                    f"{self.directory} already holds a run manifest; "
                    "pass resume=True to continue it"
                )
            payload = self._read_manifest()
            self._validate_manifest(payload)
            self.n_shards = int(payload["n_shards"])
            self.attempt = int(payload["attempt"]) + 1
        else:
            self.n_shards = n_shards
            self.attempt = 0
        self._clean_temp_files()
        self._write_manifest()
        self._completed: Dict[Tuple[int, int], int] = {}
        self._entries: List[Dict[str, int]] = []
        #: Journal lines discarded as a torn tail on load (the crash
        #: case): the units they named simply re-execute, but the
        #: discard must be observable so runs can report it as a
        #: ``TORN_CHECKPOINT`` incident instead of recovering silently.
        self.n_torn_journal_lines = 0
        self._load_journal()
        self._journal: IO[str] = open(  # noqa: SIM115 — held for the run
            self._journal_path, "a", encoding="utf-8"
        )

    # -- manifest ------------------------------------------------------------

    def _read_manifest(self) -> Dict[str, Any]:
        text = self._manifest_path.read_text(encoding="utf-8")
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointCorruption(f"unreadable manifest: {exc}") from exc
        if not isinstance(doc, dict) or "payload" not in doc or "crc32" not in doc:
            raise CheckpointCorruption("manifest missing payload/crc32 envelope")
        payload = doc["payload"]
        if _payload_crc(payload) != doc["crc32"]:
            raise CheckpointCorruption("manifest checksum mismatch")
        if doc.get("version") != MANIFEST_VERSION:
            raise StaleManifestError(
                f"manifest version {doc.get('version')} != supported "
                f"{MANIFEST_VERSION}"
            )
        return payload

    def _validate_manifest(self, payload: Dict[str, Any]) -> None:
        recorded = payload.get("fingerprint", {})
        if _payload_crc(recorded) != _payload_crc(self.fingerprint):
            differing = sorted(
                key
                for key in set(recorded) | set(self.fingerprint)
                if recorded.get(key) != self.fingerprint.get(key)
            )
            raise StaleManifestError(
                "checkpoint fingerprint does not match this run "
                f"(differing keys: {differing})"
            )

    def _write_manifest(self) -> None:
        payload = {
            "fingerprint": self.fingerprint,
            "n_shards": self.n_shards,
            "attempt": self.attempt,
        }
        doc = {
            "version": MANIFEST_VERSION,
            "crc32": _payload_crc(payload),
            "payload": payload,
        }
        atomic_write_bytes(
            self._manifest_path,
            json.dumps(doc, sort_keys=True, indent=2).encode("utf-8"),
        )

    # -- journal -------------------------------------------------------------

    def _load_journal(self) -> None:
        if not self._journal_path.exists():
            return
        lines = [
            line.strip()
            for line in self._journal_path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        for index, line in enumerate(lines):
            try:
                doc = json.loads(line)
                crc = doc.pop("crc")
            except (json.JSONDecodeError, KeyError, AttributeError):
                # Torn tail: discard this line and everything after it.
                self.n_torn_journal_lines = len(lines) - index
                break
            if crc != _payload_crc(doc):
                self.n_torn_journal_lines = len(lines) - index
                break
            entry = {
                "day": int(doc["day"]),
                "shard": int(doc["shard"]),
                "attempt": int(doc["attempt"]),
            }
            self._entries.append(entry)
            self._completed[(entry["day"], entry["shard"])] = entry["attempt"]
        if self.n_torn_journal_lines:
            # Physically remove the torn tail before the journal is
            # reopened for append: a torn line has no trailing newline,
            # so appending to it would glue the *next* completion record
            # onto the garbage and lose it too on the following load.
            body = "".join(
                json.dumps(dict(e, crc=_payload_crc(e)), sort_keys=True) + "\n"
                for e in self._entries
            )
            atomic_write_bytes(self._journal_path, body.encode("utf-8"))

    def mark_complete(self, day: int, shard: int) -> None:
        """Append one completed unit to the journal (flushed, not fsynced).

        Losing un-fsynced journal lines in a crash is safe — the units
        merely re-execute; call :meth:`sync` at day boundaries to bound
        that recomputation without paying an fsync per unit.
        """
        entry = {"day": day, "shard": shard, "attempt": self.attempt}
        doc = dict(entry)
        doc["crc"] = _payload_crc(entry)
        self._journal.write(json.dumps(doc, sort_keys=True) + "\n")
        self._journal.flush()
        self._entries.append(entry)
        self._completed[(day, shard)] = self.attempt

    def sync(self) -> None:
        """fsync the journal so completions survive power loss."""
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def journal_entries(self) -> List[Dict[str, int]]:
        """Every valid journal entry, in append order."""
        return [dict(entry) for entry in self._entries]

    # -- units ---------------------------------------------------------------

    def unit_path(self, day: int, shard: int) -> Path:
        return self.units_dir / f"day_{day:03d}.shard_{shard:03d}.ckpt"

    def is_journaled(self, day: int, shard: int) -> bool:
        return (day, shard) in self._completed

    def save_unit(self, day: int, shard: int, data: bytes) -> Path:
        return atomic_write_bytes(
            self.unit_path(day, shard), data, before_replace=self.before_replace
        )

    def adopt_unit(self, day: int, shard: int, source: PathLike) -> Path:
        """Publish an already-written (fsynced) block file as a unit.

        The spill path writes each block once in the worker (to a
        ``.tmp``-suffixed file inside ``units/``) and the parent merely
        renames it into place — the same publish discipline as
        :func:`atomic_write_bytes` minus the redundant data copy.  The
        caller guarantees ``source`` is durable (written + fsynced);
        crash mid-adopt leaves either the old unit or the new one, and
        the orphaned source is swept by :meth:`_clean_temp_files` on the
        next resume.
        """
        target = self.unit_path(day, shard)
        if self.before_replace is not None:
            self.before_replace(target)
        os.replace(source, target)
        _fsync_dir(target.parent)
        return target

    def load_unit(self, day: int, shard: int) -> bytes:
        path = self.unit_path(day, shard)
        try:
            return path.read_bytes()
        except FileNotFoundError as exc:
            raise CheckpointCorruption(
                f"journaled unit (day={day}, shard={shard}) has no block file"
            ) from exc

    # -- lifecycle -----------------------------------------------------------

    def _clean_temp_files(self) -> None:
        for stray in self.directory.rglob(f"*{_TMP_SUFFIX}"):
            stray.unlink()

    def close(self) -> None:
        if not self._journal.closed:
            self.sync()
            self._journal.close()

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
