"""Durable execution of the day-by-day pipeline: kill → resume → same bytes.

The driver folds the window into the catalog one ``(day, shard)`` unit
at a time.  Each unit is pure — a shard-by-device slice of one day's
records, encoded (and in lenient mode validated) by a worker into a
self-contained block (:mod:`repro.runtime.serialize`) — so a unit can
be re-executed any number of times with the same result.  Completed
units are persisted and journaled by the
:class:`~repro.runtime.checkpoint.CheckpointStore`; the catalog itself
is reconstructed by replaying the blocks through the incremental engine
(:meth:`repro.core.catalog.CatalogBuilder.update`), whose snapshot over
ascending days equals a one-shot :meth:`build`.

The durability contract: killing the run at **any** instant and
resuming with ``resume=True`` yields day records, summaries and
classifications byte-identical to an uninterrupted run — in strict and
lenient modes, at any worker count, on the row or columnar update
plane.  Three properties carry the proof: units are pure; the journal
plus per-block CRCs make "complete" an all-or-nothing predicate; and
the update feed concatenates shards in fixed shard order while every
catalog output is order-normalized per device.

Lenient note: durable lenient mode validates devices against each
*day slice* (the unit boundary) rather than the whole window at once,
so quarantine decisions are day-granular; a device is quarantined from
its first failing day and scrubbed from the final snapshot entirely,
matching the serial policy for any failure that manifests on the day
it is recorded.
"""

from __future__ import annotations

import shutil
import tempfile
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.columnar.store import (
    ColumnPools,
    ColumnarRadioEvents,
    ColumnarServiceRecords,
)
from repro.core.catalog import CatalogBuilder
from repro.core.classifier import ClassifierConfig, DeviceClassifier
from repro.core.roaming import RoamingLabeler
from repro.datasets.containers import MNODataset
from repro.datasets.io import IngestReport
from repro.ecosystem import Ecosystem
from repro.faults.retry import RetryError, RetryPolicy, call_with_retry
from repro.parallel.health import (
    STORAGE_FAULT,
    TORN_CHECKPOINT,
    UNIT_QUARANTINED,
    RunHealth,
    ShardIncident,
    StorageIncident,
)
from repro.parallel.pool import DEFAULT_SHARD_DEADLINE_S, get_context, map_shards
from repro.parallel.sharding import shard_mno_records
from repro.pipeline import (
    MAX_EXEMPLAR_FAILURES,
    DegradationReport,
    PipelineResult,
    StageFailure,
    _lenient_classify_stage,
)
from repro.runtime.checkpoint import (
    BeforeReplace,
    CheckpointStore,
    PathLike,
    StorageAbort,
)
from repro.runtime.serialize import (
    CheckpointCorruption,
    QuarantineEntry,
    pack_day_block,
    unpack_day_block,
)
from repro.runtime.spill import (
    ReplayWindow,
    SpillDescriptor,
    spill_tmp_path,
    write_spill_blob,
)
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent

#: A day's worth of source rows plus (for partition sources) the ingest
#: report that reading them produced.
DaySlice = Tuple[List[RadioEvent], List[ServiceRecord], Optional[IngestReport]]

#: Callable yielding one day's source rows; the seam partition-backed
#: runs plug ``load_day_batch_with_retry`` into.
DaySource = Callable[[int], DaySlice]

#: Unit worker payload: (day, shard index, radio slice, service slice).
UnitPayload = Tuple[int, int, List[RadioEvent], List[ServiceRecord]]

#: Default policy for transient storage faults (staging writes, unit
#: publishes, journal appends/fsyncs).  Delays are drawn, never slept —
#: the same convention as the pool's shard retries.
STORAGE_RETRY_POLICY = RetryPolicy(
    base_delay_s=0.05, multiplier=2.0, max_delay_s=1.0, jitter=0.5, max_attempts=3
)

#: Fold-skip sentinel for a unit whose persistence was exhausted in
#: lenient mode: the unit is absent from this run's catalog (a typed
#: ``unit-quarantined`` incident) and re-executes on the next resume.
_UNIT_QUARANTINED: Tuple = ()


def _day_slices(
    dataset: MNODataset,
) -> Dict[int, Tuple[List[RadioEvent], List[ServiceRecord]]]:
    """Group the dataset's record streams by day, stream order kept."""
    radio: Dict[int, List[RadioEvent]] = defaultdict(list)
    service: Dict[int, List[ServiceRecord]] = defaultdict(list)
    for event in dataset.radio_events:
        radio[int(event.timestamp // 86400.0)].append(event)
    for record in dataset.service_records:
        service[int(record.timestamp // 86400.0)].append(record)
    return {
        day: (radio.get(day, []), service.get(day, []))
        for day in sorted(set(radio) | set(service))
    }


def _validate_day_slice(
    builder: CatalogBuilder,
    radio: List[RadioEvent],
    service: List[ServiceRecord],
) -> Tuple[List[RadioEvent], List[ServiceRecord], List[QuarantineEntry]]:
    """Lenient-unit validation: quarantine devices whose day slice fails.

    Mirrors :func:`repro.pipeline._lenient_catalog_stage` per device
    (catalog stage, then summary stage) over the unit's slice; error
    text uses the same ``TypeName: message`` form so durable and serial
    degradation reports agree.
    """
    by_dev_radio: Dict[str, List[RadioEvent]] = defaultdict(list)
    by_dev_service: Dict[str, List[ServiceRecord]] = defaultdict(list)
    tac_of: Dict[str, int] = {}
    for event in radio:
        by_dev_radio[event.device_id].append(event)
        tac_of.setdefault(event.device_id, event.tac)
    for record in service:
        by_dev_service[record.device_id].append(record)
    quarantine: List[QuarantineEntry] = []
    bad: Set[str] = set()
    for device_id in sorted(set(by_dev_radio) | set(by_dev_service)):
        try:
            records = builder.build_day_records(
                by_dev_radio.get(device_id, []), by_dev_service.get(device_id, [])
            )
        except Exception as exc:
            quarantine.append((device_id, "catalog", f"{type(exc).__name__}: {exc}"))
            bad.add(device_id)
            continue
        try:
            builder.summarize(records, tac_of)
        except Exception as exc:
            quarantine.append((device_id, "summary", f"{type(exc).__name__}: {exc}"))
            bad.add(device_id)
    if bad:
        radio = [event for event in radio if event.device_id not in bad]
        service = [record for record in service if record.device_id not in bad]
    return radio, service, quarantine


def _encode_block(
    builder: CatalogBuilder,
    lenient: bool,
    radio: List[RadioEvent],
    service: List[ServiceRecord],
) -> bytes:
    """Encode one unit slice into its framed block (lenient-validated).

    Deterministic for a given slice: the parent can re-encode a unit
    whose staged spill file was lost to a write fault and publish bytes
    identical to the worker's.
    """
    if not lenient:
        return pack_day_block(radio, service)
    radio, service, quarantine = _validate_day_slice(builder, radio, service)
    return pack_day_block(radio, service, quarantine)


def _encode_unit(payload: UnitPayload) -> bytes:
    """Worker: turn one (day, shard) slice into its checkpoint block."""
    builder, lenient, _ = get_context()
    _, _, radio, service = payload
    return _encode_block(builder, lenient, radio, service)


def _encode_unit_spill(payload: UnitPayload) -> Union[bytes, SpillDescriptor]:
    """Worker: encode one slice and spill it, returning a descriptor.

    The out-of-core twin of :func:`_encode_unit`: the framed block is
    written (and fsynced) to a staging file inside the store's units
    directory instead of crossing the pool seam as a blob; the parent
    publishes it with one rename (:meth:`CheckpointStore.adopt_unit`).

    Staging writes retry transient faults under the storage policy
    (each failed attempt removed its partial file); if the retries are
    exhausted the worker degrades to shipping the blob itself across
    the pool seam — the parent publishes it with ``save_unit`` and
    records the degradation, so a sick spill volume slows the run
    instead of crashing it.
    """
    builder, lenient, spill_dir = get_context()
    day, shard, radio, service = payload
    blob = _encode_block(builder, lenient, radio, service)
    staged = spill_tmp_path(spill_dir, day, shard)
    try:
        call_with_retry(
            lambda: write_spill_blob(staged, blob),
            STORAGE_RETRY_POLICY,
            np.random.default_rng(0),
            retry_on=(OSError,),
        )
    except RetryError:
        return blob
    return SpillDescriptor(day=day, shard=shard, path=str(staged), nbytes=len(blob))


def _persist_unit(
    store: CheckpointStore,
    day: int,
    shard: int,
    result: Union[bytes, SpillDescriptor],
    builder: CatalogBuilder,
    payload: UnitPayload,
    lenient: bool,
    policy: RetryPolicy,
    rng: np.random.Generator,
    health: RunHealth,
) -> bool:
    """Publish one unit (block file + journal line) under the retry policy.

    Every failed attempt is a typed ``storage-fault`` incident.  A
    staged spill file consumed by a failed adoption (the rename unlinks
    its source on failure) is replaced by re-encoding the slice in the
    parent — byte-identical, units are pure.  On exhaustion: lenient
    quarantines the unit (``False``; it re-executes on resume), strict
    raises :class:`StorageAbort` with the store still consistent.
    """
    unit_path = str(store.unit_path(day, shard))
    state: Dict[str, Optional[bytes]] = {
        "blob": result if isinstance(result, bytes) else None
    }
    staged: List[str] = [result.path] if isinstance(result, SpillDescriptor) else []

    def publish_once() -> None:
        if staged:
            source = staged.pop()
            store.adopt_unit(day, shard, source)
        else:
            blob = state["blob"]
            if blob is None:
                _, _, radio, service = payload
                blob = state["blob"] = _encode_block(builder, lenient, radio, service)
            store.save_unit(day, shard, blob)
        store.mark_complete(day, shard)

    def on_retry(attempt: int, delay: float, exc: Exception) -> None:
        health.record_storage(
            StorageIncident(
                kind=STORAGE_FAULT,
                op="write",
                path=unit_path,
                detail=f"day {day} shard {shard}: {exc}",
                attempt=attempt,
            )
        )

    try:
        call_with_retry(
            publish_once, policy, rng, retry_on=(OSError,), on_retry=on_retry
        )
        return True
    except RetryError as exc:
        if lenient:
            health.record_storage(
                StorageIncident(
                    kind=UNIT_QUARANTINED,
                    op="write",
                    path=unit_path,
                    detail=(
                        f"day {day} shard {shard} quarantined after "
                        f"{exc.attempts} attempt(s): {exc.last_error}"
                    ),
                    attempt=exc.attempts - 1,
                )
            )
            return False
        raise StorageAbort(day, shard, exc.attempts, exc.last_error) from exc


def _sync_store(
    store: CheckpointStore,
    day: int,
    lenient: bool,
    policy: RetryPolicy,
    rng: np.random.Generator,
    health: RunHealth,
) -> None:
    """Day-boundary journal fsync under the retry policy.

    On exhaustion lenient continues (completions are flushed, merely
    not power-loss durable yet — the incident trail says so); strict
    aborts typed with the store consistent.
    """

    def on_retry(attempt: int, delay: float, exc: Exception) -> None:
        health.record_storage(
            StorageIncident(
                kind=STORAGE_FAULT,
                op="fsync",
                path=str(store.directory),
                detail=f"journal sync after day {day}: {exc}",
                attempt=attempt,
            )
        )

    try:
        call_with_retry(
            store.sync, policy, rng, retry_on=(OSError,), on_retry=on_retry
        )
    except RetryError as exc:
        if not lenient:
            raise StorageAbort(day, -1, exc.attempts, exc.last_error) from exc


def run_durable_pipeline(
    dataset: MNODataset,
    ecosystem: Ecosystem,
    checkpoint_dir: Optional[PathLike],
    resume: bool = False,
    classifier_config: Optional[ClassifierConfig] = None,
    compute_mobility: bool = True,
    lenient: bool = False,
    n_workers: int = 1,
    n_shards: Optional[int] = None,
    columnar: bool = False,
    out_of_core: bool = False,
    max_resident_shards: Optional[int] = None,
    max_resident_bytes: Optional[int] = None,
    shard_deadline_s: Optional[float] = DEFAULT_SHARD_DEADLINE_S,
    retry_policy: Optional[RetryPolicy] = None,
    day_source: Optional[DaySource] = None,
    days: Optional[Sequence[int]] = None,
    before_replace: BeforeReplace = None,
    on_unit: Optional[Callable[[int, int], None]] = None,
    on_day: Optional[Callable[[int], None]] = None,
) -> PipelineResult:
    """Run the pipeline under checkpoint/resume durability.

    ``checkpoint_dir=None`` runs the identical unit-by-unit computation
    with persistence disabled — the measured baseline for the
    ``checkpoint_overhead`` bench.  ``resume=True`` continues a prior
    run in the directory (validating its manifest) instead of demanding
    a clean one; completed units are loaded, CRC-validated and *not*
    re-executed.  ``day_source``/``days`` switch the input from the
    in-memory dataset to an external per-day provider (e.g. JSONL
    partitions via
    :func:`repro.mno.streaming.load_day_batch_with_retry`); any ingest
    reports it yields are merged into ``result.degradation.ingest``.

    ``out_of_core=True`` spills every unit block to disk in the worker
    (a descriptor, not the blob, crosses the pool seam) and folds days
    by attaching blocks back through an mmap-backed
    :class:`~repro.runtime.spill.ReplayWindow` bounded by
    ``max_resident_shards`` / ``max_resident_bytes`` — peak RSS then
    scales with the shard window, not the population.  With
    ``checkpoint_dir`` set, the checkpoint store doubles as the spill
    store (durable runs get out-of-core for free, and the on-disk
    format is identical, so a checkpoint written in either mode resumes
    in the other); without one, an ephemeral spill directory is created
    and removed with the run.  The result is byte-identical to the
    in-memory path in every mode combination.

    ``on_unit(day, shard)`` and ``on_day(day)`` are crash-injection
    seams (see :mod:`repro.faults.crash`), called just before a unit is
    published and after a day is folded, respectively.
    """
    if n_shards is None:
        n_shards = max(n_workers, 1)
    labeler = RoamingLabeler(ecosystem.operators, dataset.observer)
    builder = CatalogBuilder(
        dataset.tac_db,
        dataset.sector_catalog,
        labeler,
        compute_mobility=compute_mobility,
    )
    classifier = DeviceClassifier(classifier_config)
    health = RunHealth()

    slices: Dict[int, Tuple[List[RadioEvent], List[ServiceRecord]]] = {}
    if day_source is None:
        slices = _day_slices(dataset)
        day_list = sorted(slices)
    else:
        if days is None:
            raise ValueError("day_source requires an explicit days sequence")
        day_list = sorted(days)

    fingerprint = {
        "source": "dataset" if day_source is None else "partitions",
        "n_radio": len(dataset.radio_events),
        "n_service": len(dataset.service_records),
        "observer": str(dataset.observer.plmn),
        "window_days": dataset.window_days,
        "days": list(day_list),
        "lenient": bool(lenient),
        "columnar": bool(columnar),
        "compute_mobility": bool(compute_mobility),
    }
    store: Optional[CheckpointStore] = None
    ephemeral_spill: Optional[str] = None
    if checkpoint_dir is None and out_of_core:
        # Out-of-core needs a spill store; without a checkpoint
        # directory it lives (and dies) with this run.
        ephemeral_spill = tempfile.mkdtemp(prefix="repro_spill_")
        checkpoint_dir = ephemeral_spill
        resume = False
    if checkpoint_dir is not None:
        try:
            store = CheckpointStore(
                checkpoint_dir,
                fingerprint,
                n_shards=n_shards,
                resume=resume,
                before_replace=before_replace,
            )
        except OSError as exc:
            # A disk fault while opening the store (manifest write,
            # temp sweep) aborts typed, never as a bare OSError.
            raise StorageAbort(-1, -1, 1, exc) from exc
        # The unit partitioning is fixed at run creation; resuming at a
        # different worker count reuses the recorded shard count so
        # completed units stay addressable.
        n_shards = store.n_shards
        if store.n_torn_journal_lines:
            # A torn journal tail is a checkpoint-integrity event just
            # like a torn unit block: the discarded completions simply
            # re-execute, but never silently.
            health.record(
                ShardIncident(
                    0,
                    TORN_CHECKPOINT,
                    store.attempt,
                    f"journal torn tail: {store.n_torn_journal_lines} "
                    "line(s) discarded",
                )
            )

    window: Optional[ReplayWindow] = None
    if out_of_core:
        assert store is not None
        window = ReplayWindow(
            max_resident_shards=(
                max_resident_shards if max_resident_shards is not None else 4
            ),
            max_resident_bytes=max_resident_bytes,
        )

    quarantined: Dict[str, QuarantineEntry] = {}
    observed: Set[str] = set()
    ingest: Optional[IngestReport] = None
    storage_policy = retry_policy if retry_policy is not None else STORAGE_RETRY_POLICY
    storage_rng = np.random.default_rng(0)
    try:
        for day in day_list:
            #: shard -> decoded block, or None when the block stays on
            #: disk and the fold attaches it through the window.
            blocks: Dict[int, Optional[Tuple]] = {}
            pending: List[int] = []
            for shard in range(n_shards):
                if store is not None and store.is_journaled(day, shard):
                    try:
                        if window is not None:
                            # CRC-validate in place; the block stays
                            # mapped, never copied into the heap.
                            window.attach(store.unit_path(day, shard), day, shard)
                            blocks[shard] = None
                        else:
                            blocks[shard] = unpack_day_block(
                                store.load_unit(day, shard)
                            )
                        continue
                    except CheckpointCorruption as exc:
                        health.record(
                            ShardIncident(
                                shard, TORN_CHECKPOINT, 0, f"day {day}: {exc}"
                            )
                        )
                        if isinstance(exc.__cause__, OSError):
                            health.record_storage(
                                StorageIncident(
                                    kind=STORAGE_FAULT,
                                    op="read",
                                    path=str(store.unit_path(day, shard)),
                                    detail=f"day {day} shard {shard}: {exc}",
                                )
                            )
                pending.append(shard)
            if pending:
                if day_source is not None:
                    radio_day, service_day, day_report = day_source(day)
                    if day_report is not None:
                        ingest = (
                            day_report if ingest is None else ingest.merge(day_report)
                        )
                else:
                    radio_day, service_day = slices.get(day, ([], []))
                shard_slices = shard_mno_records(radio_day, service_day, n_shards)
                payloads: List[UnitPayload] = [
                    (day, shard, shard_slices[shard][0], shard_slices[shard][1])
                    for shard in pending
                ]
                del radio_day, service_day, shard_slices
                spill_dir = None if store is None else store.units_dir
                results: Sequence[Union[bytes, SpillDescriptor]] = map_shards(
                    _encode_unit_spill if window is not None else _encode_unit,
                    payloads,
                    n_workers,
                    context=(builder, lenient, spill_dir),
                    deadline_s=shard_deadline_s,
                    retry_policy=retry_policy,
                    health=health,
                )
                for unit_payload, result in zip(payloads, results):
                    _, shard, _, _ = unit_payload
                    if on_unit is not None:
                        on_unit(day, shard)
                    if store is None:
                        assert isinstance(result, bytes)
                        blocks[shard] = unpack_day_block(result)
                        continue
                    if window is not None and isinstance(result, bytes):
                        # The worker's spill staging exhausted its
                        # retries and shipped the blob instead; the
                        # parent publishes it atomically below.
                        health.record_storage(
                            StorageIncident(
                                kind=STORAGE_FAULT,
                                op="write",
                                path=str(store.unit_path(day, shard)),
                                detail=(
                                    f"day {day} shard {shard}: worker spill "
                                    "staging failed; block shipped to parent"
                                ),
                            )
                        )
                    published = _persist_unit(
                        store,
                        day,
                        shard,
                        result,
                        builder,
                        unit_payload,
                        lenient,
                        storage_policy,
                        storage_rng,
                        health,
                    )
                    if not published:
                        blocks[shard] = _UNIT_QUARANTINED
                    elif window is not None:
                        blocks[shard] = None
                    else:
                        assert isinstance(result, bytes)
                        blocks[shard] = unpack_day_block(result)
            if store is not None:
                _sync_store(store, day, lenient, storage_policy, storage_rng, health)

            # Fold the day's shards straight onto a shared-pool columnar
            # accumulator (shard order, in-shard order preserved) — the
            # builder accepts columnar input, so no row round-trip.
            day_pools = ColumnPools()
            events_day = ColumnarRadioEvents(day_pools)
            records_day = ColumnarServiceRecords(day_pools)
            for shard in range(n_shards):
                block = blocks[shard]
                if block is _UNIT_QUARANTINED:
                    continue
                if block is None:
                    assert window is not None and store is not None
                    try:
                        events_c, records_c, unit_quarantine = window.attach(
                            store.unit_path(day, shard), day, shard
                        )
                    except CheckpointCorruption as exc:
                        # The published block fails validation at fold
                        # time (bit rot, read EIO).  The unit is
                        # journaled, so the next resume detects the
                        # damage and re-executes it — lenient runs
                        # quarantine it from this fold, strict runs
                        # abort typed.
                        health.record_storage(
                            StorageIncident(
                                kind=STORAGE_FAULT,
                                op="read",
                                path=str(store.unit_path(day, shard)),
                                detail=f"day {day} shard {shard}: {exc}",
                            )
                        )
                        if not lenient:
                            raise
                        health.record_storage(
                            StorageIncident(
                                kind=UNIT_QUARANTINED,
                                op="read",
                                path=str(store.unit_path(day, shard)),
                                detail=(
                                    f"day {day} shard {shard} quarantined "
                                    f"from the fold: {exc}"
                                ),
                            )
                        )
                        continue
                else:
                    events_c, records_c, unit_quarantine = block
                # Quarantined devices' rows were scrubbed from the block,
                # so they count as observed only via their entries.
                observed.update(events_c.pools.devices.strings)
                for entry in unit_quarantine:
                    observed.add(entry[0])
                    quarantined.setdefault(entry[0], entry)
                radio_keep: Optional[List[int]] = None
                service_keep: Optional[List[int]] = None
                if quarantined:
                    bad_ids = {
                        index
                        for index, name in enumerate(events_c.pools.devices.strings)
                        if name in quarantined
                    }
                    if bad_ids:
                        radio_keep = [
                            index
                            for index, dev in enumerate(events_c.device_ids)
                            if dev not in bad_ids
                        ]
                        service_keep = [
                            index
                            for index, dev in enumerate(records_c.device_ids)
                            if dev not in bad_ids
                        ]
                events_day.extend_from(events_c, radio_keep)
                records_day.extend_from(records_c, service_keep)
            builder.update(day, events_day, records_day)
            if on_day is not None:
                on_day(day)
    finally:
        if window is not None:
            window.close()
        if store is not None:
            store.close()
        if ephemeral_spill is not None:
            shutil.rmtree(ephemeral_spill, ignore_errors=True)

    day_records, summaries = builder.snapshot()
    if quarantined:
        day_records = [r for r in day_records if r.device_id not in quarantined]
        summaries = {
            device_id: summary
            for device_id, summary in summaries.items()
            if device_id not in quarantined
        }

    degradation: Optional[DegradationReport] = None
    if lenient:
        degradation = DegradationReport(n_devices_total=len(observed))
        for device_id in sorted(quarantined):
            _, stage, error = quarantined[device_id]
            degradation.n_failed_by_stage[stage] += 1
            if len(degradation.exemplars) < MAX_EXEMPLAR_FAILURES:
                degradation.exemplars.append(
                    StageFailure(device_id=device_id, stage=stage, error=error)
                )
        degradation.ingest = ingest
        classifications = _lenient_classify_stage(summaries, classifier, degradation)
        degradation.n_devices_ok = len(classifications)
    else:
        classifications = classifier.classify(summaries)

    return PipelineResult(
        dataset=dataset,
        day_records=day_records,
        summaries=summaries,
        classifications=classifications,
        labeler=labeler,
        degradation=degradation,
        health=health,
    )
