"""Fault-aware storage I/O: the one seam every durable byte crosses.

All raw file operations in the durable runtime and the service layer —
staging writes, journal appends, fsyncs, the atomic publish rename,
unit reads — route through this module (lint rule ``FS001`` bans the
bare calls elsewhere in ``runtime``/``service``).  Centralizing them
buys two things:

* **Fault injection.**  Every helper consults the ambient
  :class:`repro.faults.fsfault.FsFaultInjector` (when one is armed)
  before touching the filesystem, so a seeded
  :class:`~repro.faults.fsfault.FsFaultPlan` perturbs ENOSPC/EIO/fsync/
  short-write/bit-rot/rename behavior uniformly across every consumer.
* **Failure hygiene.**  The cleanup contracts storage hardening relies
  on live here once, not per call site: a failed staging write unlinks
  its partial file before the ``OSError`` propagates (no torn ``*.tmp``
  survives a write fault), and a failed publish rename unlinks the
  staged source so a failed adoption can never strand staging files.

With no injector armed each helper is the raw operation plus one
``None`` check — the ``checkpoint_overhead`` bench gate holds with this
path enabled.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import IO, Union

from repro.faults.fsfault import (
    BIT_ROT,
    SHORT_WRITE,
    FsFault,
    _fault_error,
    active,
)

PathLike = Union[str, Path]


def write_file_bytes(path: PathLike, data: bytes, fsync: bool = True) -> int:
    """Write ``data`` to ``path`` (create/truncate), flushed and fsynced.

    On *any* failure — injected or real, including an fsync refusal,
    whose file is of unknown durability and must not be trusted — the
    partial file is unlinked before the ``OSError`` propagates, so a
    failed staging write never leaves a torn file behind.
    """
    target = Path(path)
    injector = active()
    fault: "FsFault | None" = None
    payload = data
    if injector is not None:
        fault = injector.write_fault(target)
        if fault is not None and fault.kind not in (SHORT_WRITE, BIT_ROT):
            raise _fault_error(fault.kind, target)
        if fault is not None and fault.kind == BIT_ROT:
            payload = injector.rot(target, data, fault)
    try:
        with open(target, "wb") as handle:
            if fault is not None and fault.kind == SHORT_WRITE:
                handle.write(payload[: len(payload) // 2])
                handle.flush()
                raise _fault_error(fault.kind, target)
            handle.write(payload)
            handle.flush()
            if fsync:
                if injector is not None:
                    injector.fsync_fault(target)
                os.fsync(handle.fileno())
    except OSError:
        with contextlib.suppress(OSError):
            target.unlink()
        raise
    return len(data)


def read_file_bytes(path: PathLike) -> bytes:
    """Read ``path`` whole, honoring any armed read fault."""
    target = Path(path)
    injector = active()
    if injector is not None:
        injector.read_fault(target)
    return target.read_bytes()


def check_read(path: PathLike) -> None:
    """Raise any armed read fault for ``path`` without reading it.

    The probe for readers that bypass ``read`` syscalls entirely — the
    mmap attach path consults this before mapping, so injected read-EIO
    reaches zero-copy consumers too.
    """
    injector = active()
    if injector is not None:
        injector.read_fault(Path(path))


def replace_file(source: PathLike, target: PathLike) -> None:
    """Atomic publish rename; the staged source never outlives a failure.

    On rename failure (injected or real) the staged ``source`` is
    unlinked before the ``OSError`` propagates: a failed adoption must
    not strand staging files for the resume-time sweep to miscount, and
    the caller's retry re-stages from data it still holds.
    """
    try:
        injector = active()
        if injector is not None:
            injector.rename_fault(Path(target))
        os.replace(source, target)
    except OSError:
        with contextlib.suppress(OSError):
            Path(source).unlink()
        raise


def open_append(path: PathLike) -> IO[str]:
    """Open the journal-style append handle this module's appends use."""
    return open(path, "a", encoding="utf-8")  # noqa: SIM115 — held by caller


def append_text(handle: IO[str], path: PathLike, text: str) -> None:
    """Append ``text`` to an open journal handle, flushed.

    Injected write faults apply (``ENOSPC``/``EIO`` before any byte,
    short-write persisting a prefix); bit rot does not — journal lines
    are self-CRC'd UTF-8 and rot there is modeled at load time instead.
    A failed append can leave a torn tail in the file; the owning store
    repairs its journal from in-memory state before retrying.
    """
    target = Path(path)
    injector = active()
    if injector is not None:
        fault = injector.write_fault(target)
        if fault is not None:
            if fault.kind == SHORT_WRITE:
                handle.write(text[: len(text) // 2])
                handle.flush()
            if fault.kind != BIT_ROT:
                raise _fault_error(fault.kind, target)
    handle.write(text)
    handle.flush()


def fsync_handle(handle: IO[str], path: PathLike) -> None:
    """fsync an open handle, honoring any armed fsync fault."""
    injector = active()
    if injector is not None:
        injector.fsync_fault(Path(path))
    os.fsync(handle.fileno())


def fsync_dir(directory: PathLike) -> None:
    """Best-effort directory fsync (persists renames within it).

    Not all filesystems support opening a directory, so failure here is
    swallowed; injected fsync faults *do* apply, so chaos runs exercise
    the swallow path deliberately.
    """
    injector = active()
    try:
        if injector is not None:
            injector.fsync_fault(Path(directory))
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)
