"""One-shot reproduction report: the paper's evaluation as Markdown.

:func:`build_report` runs every figure analysis over a platform dataset
and an MNO pipeline result and renders a single self-contained Markdown
document — tables for each figure's headline statistics plus ASCII
plots for the distribution figures.  The CLI exposes it as
``python -m repro report --out REPORT.md``.
"""

from __future__ import annotations

from typing import List

from repro.analysis.activity import fig7_active_days
from repro.analysis.ascii_plots import render_bars, render_ecdf, render_heatmap
from repro.analysis.mobility import fig8_gyration
from repro.analysis.network_usage import fig9_network_usage
from repro.analysis.platform import (
    fig2_device_distribution,
    fig3_dynamics,
    platform_stats,
)
from repro.analysis.population import (
    fig5_home_countries,
    fig6_class_vs_label,
    population_shares,
)
from repro.analysis.smart_meters import fig11_smip_activity
from repro.analysis.traffic import RoamingGroup, fig10_traffic_volumes
from repro.analysis.verticals import fig12_verticals
from repro.cellular.countries import CountryRegistry
from repro.core.classifier import ClassLabel
from repro.core.validation import validate_classification
from repro.datasets.containers import M2MDataset
from repro.ecosystem import Ecosystem
from repro.pipeline import PipelineResult


class _Doc:
    """Tiny markdown accumulator."""

    def __init__(self) -> None:
        self._lines: List[str] = []

    def heading(self, level: int, text: str) -> None:
        self._lines.extend(["", "#" * level + " " + text, ""])

    def para(self, text: str) -> None:
        self._lines.extend([text, ""])

    def code(self, text: str) -> None:
        self._lines.extend(["```", text, "```", ""])

    def table(self, headers: List[str], rows: List[List[str]]) -> None:
        self._lines.append("| " + " | ".join(headers) + " |")
        self._lines.append("|" + "---|" * len(headers))
        for row in rows:
            self._lines.append("| " + " | ".join(str(c) for c in row) + " |")
        self._lines.append("")

    def render(self) -> str:
        return "\n".join(self._lines).strip() + "\n"


def _platform_sections(doc: _Doc, dataset: M2MDataset, countries: CountryRegistry) -> None:
    doc.heading(2, "The M2M platform (paper §3)")
    stats = platform_stats(dataset, countries)
    doc.para(
        f"{stats.n_devices} IoT SIMs produced {stats.n_transactions} signaling "
        f"transactions over {dataset.window_days} days."
    )

    fig2 = fig2_device_distribution(dataset, countries)
    doc.heading(3, "Fig. 2 — where each HMNO's things operate")
    doc.table(
        ["HMNO", "device share", "top visited countries"],
        [
            [iso, f"{share:.1%}",
             ", ".join(f"{c} {v:.0%}" for c, v in fig2.top_visited(iso, 3))]
            for iso, share in sorted(fig2.hmno_shares.items(), key=lambda kv: -kv[1])
        ],
    )

    fig3 = fig3_dynamics(dataset)
    doc.heading(3, "Fig. 3 — device-level dynamics")
    doc.table(
        ["statistic", "measured"],
        [
            ["mean signaling records/device", f"{fig3.records_all.mean:.0f}"],
            ["roaming/native median ratio", f"{fig3.roaming_to_native_median_ratio:.1f}x"],
            ["single-VMNO roamers", f"{fig3.vmno_counts.fraction_at_most(1):.0%}"],
            ["max VMNOs attempted", f"{fig3.vmno_counts.max:.0f}"],
            ["devices with only failures", f"{stats.failed_only_fraction:.0%}"],
        ],
    )
    doc.code(
        render_ecdf(
            {"roaming": fig3.records_roaming, "native": fig3.records_native},
            log_x=True,
            title="signaling records per device (ECDF, log x)",
        )
    )


def _mno_sections(
    doc: _Doc, result: PipelineResult, countries: CountryRegistry
) -> None:
    doc.heading(2, "The visited MNO (paper §4-6)")
    shares = population_shares(result)
    doc.heading(3, "Population composition (§4.2-4.3)")
    doc.table(
        ["class", "share", "paper"],
        [
            ["smart", f"{shares.class_shares[ClassLabel.SMART]:.1%}", "62%"],
            ["feat", f"{shares.class_shares[ClassLabel.FEAT]:.1%}", "8%"],
            ["m2m", f"{shares.class_shares[ClassLabel.M2M]:.1%}", "26%"],
            ["m2m-maybe", f"{shares.class_shares[ClassLabel.M2M_MAYBE]:.1%}", "4%"],
        ],
    )
    report = validate_classification(
        result.classifications, result.dataset.ground_truth
    )
    doc.para(
        f"Classifier validation: accuracy {report.accuracy:.1%} on decided "
        f"devices, abstention {report.abstention_rate:.1%}."
    )

    fig5 = fig5_home_countries(result, countries)
    doc.heading(3, "Fig. 5 — home countries of inbound roamers")
    doc.code(render_bars(dict(fig5.top_countries(10))))

    fig6 = fig6_class_vs_label(result)
    doc.heading(3, "Fig. 6 — class × roaming label")
    doc.code(
        render_heatmap(
            {cls.value: row for cls, row in fig6.by_class.items()},
            title="row-normalized (per class)",
        )
    )
    doc.para(
        f"Inbound roamers that are M2M: "
        f"{fig6.share_of_label('I:H', ClassLabel.M2M):.1%} (paper 71.1%); "
        f"M2M that are inbound: "
        f"{fig6.share_of_class(ClassLabel.M2M, 'I:H'):.1%} (paper 74.7%)."
    )

    fig7 = fig7_active_days(result)
    doc.heading(3, "Fig. 7 — active days")
    doc.para(
        f"Inbound medians: m2m {fig7.inbound[ClassLabel.M2M].median:.0f} days "
        f"vs smartphones {fig7.inbound[ClassLabel.SMART].median:.0f} days "
        f"(ratio {fig7.median_ratio_inbound():.1f}x; paper 4.5x)."
    )

    fig8 = fig8_gyration(result)
    doc.heading(3, "Fig. 8 — radius of gyration")
    doc.para(
        f"Inbound M2M above 1 km: {fig8.m2m_inbound_fraction_above(1.0):.0%} "
        f"(paper ~20%)."
    )

    fig9 = fig9_network_usage(result)
    doc.heading(3, "Fig. 9 — RAT dependence")
    doc.table(
        ["statistic", "measured", "paper"],
        [
            ["m2m 2G-only (connectivity)",
             f"{fig9.share('connectivity', ClassLabel.M2M, '2G-only'):.1%}", "77.4%"],
            ["m2m no data",
             f"{fig9.share('data', ClassLabel.M2M, 'none'):.1%}", "24.5%"],
            ["m2m no voice",
             f"{fig9.share('voice', ClassLabel.M2M, 'none'):.1%}", "27.5%"],
            ["feat no data",
             f"{fig9.share('data', ClassLabel.FEAT, 'none'):.1%}", "56.8%"],
        ],
    )

    fig10 = fig10_traffic_volumes(result)
    doc.heading(3, "Fig. 10 — traffic volumes")
    doc.para(
        "Signaling/day medians: smartphone-native "
        f"{fig10.median('signaling_per_day', ClassLabel.SMART, RoamingGroup.NATIVE):.1f}, "
        "m2m-inbound "
        f"{fig10.median('signaling_per_day', ClassLabel.M2M, RoamingGroup.INBOUND):.1f}, "
        "feature-native "
        f"{fig10.median('signaling_per_day', ClassLabel.FEAT, RoamingGroup.NATIVE):.1f}."
    )

    fig11 = fig11_smip_activity(result)
    doc.heading(3, "Fig. 11 — SMIP smart meters (§7)")
    doc.table(
        ["statistic", "measured", "paper"],
        [
            ["native active ~whole period",
             f"{fig11.native.full_period_fraction:.0%}", "73%"],
            ["roaming active <=5 days",
             f"{fig11.roaming.active_days.fraction_at_most(5):.0%}", "~50%"],
            ["roaming/native signaling", f"{fig11.signaling_ratio:.1f}x", "~10x"],
            ["roaming meters 2G-only",
             f"{fig11.roaming.rat_pattern_shares.get('2G-only', 0.0):.0%}", "100%"],
        ],
    )

    fig12 = fig12_verticals(result)
    doc.heading(3, "Fig. 12 — connected cars vs smart meters (§7.2)")
    doc.para(
        f"Cars: gyration {fig12.cars.gyration_km.mean:.1f} km, signaling "
        f"{fig12.cars.signaling_per_day.mean:.1f}/day.  Meters: gyration "
        f"{fig12.meters.gyration_km.mean:.3f} km, signaling "
        f"{fig12.meters.signaling_per_day.mean:.1f}/day."
    )


def build_report(
    m2m_dataset: M2MDataset,
    pipeline_result: PipelineResult,
    ecosystem: Ecosystem,
    title: str = "Where Things Roam — reproduction report",
) -> str:
    """Render the full evaluation-section report as Markdown."""
    doc = _Doc()
    doc.heading(1, title)
    doc.para(
        "Synthetic reproduction of Lutu et al., IMC 2020.  All statistics "
        "computed from simulator output; see EXPERIMENTS.md for acceptance "
        "windows and deviations."
    )
    _platform_sections(doc, m2m_dataset, ecosystem.countries)
    _mno_sections(doc, pipeline_result, ecosystem.countries)
    return doc.render()
