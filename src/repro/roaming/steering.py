"""Steering-of-roaming policies: how a roamer picks (and re-picks) a VMNO.

The distributions in Fig. 3 (number of VMNOs used; inter-VMNO switch
counts) are the observable consequence of steering.  The paper sees a
mix: 65% of roamers stay on a single VMNO, ~25% alternate between two,
and a few percent switch hundreds of times.  We model that mix as a
population of devices each driven by one of three policies:

* :class:`StickySteering` — prefer the current VMNO, switch only when a
  failure streak forces it (well-behaved stationary devices).
* :class:`FailureDrivenSteering` — switch on any failure, round-robin
  over candidates (reliability-first devices such as payment terminals).
* :class:`RandomSteering` — re-select uniformly at every opportunity
  (high-mobility devices such as connected cars crossing borders, and
  the pathological "3,000 switches" tail).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cellular.operators import Operator


@dataclass
class SteeringState:
    """Per-device steering memory carried between attach opportunities."""

    current: Optional[Operator] = None
    consecutive_failures: int = 0
    switches: int = 0

    def record_outcome(self, success: bool) -> None:
        if success:
            self.consecutive_failures = 0
        else:
            self.consecutive_failures += 1


class SteeringPolicy(abc.ABC):
    """Strategy interface: choose the VMNO for the next attach attempt."""

    @abc.abstractmethod
    def select(
        self,
        candidates: Sequence[Operator],
        state: SteeringState,
        rng: np.random.Generator,
    ) -> Operator:
        """Pick a VMNO from ``candidates`` (never empty).

        Implementations must update ``state.current`` and
        ``state.switches`` consistently.
        """

    @staticmethod
    def _commit(state: SteeringState, choice: Operator) -> Operator:
        if state.current is not None and choice.plmn != state.current.plmn:
            state.switches += 1
            state.consecutive_failures = 0
        state.current = choice
        return choice


class StickySteering(SteeringPolicy):
    """Stay on the current VMNO until ``failure_threshold`` consecutive
    failures, then move to the next candidate."""

    def __init__(self, failure_threshold: int = 3):
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        self.failure_threshold = failure_threshold

    def select(
        self,
        candidates: Sequence[Operator],
        state: SteeringState,
        rng: np.random.Generator,
    ) -> Operator:
        if not candidates:
            raise ValueError("no candidate VMNOs")
        current_available = state.current is not None and any(
            c.plmn == state.current.plmn for c in candidates
        )
        if current_available and state.consecutive_failures < self.failure_threshold:
            assert state.current is not None
            return self._commit(state, state.current)
        # Forced off the current network: pick the best alternative
        # (deterministically the first non-current candidate).
        for candidate in candidates:
            if state.current is None or candidate.plmn != state.current.plmn:
                return self._commit(state, candidate)
        return self._commit(state, candidates[0])


class FailureDrivenSteering(SteeringPolicy):
    """Switch to the next candidate after every failed procedure."""

    def select(
        self,
        candidates: Sequence[Operator],
        state: SteeringState,
        rng: np.random.Generator,
    ) -> Operator:
        if not candidates:
            raise ValueError("no candidate VMNOs")
        if state.current is None:
            return self._commit(state, candidates[0])
        if state.consecutive_failures == 0 and any(
            c.plmn == state.current.plmn for c in candidates
        ):
            return self._commit(state, state.current)
        ordered = sorted(candidates, key=lambda c: str(c.plmn))
        current_index = next(
            (i for i, c in enumerate(ordered) if c.plmn == state.current.plmn), -1
        )
        choice = ordered[(current_index + 1) % len(ordered)]
        return self._commit(state, choice)


class RandomSteering(SteeringPolicy):
    """Re-select uniformly at random at every opportunity.

    ``stickiness`` in (0, 1] is the probability of keeping the current
    VMNO anyway; 0 means a fresh draw every time (maximum churn).
    """

    def __init__(self, stickiness: float = 0.0):
        if not 0.0 <= stickiness <= 1.0:
            raise ValueError("stickiness must be in [0, 1]")
        self.stickiness = stickiness

    def select(
        self,
        candidates: Sequence[Operator],
        state: SteeringState,
        rng: np.random.Generator,
    ) -> Operator:
        if not candidates:
            raise ValueError("no candidate VMNOs")
        if (
            state.current is not None
            and self.stickiness > 0.0
            and any(c.plmn == state.current.plmn for c in candidates)
            and rng.random() < self.stickiness
        ):
            return self._commit(state, state.current)
        choice = candidates[int(rng.integers(len(candidates)))]
        return self._commit(state, choice)
