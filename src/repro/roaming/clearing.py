"""Data/financial clearing between roaming partners (§2.1, §9).

"The roaming partners must each record the activity of roaming clients
in a given VMNO.  Then, by exchanging and comparing these records, the
VMNO can claim revenue from the partner HMNO."  §9 lists "data and
financial clearing" among the stresses M2M roaming puts on the
interconnection ecosystem.

:class:`ClearingHouse` implements that exchange: both sides submit
usage statements per (home, visited) pair; the house matches them,
flags discrepancies beyond tolerance, and produces a settlement.  The
M2M angle the paper implies: millions of tiny M2M records create
clearing volume wildly out of proportion to the money they move.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Tuple

from repro.roaming.billing import TAPRecord
from repro.signaling.cdr import ServiceType


@dataclass(frozen=True)
class UsageStatement:
    """One side's aggregate claim for a (home, visited, service) lane."""

    home_plmn: str
    visited_plmn: str
    service: ServiceType
    units: float
    charge_eur: float
    n_records: int

    def __post_init__(self) -> None:
        if self.units < 0 or self.charge_eur < 0 or self.n_records < 0:
            raise ValueError("statement quantities must be non-negative")


def statements_from_tap(tap: Iterable[TAPRecord]) -> List[UsageStatement]:
    """Aggregate per-record TAP lines into lane statements."""
    acc: Dict[Tuple[str, str, ServiceType], List[TAPRecord]] = defaultdict(list)
    for record in tap:
        acc[(record.home_plmn, record.visited_plmn, record.service)].append(record)
    return [
        UsageStatement(
            home_plmn=home,
            visited_plmn=visited,
            service=service,
            units=sum(r.units for r in records),
            charge_eur=sum(r.charge_eur for r in records),
            n_records=len(records),
        )
        for (home, visited, service), records in acc.items()
    ]


class DiscrepancyKind(str, Enum):
    MISSING_AT_HOME = "missing_at_home"       # VMNO claims, HMNO has nothing
    MISSING_AT_VISITED = "missing_at_visited" # HMNO recorded, VMNO never claimed
    AMOUNT_MISMATCH = "amount_mismatch"


@dataclass(frozen=True)
class Discrepancy:
    kind: DiscrepancyKind
    home_plmn: str
    visited_plmn: str
    service: ServiceType
    visited_charge_eur: float
    home_charge_eur: float

    @property
    def delta_eur(self) -> float:
        return self.visited_charge_eur - self.home_charge_eur


@dataclass
class Settlement:
    """The outcome of one clearing cycle."""

    agreed_eur: float
    disputed_eur: float
    discrepancies: List[Discrepancy]
    n_lanes: int
    n_records_cleared: int

    @property
    def dispute_rate(self) -> float:
        total = self.agreed_eur + self.disputed_eur
        return self.disputed_eur / total if total else 0.0

    def format(self) -> str:
        return (
            f"lanes: {self.n_lanes}, records cleared: {self.n_records_cleared}\n"
            f"agreed: {self.agreed_eur:.2f} EUR, disputed: {self.disputed_eur:.2f} EUR "
            f"(dispute rate {self.dispute_rate:.1%}), "
            f"{len(self.discrepancies)} discrepancies"
        )


class ClearingHouse:
    """Matches visited-side claims against home-side records.

    ``tolerance`` is the relative charge difference accepted as rounding
    (real TAP processes tolerate small deltas); anything larger becomes
    a disputed lane.
    """

    def __init__(self, tolerance: float = 0.01):
        if not 0.0 <= tolerance < 1.0:
            raise ValueError("tolerance must be in [0, 1)")
        self.tolerance = tolerance

    @staticmethod
    def _lane_key(statement: UsageStatement) -> Tuple[str, str, ServiceType]:
        return (statement.home_plmn, statement.visited_plmn, statement.service)

    def reconcile(
        self,
        visited_side: Iterable[UsageStatement],
        home_side: Iterable[UsageStatement],
    ) -> Settlement:
        """One clearing cycle over both parties' statements."""
        visited_by_lane = {self._lane_key(s): s for s in visited_side}
        home_by_lane = {self._lane_key(s): s for s in home_side}

        agreed = 0.0
        disputed = 0.0
        n_records = 0
        discrepancies: List[Discrepancy] = []

        for lane, visited in visited_by_lane.items():
            home = home_by_lane.get(lane)
            n_records += visited.n_records
            if home is None:
                disputed += visited.charge_eur
                discrepancies.append(
                    Discrepancy(
                        kind=DiscrepancyKind.MISSING_AT_HOME,
                        home_plmn=lane[0],
                        visited_plmn=lane[1],
                        service=lane[2],
                        visited_charge_eur=visited.charge_eur,
                        home_charge_eur=0.0,
                    )
                )
                continue
            reference = max(visited.charge_eur, home.charge_eur, 1e-12)
            if abs(visited.charge_eur - home.charge_eur) / reference <= self.tolerance:
                agreed += visited.charge_eur
            else:
                disputed += abs(visited.charge_eur - home.charge_eur)
                agreed += min(visited.charge_eur, home.charge_eur)
                discrepancies.append(
                    Discrepancy(
                        kind=DiscrepancyKind.AMOUNT_MISMATCH,
                        home_plmn=lane[0],
                        visited_plmn=lane[1],
                        service=lane[2],
                        visited_charge_eur=visited.charge_eur,
                        home_charge_eur=home.charge_eur,
                    )
                )

        for lane, home in home_by_lane.items():
            if lane not in visited_by_lane:
                discrepancies.append(
                    Discrepancy(
                        kind=DiscrepancyKind.MISSING_AT_VISITED,
                        home_plmn=lane[0],
                        visited_plmn=lane[1],
                        service=lane[2],
                        visited_charge_eur=0.0,
                        home_charge_eur=home.charge_eur,
                    )
                )

        return Settlement(
            agreed_eur=agreed,
            disputed_eur=disputed,
            discrepancies=discrepancies,
            n_lanes=len(set(visited_by_lane) | set(home_by_lane)),
            n_records_cleared=n_records,
        )


def clearing_load_per_euro(statements: Iterable[UsageStatement]) -> Dict[str, float]:
    """Records-per-euro by home operator: the M2M clearing-overhead
    metric (many records, little money)."""
    records: Dict[str, int] = defaultdict(int)
    money: Dict[str, float] = defaultdict(float)
    for statement in statements:
        records[statement.home_plmn] += statement.n_records
        money[statement.home_plmn] += statement.charge_eur
    return {
        home: (records[home] / money[home] if money[home] > 0 else float("inf"))
        for home in records
    }
