"""Roaming substrate: agreements, the IPX hub, configurations, steering.

Section 2 of the paper describes the machinery that makes "SIMs for
things" work: bilateral roaming agreements, roaming hubs (IPX networks
with Points of Presence) that let one HMNO reach hundreds of partners,
the three traffic-routing configurations (home-routed, local breakout,
IPX hub breakout), and the wholesale billing records partners exchange
to settle roaming revenue.  This subpackage implements each of those.
"""

from repro.roaming.agreements import AgreementRegistry, RoamingAgreement
from repro.roaming.configs import RoamingConfig
from repro.roaming.hub import IPXHub, PointOfPresence
from repro.roaming.steering import (
    FailureDrivenSteering,
    RandomSteering,
    SteeringPolicy,
    StickySteering,
)
from repro.roaming.billing import TAPRecord, WholesaleRater

__all__ = [
    "AgreementRegistry",
    "FailureDrivenSteering",
    "IPXHub",
    "PointOfPresence",
    "RandomSteering",
    "RoamingAgreement",
    "RoamingConfig",
    "SteeringPolicy",
    "StickySteering",
    "TAPRecord",
    "WholesaleRater",
]
