"""Wholesale roaming billing: TAP-style records and revenue rating.

Section 2.1: "MNOs generate roaming revenue by charging their roaming
partners as a function of the data/voice/SMS the partner's users (inbound
roamers) generate on the visited network.  The roaming partners must each
record the activity of roaming clients … by exchanging and comparing these
records, the VMNO can claim revenue from the partner HMNO."

Section 6's punchline is financial: M2M inbound roamers occupy radio
resources but "do not generate traffic that would allow MNOs to accrue
revenue".  :class:`WholesaleRater` turns service records into wholesale
charges so the benches can quantify the revenue-per-device gap between
device classes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.signaling.cdr import ServiceRecord, ServiceType


@dataclass(frozen=True)
class TAPRecord:
    """One Transferred Account Procedure charge line.

    The VMNO raises one of these per rated inbound-roamer service record
    and presents it to the HMNO for settlement.
    """

    device_id: str
    home_plmn: str
    visited_plmn: str
    service: ServiceType
    units: float
    charge_eur: float

    def __post_init__(self) -> None:
        if self.units < 0:
            raise ValueError("negative units")
        if self.charge_eur < 0:
            raise ValueError("negative charge")


@dataclass(frozen=True)
class WholesaleTariff:
    """Per-unit wholesale rates (EUR): data per MB, voice per minute.

    Defaults approximate post-2019 EU wholesale caps.
    """

    data_eur_per_mb: float = 0.004
    voice_eur_per_min: float = 0.032

    def rate(self, record: ServiceRecord) -> Tuple[float, float]:
        """Return (units, charge) for one service record."""
        if record.service is ServiceType.DATA:
            units = record.bytes_total / 1_000_000.0
            return units, units * self.data_eur_per_mb
        units = record.duration_s / 60.0
        return units, units * self.voice_eur_per_min


class WholesaleRater:
    """Rates inbound-roamer usage into TAP records and aggregates revenue."""

    def __init__(self, visited_plmn: str, tariff: WholesaleTariff = WholesaleTariff()):
        self.visited_plmn = visited_plmn
        self.tariff = tariff

    def rate_records(self, records: Iterable[ServiceRecord]) -> List[TAPRecord]:
        """Rate every inbound-roamer record (SIM PLMN != visited PLMN).

        Native and MVNO traffic is retail, not wholesale, and is skipped.
        """
        tap: List[TAPRecord] = []
        for record in records:
            if record.sim_plmn == self.visited_plmn:
                continue
            if record.visited_plmn != self.visited_plmn:
                continue  # not on our network; nothing to claim
            units, charge = self.tariff.rate(record)
            tap.append(
                TAPRecord(
                    device_id=record.device_id,
                    home_plmn=record.sim_plmn,
                    visited_plmn=self.visited_plmn,
                    service=record.service,
                    units=units,
                    charge_eur=charge,
                )
            )
        return tap

    @staticmethod
    def revenue_by_home_plmn(tap: Iterable[TAPRecord]) -> Dict[str, float]:
        """Total claimable revenue per partner HMNO."""
        totals: Dict[str, float] = defaultdict(float)
        for record in tap:
            totals[record.home_plmn] += record.charge_eur
        return dict(totals)

    @staticmethod
    def revenue_per_device(tap: Iterable[TAPRecord]) -> Dict[str, float]:
        """Total claimable revenue per device."""
        totals: Dict[str, float] = defaultdict(float)
        for record in tap:
            totals[record.device_id] += record.charge_eur
        return dict(totals)
