"""Roaming traffic-routing configurations: HR, LBO and IHBO.

Figure 1 of the paper shows the three ways a roamer's user-plane traffic
can reach the Internet:

* **Home-routed (HR)** — traffic tunnels all the way back to a PGW in the
  home network.  The European default; incurs a round trip to the home
  country on every packet.
* **Local breakout (LBO)** — traffic exits through a PGW in the visited
  network.
* **IPX hub breakout (IHBO)** — traffic exits at the roaming hub's PoP,
  somewhere between the two.

The paper notes the M2M platform mixes configurations to keep
performance acceptable for far-away destinations (e.g. Spain→Australia).
:func:`user_plane_path_km` quantifies the latency-relevant detour each
configuration implies, which the steering ablation bench uses.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.cellular.geo import GeoPoint, haversine_km


class RoamingConfig(str, Enum):
    """How a roaming session's user plane is routed."""

    HOME_ROUTED = "HR"
    LOCAL_BREAKOUT = "LBO"
    IPX_HUB_BREAKOUT = "IHBO"


def user_plane_path_km(
    config: RoamingConfig,
    device_location: GeoPoint,
    home_gateway: GeoPoint,
    hub_pop: Optional[GeoPoint] = None,
) -> float:
    """Extra user-plane distance (km) a packet travels before egress.

    For HR it is the full detour to the home PGW; for IHBO the leg to the
    nearest hub PoP; for LBO zero (egress in the visited country).  This
    is the geometric proxy the paper's performance-penalty remark about
    HR roaming (§3.2, citing [12]) rests on.
    """
    if config is RoamingConfig.LOCAL_BREAKOUT:
        return 0.0
    if config is RoamingConfig.HOME_ROUTED:
        return haversine_km(device_location, home_gateway)
    if config is RoamingConfig.IPX_HUB_BREAKOUT:
        if hub_pop is None:
            raise ValueError("IHBO requires a hub PoP location")
        return haversine_km(device_location, hub_pop)
    raise ValueError(f"unknown roaming config {config}")


def pick_config_for_distance(
    device_location: GeoPoint,
    home_gateway: GeoPoint,
    hub_pop: Optional[GeoPoint],
    hr_threshold_km: float = 5000.0,
) -> RoamingConfig:
    """The platform's pragmatic policy: default HR, but break out at the
    hub when the home detour would be intercontinental.

    Mirrors the paper's observation that the M2M platform "uses different
    roaming configurations in order to optimize the performance of IoT
    devices roaming in very far destinations".
    """
    home_detour = haversine_km(device_location, home_gateway)
    if home_detour <= hr_threshold_km or hub_pop is None:
        return RoamingConfig.HOME_ROUTED
    return RoamingConfig.IPX_HUB_BREAKOUT
