"""Bilateral roaming agreements between operator pairs.

A roaming agreement is the commercial precondition for any roaming
session (§2.1): without one between HMNO and VMNO, attachment attempts
fail with ``RoamingNotAllowed`` — one of the failure outcomes the M2M
dataset records.  Agreements can be restricted to specific RATs, which is
how "4G roaming not yet enabled with this partner" failures arise even
between partners with working 2G/3G roaming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.cellular.identifiers import PLMN
from repro.cellular.rats import RAT


@dataclass(frozen=True)
class RoamingAgreement:
    """A (directed) roaming agreement: home's subscribers may use visited.

    Real agreements are usually reciprocal; callers wanting symmetry add
    both directions.  ``rats`` limits the generations covered.
    ``via_hub`` records whether the relationship was established through
    a roaming hub rather than bilaterally — hub-mediated agreements are
    what give M2M platforms their breadth.
    """

    home: PLMN
    visited: PLMN
    rats: FrozenSet[RAT] = frozenset({RAT.GSM, RAT.UMTS, RAT.LTE})
    via_hub: bool = False

    def __post_init__(self) -> None:
        if self.home == self.visited:
            raise ValueError("an operator does not roam onto itself")
        if not self.rats:
            raise ValueError("agreement must cover at least one RAT")

    def covers(self, rat: RAT) -> bool:
        return rat in self.rats


class AgreementRegistry:
    """All roaming agreements in force, indexed by (home, visited)."""

    def __init__(self, agreements: Optional[List[RoamingAgreement]] = None):
        self._by_pair: Dict[Tuple[PLMN, PLMN], RoamingAgreement] = {}
        for agreement in agreements or []:
            self.add(agreement)

    def add(self, agreement: RoamingAgreement) -> None:
        key = (agreement.home, agreement.visited)
        if key in self._by_pair:
            raise ValueError(f"duplicate agreement {key[0]} -> {key[1]}")
        self._by_pair[key] = agreement

    def add_reciprocal(
        self,
        a: PLMN,
        b: PLMN,
        rats: FrozenSet[RAT] = frozenset({RAT.GSM, RAT.UMTS, RAT.LTE}),
        via_hub: bool = False,
    ) -> None:
        """Register both directions of a symmetric agreement."""
        self.add(RoamingAgreement(home=a, visited=b, rats=rats, via_hub=via_hub))
        self.add(RoamingAgreement(home=b, visited=a, rats=rats, via_hub=via_hub))

    def __len__(self) -> int:
        return len(self._by_pair)

    def __iter__(self) -> Iterator[RoamingAgreement]:
        return iter(self._by_pair.values())

    def get(self, home: PLMN, visited: PLMN) -> Optional[RoamingAgreement]:
        return self._by_pair.get((home, visited))

    def allows(self, home: PLMN, visited: PLMN, rat: RAT) -> bool:
        """Can ``home``'s subscribers use ``visited``'s network on ``rat``?"""
        agreement = self.get(home, visited)
        return agreement is not None and agreement.covers(rat)

    def partners_of(self, home: PLMN) -> Set[PLMN]:
        """Networks ``home``'s subscribers can roam onto."""
        return {v for (h, v) in self._by_pair if h == home}

    def hub_mediated_count(self) -> int:
        return sum(1 for a in self if a.via_hub)
