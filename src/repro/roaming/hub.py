"""The IPX roaming hub: Points of Presence and reachability.

The carrier behind the paper's M2M platform "operates a large
infrastructure world-wide, interconnecting directly with MNOs from 19
countries through 40 Points of Presence … It further interconnects with
other carriers to extend its footprint to the rest of the globe" (§3).

:class:`IPXHub` models exactly that: a set of PoPs with direct operator
interconnections, plus peer-hub links that extend reach indirectly.  The
hub is what converts a handful of HMNO relationships into world-wide
coverage for the platform's IoT SIMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.cellular.geo import GeoPoint, haversine_km
from repro.cellular.identifiers import PLMN
from repro.cellular.operators import Operator
from repro.cellular.rats import RAT
from repro.roaming.agreements import AgreementRegistry


@dataclass(frozen=True)
class PointOfPresence:
    """A hub PoP: a physical interconnection site in some country."""

    pop_id: int
    country_iso: str
    location: GeoPoint

    def __post_init__(self) -> None:
        if self.pop_id < 0:
            raise ValueError("PoP id must be non-negative")


class IPXHub:
    """A roaming-hub / IPX provider.

    ``direct_members`` are operators terminated at the hub's own PoPs;
    ``peered_members`` are operators reachable through interconnected
    peer hubs (one level of indirection is all the paper's description
    needs).  :meth:`provision_platform_agreements` materializes the
    hub-mediated roaming agreements that let a platform HMNO reach every
    member — the "externalized roaming interworking" of §2.1.
    """

    def __init__(self, name: str, pops: Iterable[PointOfPresence]):
        self.name = name
        self.pops: List[PointOfPresence] = list(pops)
        if not self.pops:
            raise ValueError("a hub needs at least one PoP")
        ids = {p.pop_id for p in self.pops}
        if len(ids) != len(self.pops):
            raise ValueError("duplicate PoP ids")
        self._direct: Dict[PLMN, Operator] = {}
        self._peered: Dict[PLMN, Operator] = {}

    # -- membership -------------------------------------------------------

    def add_direct_member(self, operator: Operator) -> None:
        """Terminate an operator at the hub's PoPs (direct interconnect)."""
        if operator.plmn in self._direct or operator.plmn in self._peered:
            raise ValueError(f"{operator.name} already a member")
        self._direct[operator.plmn] = operator

    def add_peered_member(self, operator: Operator) -> None:
        """Make an operator reachable via a peer hub."""
        if operator.plmn in self._direct or operator.plmn in self._peered:
            raise ValueError(f"{operator.name} already a member")
        self._peered[operator.plmn] = operator

    @property
    def direct_members(self) -> List[Operator]:
        return list(self._direct.values())

    @property
    def peered_members(self) -> List[Operator]:
        return list(self._peered.values())

    @property
    def members(self) -> List[Operator]:
        return self.direct_members + self.peered_members

    def reaches(self, plmn: PLMN) -> bool:
        return plmn in self._direct or plmn in self._peered

    def direct_countries(self) -> Set[str]:
        """ISO codes of countries with directly-interconnected members."""
        return {op.country.iso for op in self._direct.values()}

    def footprint_countries(self) -> Set[str]:
        """All countries reachable directly or via peers."""
        return {op.country.iso for op in self.members}

    # -- geometry ----------------------------------------------------------

    def nearest_pop(self, point: GeoPoint) -> PointOfPresence:
        return min(self.pops, key=lambda p: haversine_km(p.location, point))

    def pops_in(self, country_iso: str) -> List[PointOfPresence]:
        return [p for p in self.pops if p.country_iso == country_iso]

    # -- agreement provisioning ---------------------------------------------

    def provision_platform_agreements(
        self,
        registry: AgreementRegistry,
        home: Operator,
        rats: FrozenSet[RAT] = frozenset({RAT.GSM, RAT.UMTS, RAT.LTE}),
        exclude: Optional[Set[PLMN]] = None,
    ) -> int:
        """Create hub-mediated agreements from ``home`` to every member.

        Returns the number of agreements added.  Existing agreements are
        left untouched (bilateral deals coexist with the hub, §2.1).
        Agreements only cover the RATs both ends support.
        """
        exclude = exclude or set()
        added = 0
        for member in self.members:
            if member.plmn == home.plmn or member.plmn in exclude:
                continue
            if registry.get(home.plmn, member.plmn) is not None:
                continue
            covered = frozenset(rats & member.rats & home.rats)
            if not covered:
                continue
            registry.add_reciprocal(home.plmn, member.plmn, rats=covered, via_hub=True)
            added += 2
        return added
