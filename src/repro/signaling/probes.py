"""Passive monitoring probes at core-network elements.

Figure 4 of the paper marks the network elements the MNO's commercial
measurement solution taps: the MME (4G mobility management), the MSC
(2G/3G circuit-switched core) and the SGSN (2G/3G packet-switched core).
A probe sees only the interfaces its element terminates; modelling that
visibility explicitly lets tests assert that, e.g., an MSC probe never
reports an S1 event — the same partial-visibility property real
deployments have.

The M2M-platform dataset is collected by probes "close to the
infrastructure of the HMNOs" watching MAP/Diameter transactions; the
:data:`HMNO_SIGNALING` location models that vantage point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, Iterable, Iterator, List

from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import SignalingTransaction


class ProbeLocation(str, Enum):
    """The core-network element a probe is attached to."""

    MME = "mme"
    MSC = "msc"
    SGSN = "sgsn"
    HMNO_SIGNALING = "hmno_signaling"


_VISIBILITY = {
    ProbeLocation.MME: frozenset({RadioInterface.S1}),
    ProbeLocation.MSC: frozenset({RadioInterface.A, RadioInterface.IU_CS}),
    ProbeLocation.SGSN: frozenset({RadioInterface.GB, RadioInterface.IU_PS}),
    ProbeLocation.HMNO_SIGNALING: frozenset(),
}


@dataclass
class MonitoringProbe:
    """A passive tap at one core element, buffering what it can see."""

    location: ProbeLocation
    _radio_events: List[RadioEvent] = field(default_factory=list)
    _transactions: List[SignalingTransaction] = field(default_factory=list)

    @property
    def visible_interfaces(self) -> FrozenSet[RadioInterface]:
        return _VISIBILITY[self.location]

    def sees(self, interface: RadioInterface) -> bool:
        return interface in self.visible_interfaces

    def observe_radio(self, event: RadioEvent) -> bool:
        """Offer a radio event to the probe; returns True if captured."""
        if not self.sees(event.interface):
            return False
        self._radio_events.append(event)
        return True

    def observe_transaction(self, txn: SignalingTransaction) -> bool:
        """Offer a MAP/Diameter transaction; only the HMNO-side probe
        captures these."""
        if self.location is not ProbeLocation.HMNO_SIGNALING:
            return False
        self._transactions.append(txn)
        return True

    @property
    def radio_events(self) -> List[RadioEvent]:
        return list(self._radio_events)

    @property
    def transactions(self) -> List[SignalingTransaction]:
        return list(self._transactions)

    def drain_radio(self) -> List[RadioEvent]:
        """Return and clear buffered radio events."""
        events, self._radio_events = self._radio_events, []
        return events

    def drain_transactions(self) -> List[SignalingTransaction]:
        """Return and clear buffered transactions."""
        txns, self._transactions = self._transactions, []
        return txns


class ProbeArray:
    """The full measurement deployment of Fig. 4: MME + MSC + SGSN taps.

    Feed it every radio event the network generates; it fans each event
    to the probe that can see it and exposes the merged capture (which is
    simply *all* events, since the three probes' visibility partitions
    the interface set — a property the tests assert).
    """

    def __init__(self) -> None:
        self.probes = [
            MonitoringProbe(ProbeLocation.MME),
            MonitoringProbe(ProbeLocation.MSC),
            MonitoringProbe(ProbeLocation.SGSN),
        ]

    def observe(self, events: Iterable[RadioEvent]) -> int:
        """Offer events to every probe; return the number captured."""
        captured = 0
        for event in events:
            for probe in self.probes:
                if probe.observe_radio(event):
                    captured += 1
                    break
        return captured

    def merged_capture(self) -> List[RadioEvent]:
        """All captured events across probes, in timestamp order."""
        merged: List[RadioEvent] = []
        for probe in self.probes:
            merged.extend(probe.radio_events)
        merged.sort(key=lambda e: e.timestamp)
        return merged

    def __iter__(self) -> Iterator[MonitoringProbe]:
        return iter(self.probes)
