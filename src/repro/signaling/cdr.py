"""Call Detail Records and eXtended Detail Records (service usage).

"We use CDRs and xDRs to provide aggregate service usage for calls and
data.  Each record reports the anonymized user ID, MCC and MNC codes for
both device SIM and visited country, timestamp, duration, and bytes
consumed.  Data records also report APN strings" (§4.1).

Unlike radio logs, CDRs/xDRs also cover *outbound* roamers — they are the
records roaming partners exchange to settle revenue, which is why the
roaming-label pipeline can see devices that never touch the home radio
network.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple


class ServiceType(str, Enum):
    """What the record bills for."""

    VOICE = "voice"
    DATA = "data"


#: Canonical, index-stable service-type order for columnar encodings
#: (:mod:`repro.columnar` stores the service plane as an index into this
#: tuple).  Append-only.
SERVICE_TYPES: Tuple[ServiceType, ...] = tuple(ServiceType)


@dataclass(frozen=True)
class ServiceRecord:
    """One CDR (voice) or xDR (data) row.

    ``apn`` is present only on data records — the paper leans on this
    asymmetry: ~21% of devices have no APN at all because they only use
    voice services, defeating APN-only classification.
    """

    device_id: str
    timestamp: float
    sim_plmn: str
    visited_plmn: str
    service: ServiceType
    duration_s: float = 0.0
    bytes_total: int = 0
    apn: Optional[str] = None

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"negative timestamp {self.timestamp}")
        for label, plmn in (("sim", self.sim_plmn), ("visited", self.visited_plmn)):
            if not plmn.isdigit() or len(plmn) not in (5, 6):
                raise ValueError(f"{label} PLMN must be 5-6 digits, got {plmn!r}")
        if self.duration_s < 0:
            raise ValueError(f"negative duration {self.duration_s}")
        if self.bytes_total < 0:
            raise ValueError(f"negative byte count {self.bytes_total}")
        if self.service is ServiceType.VOICE and self.apn is not None:
            raise ValueError("voice CDRs carry no APN")
        if self.service is ServiceType.DATA and self.duration_s:
            # Data usage is accounted in bytes; duration belongs to voice.
            raise ValueError("data xDRs carry bytes, not call duration")

    @property
    def day(self) -> int:
        return int(self.timestamp // 86400)

    @property
    def is_voice(self) -> bool:
        return self.service is ServiceType.VOICE

    @property
    def is_data(self) -> bool:
        return self.service is ServiceType.DATA


def voice_cdr(
    device_id: str,
    timestamp: float,
    sim_plmn: str,
    visited_plmn: str,
    duration_s: float,
) -> ServiceRecord:
    """Convenience constructor for a voice CDR."""
    return ServiceRecord(
        device_id=device_id,
        timestamp=timestamp,
        sim_plmn=sim_plmn,
        visited_plmn=visited_plmn,
        service=ServiceType.VOICE,
        duration_s=duration_s,
    )


def data_xdr(
    device_id: str,
    timestamp: float,
    sim_plmn: str,
    visited_plmn: str,
    bytes_total: int,
    apn: Optional[str],
) -> ServiceRecord:
    """Convenience constructor for a data xDR."""
    return ServiceRecord(
        device_id=device_id,
        timestamp=timestamp,
        sim_plmn=sim_plmn,
        visited_plmn=visited_plmn,
        service=ServiceType.DATA,
        bytes_total=bytes_total,
        apn=apn,
    )
