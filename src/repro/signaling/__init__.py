"""Signaling substrate: control-plane procedures, records and probes.

Models the control-plane vocabulary both of the paper's datasets are
expressed in: mobility-management procedures (attach, detach, location
updates, authentication), their result codes, the radio-interface event
records collected at the MME/MSC/SGSN, and the CDR/xDR service-usage
records used for billing and roaming revenue settlement.
"""

from repro.signaling.procedures import (
    MessageType,
    ResultCode,
    SignalingTransaction,
)
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.cdr import ServiceRecord, ServiceType
from repro.signaling.hlr import (
    CancelOutcome,
    HLRValidationReport,
    HomeLocationRegister,
    validate_stream,
)
from repro.signaling.probes import MonitoringProbe, ProbeLocation

__all__ = [
    "CancelOutcome",
    "HLRValidationReport",
    "HomeLocationRegister",
    "MessageType",
    "validate_stream",
    "MonitoringProbe",
    "ProbeLocation",
    "RadioEvent",
    "RadioInterface",
    "ResultCode",
    "ServiceRecord",
    "ServiceType",
    "SignalingTransaction",
]
