"""Radio-interface events collected inside the visited MNO.

The MNO dataset processes "logs reporting on activities on IuCS, IuPS, A,
and Gb radio interfaces … Each event carries the anonymized user ID, SIM
MCC and MNC, TAC, the sector ID handling the communication, timestamp,
event type, event result code" (§4.1).  :class:`RadioEvent` is that
record; :class:`RadioInterface` maps each interface to the RAT and plane
(circuit-switched voice vs packet-switched data) it carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from repro.cellular.rats import RAT
from repro.signaling.procedures import MessageType, ResultCode


class RadioInterface(str, Enum):
    """The monitored interface an event was captured on.

    =========  ====  =======================
    interface  RAT   plane
    =========  ====  =======================
    A          2G    circuit-switched (voice)
    Gb         2G    packet-switched (data)
    IuCS       3G    circuit-switched (voice)
    IuPS       3G    packet-switched (data)
    S1         4G    packet-switched (data)
    =========  ====  =======================
    """

    A = "A"
    GB = "Gb"
    IU_CS = "IuCS"
    IU_PS = "IuPS"
    S1 = "S1"

    @property
    def rat(self) -> RAT:
        return {
            RadioInterface.A: RAT.GSM,
            RadioInterface.GB: RAT.GSM,
            RadioInterface.IU_CS: RAT.UMTS,
            RadioInterface.IU_PS: RAT.UMTS,
            RadioInterface.S1: RAT.LTE,
        }[self]

    @property
    def is_voice(self) -> bool:
        """Circuit-switched interfaces carry voice (and SMS-like traffic;
        the paper uses "voice services in a broad sense")."""
        return self in (RadioInterface.A, RadioInterface.IU_CS)

    @property
    def is_data(self) -> bool:
        return not self.is_voice

    @classmethod
    def for_plane(cls, rat: RAT, voice: bool) -> "RadioInterface":
        """The interface carrying ``rat`` traffic on the given plane.

        4G has no circuit-switched plane in this model; requesting a 4G
        voice interface raises (M2M devices and feature phones on LTE are
        rare enough in the paper's data that we can exclude CSFB/VoLTE).
        """
        try:
            return _PLANE_TABLE[(rat, voice)]
        except KeyError:
            raise ValueError(f"no {'voice' if voice else 'data'} interface for {rat.value}") from None


_PLANE_TABLE = {
    (RAT.GSM, True): RadioInterface.A,
    (RAT.GSM, False): RadioInterface.GB,
    (RAT.UMTS, True): RadioInterface.IU_CS,
    (RAT.UMTS, False): RadioInterface.IU_PS,
    (RAT.LTE, False): RadioInterface.S1,
}


@dataclass(frozen=True)
class RadioEvent:
    """One radio-interface log record from the MNO's passive probes."""

    device_id: str
    timestamp: float
    sim_plmn: str
    tac: int
    sector_id: int
    interface: RadioInterface
    event_type: MessageType
    result: ResultCode

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"negative timestamp {self.timestamp}")
        if not self.sim_plmn.isdigit() or len(self.sim_plmn) not in (5, 6):
            raise ValueError(f"SIM PLMN must be 5-6 digits, got {self.sim_plmn!r}")
        if not 0 <= self.tac < 10**8:
            raise ValueError(f"TAC must be 8 digits, got {self.tac}")

    @property
    def rat(self) -> RAT:
        return self.interface.rat

    @property
    def day(self) -> int:
        return int(self.timestamp // 86400)

    @property
    def is_success(self) -> bool:
        return self.result.is_success


#: Canonical, index-stable interface order: :mod:`repro.columnar` encodes
#: each event's interface as an index into this tuple, so shard workers
#: and persisted column blocks agree on the mapping.  Append-only — any
#: reordering changes the meaning of every encoded block.
RADIO_INTERFACES: Tuple[RadioInterface, ...] = tuple(RadioInterface)
