"""Home Location Register: the subscriber registry behind §3's procedures.

The three MAP procedures the platform probes capture are one protocol,
not three independent event types: a device attaching to a VMNO runs
**Authentication** then **Update Location**, and when the HLR accepts a
registration at a *new* VMNO it sends **Cancel Location** to the old
one.  This module implements that registry:

* :class:`HomeLocationRegister` — tracks each subscriber's current
  registration and tells the caller when a Cancel Location toward the
  previous VMNO is due;
* :func:`validate_stream` — replays a transaction stream against a fresh
  HLR and checks protocol coherence (every successful Cancel Location
  refers to a live registration; registrations only move via successful
  Update Locations), which the platform simulator's output must satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.signaling.procedures import MessageType, SignalingTransaction


class HomeLocationRegister:
    """One HMNO's subscriber-location registry."""

    def __init__(self) -> None:
        self._registrations: Dict[str, str] = {}

    def location_of(self, device_id: str) -> Optional[str]:
        """The VMNO PLMN the device is currently registered at."""
        return self._registrations.get(device_id)

    @property
    def n_registered(self) -> int:
        return len(self._registrations)

    def update_location(self, device_id: str, visited_plmn: str) -> Optional[str]:
        """Accept a successful Update Location.

        Returns the *previous* VMNO when the registration moved — the
        network the HLR must now send Cancel Location to — or None when
        nothing needs cancelling (first registration, or same VMNO).
        """
        previous = self._registrations.get(device_id)
        self._registrations[device_id] = visited_plmn
        if previous is not None and previous != visited_plmn:
            return previous
        return None

    def cancel_location(self, device_id: str, visited_plmn: str) -> bool:
        """Process a Cancel Location toward ``visited_plmn``.

        Returns True if it was coherent (the device really was last
        registered there before moving, i.e. this cancel corresponds to
        a past registration being purged).  The registration map itself
        is already pointing at the new VMNO by the time the cancel
        travels, so coherence means "not cancelling the current one".
        """
        current = self._registrations.get(device_id)
        return current is not None and current != visited_plmn


@dataclass
class HLRValidationReport:
    """Protocol-coherence summary of a transaction stream."""

    n_update_locations: int = 0
    n_successful_updates: int = 0
    n_cancel_locations: int = 0
    n_coherent_cancels: int = 0
    n_registration_moves: int = 0
    n_registered_devices: int = 0

    @property
    def cancel_coherence(self) -> float:
        """Fraction of Cancel Locations that match a real move."""
        if self.n_cancel_locations == 0:
            return 1.0
        return self.n_coherent_cancels / self.n_cancel_locations

    @property
    def moves_match_cancels(self) -> bool:
        """Every registration move should produce exactly one cancel."""
        return self.n_registration_moves == self.n_cancel_locations


def validate_stream(
    transactions: Iterable[SignalingTransaction],
) -> HLRValidationReport:
    """Replay a (time-ordered) stream against a fresh HLR."""
    hlr = HomeLocationRegister()
    report = HLRValidationReport()
    for txn in transactions:
        if txn.message_type is MessageType.UPDATE_LOCATION:
            report.n_update_locations += 1
            if txn.result.is_success:
                report.n_successful_updates += 1
                previous = hlr.update_location(txn.device_id, txn.visited_plmn)
                if previous is not None:
                    report.n_registration_moves += 1
        elif txn.message_type is MessageType.CANCEL_LOCATION:
            report.n_cancel_locations += 1
            if hlr.cancel_location(txn.device_id, txn.visited_plmn):
                report.n_coherent_cancels += 1
    report.n_registered_devices = hlr.n_registered
    return report
