"""Home Location Register: the subscriber registry behind §3's procedures.

The three MAP procedures the platform probes capture are one protocol,
not three independent event types: a device attaching to a VMNO runs
**Authentication** then **Update Location**, and when the HLR accepts a
registration at a *new* VMNO it sends **Cancel Location** to the old
one.  This module implements that registry:

* :class:`HomeLocationRegister` — tracks each subscriber's current
  registration and tells the caller when a Cancel Location toward the
  previous VMNO is due;
* :func:`validate_stream` — replays a transaction stream against a fresh
  HLR and checks protocol coherence (every successful Cancel Location
  refers to a live registration; registrations only move via successful
  Update Locations), which the platform simulator's output must satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Optional

from repro.signaling.procedures import MessageType, SignalingTransaction


class CancelOutcome(Enum):
    """How a Cancel Location relates to the HLR's registration state.

    The two incoherent outcomes point at *different* stream damage:
    a cancel for a **never-registered** device means the Update Location
    that created the registration was lost (record drops, truncated
    files), while a cancel of the **current** registration means the
    cancel overtook its own Update Location (reordering).  Keeping them
    separate lets fault-injection tests tell drops from reorders.
    """

    COHERENT = "coherent"
    NEVER_REGISTERED = "never_registered"
    CURRENT_REGISTRATION = "current_registration"

    @property
    def is_coherent(self) -> bool:
        return self is CancelOutcome.COHERENT


class HomeLocationRegister:
    """One HMNO's subscriber-location registry."""

    def __init__(self) -> None:
        self._registrations: Dict[str, str] = {}

    def location_of(self, device_id: str) -> Optional[str]:
        """The VMNO PLMN the device is currently registered at."""
        return self._registrations.get(device_id)

    @property
    def n_registered(self) -> int:
        return len(self._registrations)

    def update_location(self, device_id: str, visited_plmn: str) -> Optional[str]:
        """Accept a successful Update Location.

        Returns the *previous* VMNO when the registration moved — the
        network the HLR must now send Cancel Location to — or None when
        nothing needs cancelling (first registration, or same VMNO).
        """
        previous = self._registrations.get(device_id)
        self._registrations[device_id] = visited_plmn
        if previous is not None and previous != visited_plmn:
            return previous
        return None

    def cancel_outcome(self, device_id: str, visited_plmn: str) -> CancelOutcome:
        """Classify a Cancel Location toward ``visited_plmn``.

        Coherent means the device really was last registered there
        before moving — this cancel purges a past registration.  The
        registration map is already pointing at the new VMNO by the time
        the cancel travels, so cancelling the *current* VMNO is
        incoherent (the cancel overtook its update), and cancelling for
        a device with *no* registration at all means the update that
        would have created one never arrived.
        """
        current = self._registrations.get(device_id)
        if current is None:
            return CancelOutcome.NEVER_REGISTERED
        if current == visited_plmn:
            return CancelOutcome.CURRENT_REGISTRATION
        return CancelOutcome.COHERENT

    def cancel_location(self, device_id: str, visited_plmn: str) -> bool:
        """Process a Cancel Location; True when it was coherent."""
        return self.cancel_outcome(device_id, visited_plmn).is_coherent


@dataclass
class HLRValidationReport:
    """Protocol-coherence summary of a transaction stream.

    Incoherent cancels split by cause: ``n_cancels_never_registered``
    (the registration-creating update was lost — drops) vs
    ``n_cancels_of_current`` (the cancel overtook its update —
    reorders); see :class:`CancelOutcome`.
    """

    n_update_locations: int = 0
    n_successful_updates: int = 0
    n_cancel_locations: int = 0
    n_coherent_cancels: int = 0
    n_cancels_never_registered: int = 0
    n_cancels_of_current: int = 0
    n_registration_moves: int = 0
    n_registered_devices: int = 0

    @property
    def n_incoherent_cancels(self) -> int:
        return self.n_cancels_never_registered + self.n_cancels_of_current

    @property
    def cancel_coherence(self) -> float:
        """Fraction of Cancel Locations that match a real move."""
        if self.n_cancel_locations == 0:
            return 1.0
        return self.n_coherent_cancels / self.n_cancel_locations

    @property
    def moves_match_cancels(self) -> bool:
        """Every registration move should produce exactly one cancel."""
        return self.n_registration_moves == self.n_cancel_locations


def validate_stream(
    transactions: Iterable[SignalingTransaction],
) -> HLRValidationReport:
    """Replay a (time-ordered) stream against a fresh HLR."""
    hlr = HomeLocationRegister()
    report = HLRValidationReport()
    for txn in transactions:
        if txn.message_type is MessageType.UPDATE_LOCATION:
            report.n_update_locations += 1
            if txn.result.is_success:
                report.n_successful_updates += 1
                previous = hlr.update_location(txn.device_id, txn.visited_plmn)
                if previous is not None:
                    report.n_registration_moves += 1
        elif txn.message_type is MessageType.CANCEL_LOCATION:
            report.n_cancel_locations += 1
            outcome = hlr.cancel_outcome(txn.device_id, txn.visited_plmn)
            if outcome is CancelOutcome.COHERENT:
                report.n_coherent_cancels += 1
            elif outcome is CancelOutcome.NEVER_REGISTERED:
                report.n_cancels_never_registered += 1
            else:
                report.n_cancels_of_current += 1
    report.n_registered_devices = hlr.n_registered
    return report
