"""Mobility-management procedures, result codes and signaling transactions.

The M2M-platform dataset (§3.1) is a stream of transactions, each
reporting: a hashed device ID, a timestamp, the SIM's MCC-MNC, the visited
network's MCC-MNC, a message type (authentication, update location or
cancel location) and a message result (OK, RoamingNotAllowed,
UnknownSubscription, FeatureUnsupported, …).
:class:`SignalingTransaction` is that exact record.

The UK-MNO side additionally monitors Attach / Routing-Area-Update /
Detach procedures (§7.1); those share the same enums.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from repro.cellular.identifiers import mcc_of


class MessageType(str, Enum):
    """Control-plane procedure kinds observed by the probes."""

    AUTHENTICATION = "authentication"
    UPDATE_LOCATION = "update_location"
    CANCEL_LOCATION = "cancel_location"
    ATTACH = "attach"
    DETACH = "detach"
    ROUTING_AREA_UPDATE = "routing_area_update"

    @property
    def is_map_procedure(self) -> bool:
        """True for the HMNO-side (MAP/Diameter) procedures the M2M
        platform probes see."""
        return self in (
            MessageType.AUTHENTICATION,
            MessageType.UPDATE_LOCATION,
            MessageType.CANCEL_LOCATION,
        )


class ResultCode(str, Enum):
    """Procedure outcome, as reported in the signaling records."""

    OK = "OK"
    ROAMING_NOT_ALLOWED = "RoamingNotAllowed"
    UNKNOWN_SUBSCRIPTION = "UnknownSubscription"
    FEATURE_UNSUPPORTED = "FeatureUnsupported"
    SYSTEM_FAILURE = "SystemFailure"

    @property
    def is_success(self) -> bool:
        return self is ResultCode.OK

    @property
    def is_failure(self) -> bool:
        return not self.is_success


#: Canonical, index-stable enum orders for columnar/wire encodings:
#: :mod:`repro.columnar` stores message types and result codes as indices
#: into these tuples.  Append-only — reordering changes the meaning of
#: every encoded column block.
MESSAGE_TYPES: Tuple[MessageType, ...] = tuple(MessageType)
RESULT_CODES: Tuple[ResultCode, ...] = tuple(ResultCode)


@dataclass(frozen=True)
class SignalingTransaction:
    """One record of the M2M-platform signaling dataset.

    ``timestamp`` is seconds since the dataset epoch.  ``sim_plmn`` and
    ``visited_plmn`` are ``MCCMNC`` strings; keeping them as strings
    matches the wire format and makes the record trivially serializable.
    """

    device_id: str
    timestamp: float
    sim_plmn: str
    visited_plmn: str
    message_type: MessageType
    result: ResultCode

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"negative timestamp {self.timestamp}")
        for label, plmn in (("sim", self.sim_plmn), ("visited", self.visited_plmn)):
            if not plmn.isdigit() or len(plmn) not in (5, 6):
                raise ValueError(f"{label} PLMN must be 5-6 digits, got {plmn!r}")

    @property
    def sim_mcc(self) -> int:
        return mcc_of(self.sim_plmn)

    @property
    def visited_mcc(self) -> int:
        return mcc_of(self.visited_plmn)

    @property
    def is_roaming(self) -> bool:
        """Roaming at the international level: SIM and visited MCC differ.

        National roaming (same MCC, different MNC) is not roaming from
        the M2M platform's country-footprint point of view, matching how
        §3 counts "non-roaming (native)" devices.
        """
        return self.sim_mcc != self.visited_mcc

    @property
    def day(self) -> int:
        """Zero-based day index within the observation window."""
        return int(self.timestamp // 86400)
