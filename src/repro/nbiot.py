"""NB-IoT roaming: the paper's §8 outlook, made executable.

"NB-IoT is a low-power wide-area network technology developed for the
huge volume … The GSMA announced the first international NB-IoT roaming
trial back in June 2018 … NB-IoT will enable visited MNOs to easily
detect the inbound roaming IoT devices, a task that currently is
challenging."

The mechanism: NB-IoT is a *dedicated* radio access — anything attaching
over it is an IoT device by construction, so detection needs no APN
archaeology.  This module models that future:

* :class:`NBIoTDeployment` — which operators enabled NB-IoT and which
  (home, visited) pairs have completed a roaming trial;
* :func:`migrate_fleet` — move a fraction of the eligible (stationary,
  LPWA-suited) M2M population onto NB-IoT, emitting dedicated attach
  records;
* :func:`detect_iot_by_rat` — the trivial visited-MNO detector;
* :func:`detection_coverage_curve` — how visited-MNO IoT visibility
  grows with NB-IoT adoption, quantifying the §8 claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.devices.device import DeviceClass, IoTVertical
from repro.pipeline import PipelineResult

#: Verticals suited to LPWA migration (small, infrequent payloads).
LPWA_VERTICALS: FrozenSet[IoTVertical] = frozenset(
    {IoTVertical.SMART_METER, IoTVertical.PAYMENT, IoTVertical.LOGISTICS,
     IoTVertical.OTHER}
)


@dataclass(frozen=True)
class NBIoTAttachRecord:
    """One NB-IoT attach seen by the visited MNO — RAT is explicit."""

    device_id: str
    timestamp: float
    sim_plmn: str
    visited_plmn: str
    rat: str = "NB-IoT"

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("negative timestamp")
        if self.rat != "NB-IoT":
            raise ValueError("NB-IoT records carry the NB-IoT RAT tag")


class NBIoTDeployment:
    """Who has switched NB-IoT on, and which roaming trials exist."""

    def __init__(self) -> None:
        self._enabled: Set[str] = set()
        self._trials: Set[Tuple[str, str]] = set()

    def enable(self, plmn: str) -> None:
        self._enabled.add(plmn)

    def run_trial(self, home_plmn: str, visited_plmn: str) -> None:
        """Complete a roaming trial (both ends must be enabled)."""
        if home_plmn not in self._enabled or visited_plmn not in self._enabled:
            raise ValueError("both operators must enable NB-IoT before a trial")
        self._trials.add((home_plmn, visited_plmn))

    def is_enabled(self, plmn: str) -> bool:
        return plmn in self._enabled

    def roaming_possible(self, home_plmn: str, visited_plmn: str) -> bool:
        if home_plmn == visited_plmn:
            return home_plmn in self._enabled
        return (home_plmn, visited_plmn) in self._trials

    @property
    def n_trials(self) -> int:
        return len(self._trials)


def eligible_devices(result: PipelineResult) -> Set[str]:
    """Ground-truth M2M devices in LPWA-suited verticals."""
    eligible: Set[str] = set()
    for device_id, truth in result.dataset.ground_truth.items():
        if truth.device_class is not DeviceClass.M2M:
            continue
        if truth.vertical in LPWA_VERTICALS and device_id in result.summaries:
            eligible.add(device_id)
    return eligible


def migrate_fleet(
    result: PipelineResult,
    deployment: NBIoTDeployment,
    migration_fraction: float,
    seed: int = 0,
) -> Tuple[List[NBIoTAttachRecord], Set[str]]:
    """Move a fraction of the eligible fleet onto NB-IoT.

    A device migrates only if the (home, visited) pair has NB-IoT
    roaming in place; migrated devices emit one dedicated attach per
    active day.  Returns (attach records, migrated device IDs).
    """
    if not 0.0 <= migration_fraction <= 1.0:
        raise ValueError("migration fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    visited_plmn = str(result.labeler.observer.plmn)
    records: List[NBIoTAttachRecord] = []
    migrated: Set[str] = set()

    candidates = sorted(eligible_devices(result))
    for device_id in candidates:
        if rng.random() >= migration_fraction:
            continue
        summary = result.summaries[device_id]
        if not deployment.roaming_possible(summary.sim_plmn, visited_plmn):
            continue
        migrated.add(device_id)
        for day in range(summary.active_days):
            records.append(
                NBIoTAttachRecord(
                    device_id=device_id,
                    timestamp=day * 86400.0 + float(rng.random()) * 86400.0,
                    sim_plmn=summary.sim_plmn,
                    visited_plmn=visited_plmn,
                )
            )
    records.sort(key=lambda r: r.timestamp)
    return records, migrated


def detect_iot_by_rat(records: Iterable[NBIoTAttachRecord]) -> Set[str]:
    """The §8 detector: NB-IoT attach == IoT device.  No inference."""
    return {record.device_id for record in records}


@dataclass
class CoveragePoint:
    """One point of the adoption-vs-visibility curve."""

    migration_fraction: float
    detected_share_of_m2m: float
    n_migrated: int


def detection_coverage_curve(
    result: PipelineResult,
    deployment: NBIoTDeployment,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    seed: int = 0,
) -> List[CoveragePoint]:
    """Visited-MNO IoT visibility as a function of NB-IoT adoption."""
    true_m2m = {
        d
        for d, g in result.dataset.ground_truth.items()
        if g.device_class is DeviceClass.M2M and d in result.summaries
    }
    if not true_m2m:
        raise ValueError("no M2M devices to migrate")
    curve: List[CoveragePoint] = []
    for fraction in fractions:
        records, migrated = migrate_fleet(result, deployment, fraction, seed=seed)
        detected = detect_iot_by_rat(records)
        curve.append(
            CoveragePoint(
                migration_fraction=fraction,
                detected_share_of_m2m=len(detected & true_m2m) / len(true_m2m),
                n_migrated=len(migrated),
            )
        )
    return curve


def full_deployment(result: PipelineResult) -> NBIoTDeployment:
    """A deployment where every observed home operator ran a trial with
    the study MNO — the §8 'powerful environment' end state."""
    deployment = NBIoTDeployment()
    visited = str(result.labeler.observer.plmn)
    deployment.enable(visited)
    for summary in result.summaries.values():
        if not deployment.is_enabled(summary.sim_plmn):
            deployment.enable(summary.sim_plmn)
        if summary.sim_plmn != visited:
            deployment.run_trial(summary.sim_plmn, visited)
    return deployment
