"""Command-line interface: simulate, classify and report without code.

Examples::

    python -m repro simulate-m2m --devices 500 --out /tmp/m2m.jsonl
    python -m repro simulate-mno --devices 800 --out /tmp/mno
    python -m repro classify --devices 800 --seed 7
    python -m repro figure fig6 --devices 1000
    python -m repro figure all --devices 1000

All commands rebuild the deterministic world from ``--eco-seed``, so a
dataset written by ``simulate-mno`` can be re-analysed later against the
same sector/TAC catalogs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.activity import fig7_active_days
from repro.analysis.ascii_plots import render_bars, render_ecdf, render_heatmap
from repro.analysis.mobility import fig8_gyration
from repro.analysis.network_usage import fig9_network_usage
from repro.analysis.platform import fig2_device_distribution, fig3_dynamics
from repro.analysis.population import (
    fig5_home_countries,
    fig6_class_vs_label,
    population_shares,
)
from repro.analysis.smart_meters import fig11_smip_activity
from repro.analysis.traffic import fig10_traffic_volumes
from repro.analysis.verticals import fig12_verticals
from repro.core.classifier import ClassLabel
from repro.core.validation import validate_classification
from repro.configio import save_config
from repro.core.keywords import discovery_report
from repro.datasets.export import write_day_records, write_summaries
from repro.datasets.io import (
    write_radio_events,
    write_service_records,
    write_transactions,
)
from repro.ecosystem import EcosystemConfig, build_default_ecosystem
from repro.mno import MNOConfig, simulate_mno_dataset
from repro.pipeline import run_pipeline
from repro.platform_m2m import PlatformConfig, simulate_m2m_dataset


def _jobs_arg(value: str):
    """``--jobs`` parser: a positive int or the literal ``auto``."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs must be an integer or 'auto', got {value!r}"
        ) from None


def _build_eco(args: argparse.Namespace):
    return build_default_ecosystem(
        EcosystemConfig(uk_sites=args.uk_sites, seed=args.eco_seed)
    )


def _build_pipeline(args: argparse.Namespace):
    eco = _build_eco(args)
    dataset = simulate_mno_dataset(
        eco, MNOConfig(n_devices=args.devices, seed=args.seed)
    )
    return eco, dataset, run_pipeline(
        dataset, eco, n_workers=args.jobs, columnar=args.columnar
    )


# -- commands -------------------------------------------------------------------

def cmd_simulate_m2m(args: argparse.Namespace) -> int:
    """Generate an M2M-platform trace and optionally write it to JSONL."""
    eco = _build_eco(args)
    dataset = simulate_m2m_dataset(
        eco, PlatformConfig(n_devices=args.devices, seed=args.seed)
    )
    print(
        f"simulated {dataset.n_devices} devices, "
        f"{dataset.n_transactions} transactions over {dataset.window_days} days"
    )
    if args.out:
        count = write_transactions(args.out, dataset.transactions)
        print(f"wrote {count} transactions to {args.out}")
    return 0


def cmd_simulate_mno(args: argparse.Namespace) -> int:
    """Generate a visited-MNO dataset and optionally write it to a directory."""
    eco = _build_eco(args)
    dataset = simulate_mno_dataset(
        eco, MNOConfig(n_devices=args.devices, seed=args.seed)
    )
    for key, value in dataset.summary().items():
        print(f"{key}: {value}")
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        n_radio = write_radio_events(out_dir / "radio_events.jsonl", dataset.radio_events)
        n_service = write_service_records(
            out_dir / "service_records.jsonl", dataset.service_records
        )
        print(f"wrote {n_radio} radio events and {n_service} service records to {out_dir}")
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    """Run the full pipeline and print class shares plus validation."""
    _, dataset, result = _build_pipeline(args)
    shares = population_shares(result)
    print("class shares:")
    for label, share in shares.class_shares.items():
        print(f"  {label.value:>10}: {share:6.1%}")
    print("\nvalidation against ground truth:")
    print(validate_classification(result.classifications, dataset.ground_truth).format())
    return 0


def _print_fig2(args, eco, dataset_m2m):
    result = fig2_device_distribution(dataset_m2m, eco.countries)
    for hmno, share in sorted(result.hmno_shares.items(), key=lambda kv: -kv[1]):
        print(f"{hmno}: {share:.1%} of devices, top visited {result.top_visited(hmno, 3)}")


def _print_fig3(args, eco, dataset_m2m):
    result = fig3_dynamics(dataset_m2m)
    print(f"records/device mean {result.records_all.mean:.0f} max {result.records_all.max:.0f}")
    print(f"roaming/native median ratio {result.roaming_to_native_median_ratio:.1f}")
    print(f"single-VMNO share {result.vmno_counts.fraction_at_most(1):.0%}")
    if getattr(args, "plot", False):
        print(render_ecdf(
            {"roaming": result.records_roaming, "native": result.records_native},
            log_x=True,
            title="Fig. 3-left: signaling records per device (ECDF)",
        ))


_PLATFORM_FIGURES = {"fig2": _print_fig2, "fig3": _print_fig3}


def _print_mno_figure(name: str, eco, result, plot: bool = False) -> None:
    if name == "fig5":
        fig = fig5_home_countries(result, eco.countries)
        print(f"top-3 share {fig.top3_overall_share:.0%}; top {fig.top_countries(5)}")
        if plot:
            print(render_bars(dict(fig.top_countries(10)),
                              title="Fig. 5: inbound-roamer home countries"))
    elif name == "fig6":
        fig = fig6_class_vs_label(result)
        print(f"I:H m2m share {fig.share_of_label('I:H', ClassLabel.M2M):.1%}; "
              f"m2m inbound share {fig.share_of_class(ClassLabel.M2M, 'I:H'):.1%}")
        if plot:
            matrix = {cls.value: row for cls, row in fig.by_class.items()}
            print(render_heatmap(matrix, title="Fig. 6: class x label (row-norm)"))
    elif name == "fig7":
        fig = fig7_active_days(result)
        print(f"inbound medians: m2m {fig.inbound[ClassLabel.M2M].median:.0f}d, "
              f"smart {fig.inbound[ClassLabel.SMART].median:.0f}d "
              f"(ratio {fig.median_ratio_inbound():.1f}x)")
    elif name == "fig8":
        fig = fig8_gyration(result)
        print(f"inbound m2m >1km: {fig.m2m_inbound_fraction_above(1.0):.0%}")
    elif name == "fig9":
        fig = fig9_network_usage(result)
        print(f"m2m 2G-only {fig.share('connectivity', ClassLabel.M2M, '2G-only'):.1%}; "
              f"m2m no-data {fig.share('data', ClassLabel.M2M, 'none'):.1%}")
    elif name == "fig10":
        fig = fig10_traffic_volumes(result)
        from repro.analysis.traffic import RoamingGroup
        print(f"signaling/day medians: smart-native "
              f"{fig.median('signaling_per_day', ClassLabel.SMART, RoamingGroup.NATIVE):.1f}, "
              f"m2m-inbound "
              f"{fig.median('signaling_per_day', ClassLabel.M2M, RoamingGroup.INBOUND):.1f}")
    elif name == "fig11":
        fig = fig11_smip_activity(result)
        print(f"native full-period {fig.native.full_period_fraction:.0%}; "
              f"roaming <=5d {fig.roaming.active_days.fraction_at_most(5):.0%}; "
              f"signaling ratio {fig.signaling_ratio:.1f}x")
    elif name == "fig12":
        fig = fig12_verticals(result)
        print(f"cars signaling {fig.cars.signaling_per_day.mean:.1f}/day vs "
              f"meters {fig.meters.signaling_per_day.mean:.1f}/day")
    else:
        raise KeyError(name)


MNO_FIGURES = ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12")


def cmd_figure(args: argparse.Namespace) -> int:
    """Print one figure's headline numbers (or all of them)."""
    names: List[str]
    if args.name == "all":
        names = list(_PLATFORM_FIGURES) + list(MNO_FIGURES)
    else:
        names = [args.name]

    eco = _build_eco(args)
    dataset_m2m = None
    result = None
    for name in names:
        print(f"-- {name} --")
        if name in _PLATFORM_FIGURES:
            if dataset_m2m is None:
                dataset_m2m = simulate_m2m_dataset(
                    eco, PlatformConfig(n_devices=args.devices, seed=args.seed)
                )
            _PLATFORM_FIGURES[name](args, eco, dataset_m2m)
        elif name in MNO_FIGURES:
            if result is None:
                dataset = simulate_mno_dataset(
                    eco, MNOConfig(n_devices=args.devices, seed=args.seed)
                )
                result = run_pipeline(
                    dataset, eco, n_workers=args.jobs, columnar=args.columnar
                )
            _print_mno_figure(name, eco, result, plot=getattr(args, "plot", False))
        else:
            print(f"unknown figure {name!r}", file=sys.stderr)
            return 2
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Build the devices-catalog and export it as CSV."""
    _, _, result = _build_pipeline(args)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    n_days = write_day_records(out_dir / "catalog_days.csv", result.day_records)
    n_summaries = write_summaries(
        out_dir / "catalog_summaries.csv", result.summaries.values()
    )
    print(f"wrote {n_days} daily rows and {n_summaries} device summaries to {out_dir}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run the pipeline durably: checkpointed, resumable, health-reported."""
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    eco = _build_eco(args)
    dataset = simulate_mno_dataset(
        eco, MNOConfig(n_devices=args.devices, seed=args.seed)
    )
    result = run_pipeline(
        dataset,
        eco,
        lenient=args.lenient,
        n_workers=args.jobs,
        columnar=args.columnar,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        out_of_core=args.out_of_core,
    )
    print(
        f"classified {len(result.classifications)} devices "
        f"({len(result.summaries)} summarized, "
        f"{len(result.day_records)} daily rows)"
    )
    if result.health is not None:
        print(f"run health: {result.health.summary()}")
    if result.degradation is not None:
        deg = result.degradation
        print(
            f"degradation: {deg.n_devices_failed}/{deg.n_devices_total} devices "
            f"failed (coverage {deg.coverage:.1%})"
        )
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        n_days = write_day_records(out_dir / "catalog_days.csv", result.day_records)
        n_summaries = write_summaries(
            out_dir / "catalog_summaries.csv", result.summaries.values()
        )
        print(f"wrote {n_days} daily rows and {n_summaries} device summaries to {out_dir}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived catalog daemon (see docs/ROBUSTNESS.md)."""
    import asyncio

    from repro.service.config import ServiceConfig
    from repro.service.daemon import run_daemon

    eco = _build_eco(args)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        queue_high_watermark=args.queue_high,
        queue_low_watermark=args.queue_low,
        snapshot_interval_s=args.snapshot_interval,
    )

    def announce(port: int) -> None:
        print(f"catalog daemon listening on {args.host}:{port}", flush=True)

    try:
        asyncio.run(
            run_daemon(
                eco,
                args.checkpoint_dir,
                config=config,
                resume=args.resume,
                seed=args.seed,
                ready_callback=announce,
            )
        )
    except KeyboardInterrupt:
        print("interrupted; daemon state is durable in the WAL", file=sys.stderr)
    return 0


def cmd_scrub(args: argparse.Namespace) -> int:
    """Verify (and optionally repair) a checkpoint store or WAL at rest."""
    from repro.runtime.checkpoint import CheckpointError
    from repro.runtime.scrub import recompute_from_dataset, scrub_store

    recompute = None
    if args.repair and args.recompute:
        eco = _build_eco(args)
        dataset = simulate_mno_dataset(
            eco, MNOConfig(n_devices=args.devices, seed=args.seed)
        )
        recompute = recompute_from_dataset(dataset)
    try:
        report = scrub_store(
            args.checkpoint_dir, repair=args.repair, recompute=recompute
        )
    except CheckpointError as exc:
        print(f"scrub failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json())
    else:
        print(report.format())
    return 0 if report.healthy_after_scrub else 1


def cmd_keywords(args: argparse.Namespace) -> int:
    """Run the APN keyword-discovery workflow on a simulated population."""
    _, _, result = _build_pipeline(args)
    print(discovery_report(result.summaries.values(), min_devices=args.min_devices))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Generate the full Markdown reproduction report."""
    from repro.platform_m2m import PlatformConfig as _PC
    from repro.reporting import build_report

    eco, _, result = _build_pipeline(args)
    m2m = simulate_m2m_dataset(eco, _PC(n_devices=args.devices, seed=args.seed))
    text = build_report(m2m, result, eco)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote report to {args.out}")
    else:
        print(text)
    return 0


def cmd_save_config(args: argparse.Namespace) -> int:
    """Persist the run's configs for later reproducible runs."""
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    save_config(
        out_dir / "ecosystem.json",
        EcosystemConfig(uk_sites=args.uk_sites, seed=args.eco_seed),
    )
    save_config(
        out_dir / "platform.json",
        PlatformConfig(n_devices=args.devices, seed=args.seed),
    )
    save_config(out_dir / "mno.json", MNOConfig(n_devices=args.devices, seed=args.seed))
    print(f"wrote ecosystem.json, platform.json, mno.json to {out_dir}")
    return 0


# -- parser ---------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Where Things Roam (IMC 2020) reproduction toolkit",
    )
    parser.add_argument("--eco-seed", type=int, default=11, help="world seed")
    parser.add_argument("--uk-sites", type=int, default=80, help="UK radio sites")
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default="auto",
        help="worker processes for the pipeline's sharded stages "
        "(an integer, or 'auto' to pick from the machine and input size; "
        "1 = serial; output is identical at any value)",
    )
    parser.add_argument(
        "--columnar",
        action="store_true",
        default=None,
        dest="columnar",
        help="run the catalog stage on the columnar (struct-of-arrays) "
        "data plane; byte-identical output, different execution plan "
        "(default: the REPRO_COLUMNAR environment flag)",
    )
    parser.add_argument(
        "--no-columnar",
        action="store_false",
        dest="columnar",
        help="force the row-oriented data plane",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate-m2m", help="generate an M2M platform trace")
    p.add_argument("--devices", type=int, default=500)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--out", type=str, default=None, help="JSONL output path")
    p.set_defaults(func=cmd_simulate_m2m)

    p = sub.add_parser("simulate-mno", help="generate a visited-MNO dataset")
    p.add_argument("--devices", type=int, default=800)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", type=str, default=None, help="output directory")
    p.set_defaults(func=cmd_simulate_mno)

    p = sub.add_parser("classify", help="run the pipeline and score it")
    p.add_argument("--devices", type=int, default=800)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser("figure", help="print a figure's headline numbers")
    p.add_argument(
        "name",
        choices=sorted(_PLATFORM_FIGURES) + list(MNO_FIGURES) + ["all"],
    )
    p.add_argument("--devices", type=int, default=800)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--plot", action="store_true", help="render ASCII plots")
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("export", help="build and export the devices-catalog CSVs")
    p.add_argument("--devices", type=int, default=800)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", type=str, required=True)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser(
        "run",
        help="run the pipeline with durable checkpoints (resumable after a crash)",
    )
    p.add_argument("--devices", type=int, default=800)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--lenient", action="store_true", help="quarantine bad devices")
    p.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        help="directory for the run manifest, journal and per-unit blocks",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume from an existing checkpoint directory (skips journaled units)",
    )
    p.add_argument(
        "--out-of-core",
        action="store_true",
        help=(
            "spill column blocks to disk and replay them through an "
            "mmap-backed LRU window (bounded RSS; byte-identical output)"
        ),
    )
    p.add_argument("--out", type=str, default=None, help="CSV export directory")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "serve",
        help="run the catalog daemon (micro-batch ingest + point queries)",
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--checkpoint-dir",
        type=str,
        required=True,
        help="directory for the write-ahead batch log",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay an existing WAL (restart after a crash)",
    )
    p.add_argument("--queue-high", type=int, default=64, help="shed watermark")
    p.add_argument("--queue-low", type=int, default=16, help="recover watermark")
    p.add_argument(
        "--snapshot-interval", type=float, default=5.0,
        help="seconds between durable snapshot (journal fsync) cycles",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "scrub",
        help="verify a checkpoint store's unit CRCs end-to-end; classify "
        "and optionally repair at-rest damage",
    )
    p.add_argument(
        "--checkpoint-dir",
        type=str,
        required=True,
        help="store (or service WAL) directory to scrub",
    )
    p.add_argument(
        "--repair",
        action="store_true",
        help="heal damage: recompute units where possible, otherwise drop "
        "them from the journal so the next --resume re-executes them",
    )
    p.add_argument(
        "--recompute",
        action="store_true",
        help="with --repair: rebuild damaged units byte-identically from "
        "the simulated dataset (--devices/--seed must match the run)",
    )
    p.add_argument("--devices", type=int, default=800)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.set_defaults(func=cmd_scrub)

    p = sub.add_parser("keywords", help="run APN keyword discovery")
    p.add_argument("--devices", type=int, default=800)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--min-devices", type=int, default=5)
    p.set_defaults(func=cmd_keywords)

    p = sub.add_parser("report", help="generate the full Markdown reproduction report")
    p.add_argument("--devices", type=int, default=1000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", type=str, default=None)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("save-config", help="write reproducible config JSONs")
    p.add_argument("--devices", type=int, default=800)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", type=str, required=True)
    p.set_defaults(func=cmd_save_config)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
