"""The visited-MNO simulator (paper §4): the UK operator's 22-day view.

Synthesizes the full device population attached to the study MNO —
native smartphones and feature phones, hosted-MVNO users, national and
international roamers, and every M2M segment the paper identifies
(SMIP-native and SMIP-roaming smart meters, connected cars, payment
terminals, logistics trackers, voice-only machines) — then rolls the
22-day window forward emitting radio-interface events and CDR/xDR
service records.

The output :class:`repro.datasets.MNODataset` feeds the devices-catalog
pipeline of :mod:`repro.core` exactly the way the real probes feed the
paper's pipeline.
"""

from repro.mno.config import MNOConfig, SegmentSpec, default_segments
from repro.mno.population import PlannedDevice, PopulationBuilder
from repro.mno.simulator import MNOSimulator, simulate_mno_dataset
from repro.mno.ggsn import GGSNDeployment, GGSNPool, isolation_benefit
from repro.mno.smip import SMIP_IMSI_RANGE, smip_devices
from repro.mno.streaming import (
    DayBatch,
    StreamingMNOSimulator,
    day_partition_paths,
    load_day_batch,
    write_day_batch,
)

__all__ = [
    "DayBatch",
    "day_partition_paths",
    "load_day_batch",
    "write_day_batch",
    "GGSNDeployment",
    "GGSNPool",
    "MNOConfig",
    "StreamingMNOSimulator",
    "isolation_benefit",
    "MNOSimulator",
    "PlannedDevice",
    "PopulationBuilder",
    "SegmentSpec",
    "SMIP_IMSI_RANGE",
    "default_segments",
    "simulate_mno_dataset",
    "smip_devices",
]
