"""Configuration of the MNO simulator: the population segment table.

Each :class:`SegmentSpec` describes one homogeneous slice of the MNO's
device population; :func:`default_segments` is the calibrated table whose
fractions reproduce the paper's whole-period joint distribution of
(device class × roaming label × home country):

* classes 62% smart / 8% feat / 26% m2m / 4% m2m-maybe (§4.3);
* 71.1% of inbound roamers are M2M, 74.7% of M2M are inbound (Fig. 6);
* top-3 inbound home countries NL/SE/ES ≈ 60% overall, ≈ 83% of M2M
  (Fig. 5);
* the m2m-maybe residue is voice-only hardware from long-tail vendors
  whose models never co-occur with a validated APN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.cellular.rats import RAT
from repro.devices.device import DeviceClass, IoTVertical, SimProvenance

R2 = frozenset({RAT.GSM})
R3 = frozenset({RAT.UMTS})
R23 = frozenset({RAT.GSM, RAT.UMTS})
R34 = frozenset({RAT.UMTS, RAT.LTE})
R4 = frozenset({RAT.LTE})
R234 = frozenset({RAT.GSM, RAT.UMTS, RAT.LTE})

RatMix = Tuple[Tuple[FrozenSet[RAT], float], ...]

#: RAT-usage mixes per device family, calibrated to Fig. 9-left
#: (77.4% of M2M devices are 2G-only; smartphones are 3G/4G).
SMARTPHONE_RATS: RatMix = ((R34, 0.55), (R234, 0.25), (R4, 0.12), (R23, 0.08))
FEATURE_RATS: RatMix = ((R2, 0.51), (R23, 0.49))
METER_ROAMING_RATS: RatMix = ((R2, 1.0),)
METER_NATIVE_RATS: RatMix = ((R3, 0.67), (R23, 0.33))
M2M_2G_RATS: RatMix = ((R2, 0.95), (R23, 0.05))
CAR_RATS: RatMix = ((R34, 0.6), (R234, 0.4))


class ModelPool(str, Enum):
    """Which TAC-catalog family a segment's hardware comes from."""

    SMARTPHONE = "smartphone"
    FEATURE_PHONE = "feature_phone"
    M2M_MODULE = "m2m_module"
    LONG_TAIL = "long_tail"


class APNBehavior(str, Enum):
    """How a segment's devices present APNs on data sessions."""

    CONSUMER = "consumer"              # internet./payandgo. style
    ENERGY_ROAMING = "energy_roaming"  # smhp.<energyco>...mnc004.mcc204.gprs
    SMARTMETER_NATIVE = "smartmeter_native"
    VERTICAL = "vertical"              # keyword-bearing vertical APN
    GENERIC = "generic"                # operator-generic, no keyword
    NONE = "none"                      # never presents an APN


@dataclass(frozen=True)
class SegmentSpec:
    """One homogeneous population slice."""

    name: str
    fraction: float
    profile: str
    device_class: DeviceClass
    provenance: SimProvenance
    vertical: Optional[IoTVertical] = None
    #: home-country sampling weights (ISO -> weight) for I-provenance.
    home_weights: Optional[Mapping[str, float]] = None
    model_pool: ModelPool = ModelPool.SMARTPHONE
    rat_mix: RatMix = SMARTPHONE_RATS
    apn: APNBehavior = APNBehavior.CONSUMER
    #: per-radio-event failure probability (Fig. 11: SMIP roaming fails
    #: noticeably more often than SMIP native).
    event_failure_prob: float = 0.001
    #: fraction of the segment using a generic APN instead of its
    #: vertical one (classification then relies on propagation).
    generic_apn_fraction: float = 0.0
    #: device is physically abroad: no radio events, only CDR/xDRs.
    outbound: bool = False
    smip_native: bool = False
    smip_roaming: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"{self.name}: fraction must be in (0, 1]")
        if self.provenance is SimProvenance.INTERNATIONAL and not self.home_weights:
            raise ValueError(f"{self.name}: international segment needs home weights")
        total = sum(w for _, w in self.rat_mix)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"{self.name}: rat mix sums to {total}")
        if not 0.0 <= self.event_failure_prob <= 1.0:
            raise ValueError(f"{self.name}: bad failure prob")


#: Home-country weights for person tourists (smart/feat inbound).
TOURIST_HOMES: Dict[str, float] = {
    "ES": 0.25,
    "SE": 0.10,
    "FR": 0.12,
    "DE": 0.10,
    "IE": 0.08,
    "US": 0.08,
    "IT": 0.07,
    "NL": 0.05,
    "PL": 0.05,
    "PT": 0.04,
    "AU": 0.03,
    "IN": 0.03,
}

#: Mixed homes for inbound voice-only machines.
VOICE_ONLY_HOMES: Dict[str, float] = {
    "NL": 0.35,
    "SE": 0.22,
    "ES": 0.12,
    "DE": 0.12,
    "FR": 0.10,
    "IE": 0.09,
}

CAR_HOMES: Dict[str, float] = {"DE": 0.5, "FR": 0.25, "SE": 0.15, "ES": 0.1}


def default_segments() -> List[SegmentSpec]:
    """The calibrated whole-period population table (fractions sum to 1)."""
    return [
        # ---- smartphones (0.62) ------------------------------------------
        SegmentSpec(
            name="smart_native_mno",
            fraction=0.285,
            profile="smartphone_resident",
            device_class=DeviceClass.SMART,
            provenance=SimProvenance.HOME,
        ),
        SegmentSpec(
            name="smart_native_mvno",
            fraction=0.225,
            profile="smartphone_resident",
            device_class=DeviceClass.SMART,
            provenance=SimProvenance.MVNO,
        ),
        SegmentSpec(
            name="smart_inbound",
            fraction=0.075,
            profile="smartphone_tourist",
            device_class=DeviceClass.SMART,
            provenance=SimProvenance.INTERNATIONAL,
            home_weights=TOURIST_HOMES,
        ),
        SegmentSpec(
            name="smart_outbound",
            fraction=0.025,
            profile="smartphone_resident",
            device_class=DeviceClass.SMART,
            provenance=SimProvenance.HOME,
            outbound=True,
        ),
        SegmentSpec(
            name="smart_national",
            fraction=0.010,
            profile="smartphone_resident",
            device_class=DeviceClass.SMART,
            provenance=SimProvenance.NATIONAL,
        ),
        # ---- feature phones (0.08) ------------------------------------------
        SegmentSpec(
            name="feat_native",
            fraction=0.045,
            profile="feature_phone",
            device_class=DeviceClass.FEAT,
            provenance=SimProvenance.HOME,
            model_pool=ModelPool.FEATURE_PHONE,
            rat_mix=FEATURE_RATS,
        ),
        SegmentSpec(
            name="feat_mvno",
            fraction=0.025,
            profile="feature_phone",
            device_class=DeviceClass.FEAT,
            provenance=SimProvenance.MVNO,
            model_pool=ModelPool.FEATURE_PHONE,
            rat_mix=FEATURE_RATS,
        ),
        SegmentSpec(
            name="feat_inbound",
            fraction=0.005,
            profile="feature_phone",
            device_class=DeviceClass.FEAT,
            provenance=SimProvenance.INTERNATIONAL,
            home_weights=TOURIST_HOMES,
            model_pool=ModelPool.FEATURE_PHONE,
            rat_mix=FEATURE_RATS,
        ),
        SegmentSpec(
            name="feat_outbound",
            fraction=0.005,
            profile="feature_phone",
            device_class=DeviceClass.FEAT,
            provenance=SimProvenance.HOME,
            model_pool=ModelPool.FEATURE_PHONE,
            rat_mix=FEATURE_RATS,
            outbound=True,
        ),
        # ---- M2M, data-active (classified m2m via APN) ---------------------
        SegmentSpec(
            name="smip_roaming",
            fraction=0.075,
            profile="smart_meter_roaming",
            device_class=DeviceClass.M2M,
            provenance=SimProvenance.INTERNATIONAL,
            vertical=IoTVertical.SMART_METER,
            home_weights={"NL": 1.0},
            model_pool=ModelPool.M2M_MODULE,
            rat_mix=METER_ROAMING_RATS,
            apn=APNBehavior.ENERGY_ROAMING,
            event_failure_prob=0.013,
            smip_roaming=True,
        ),
        SegmentSpec(
            name="smip_native",
            fraction=0.048,
            profile="smart_meter_native",
            device_class=DeviceClass.M2M,
            provenance=SimProvenance.HOME,
            vertical=IoTVertical.SMART_METER,
            model_pool=ModelPool.M2M_MODULE,
            rat_mix=METER_NATIVE_RATS,
            apn=APNBehavior.SMARTMETER_NATIVE,
            event_failure_prob=0.008,
            smip_native=True,
        ),
        SegmentSpec(
            name="m2m_se_inbound",
            fraction=0.036,
            profile="logistics_tracker",
            device_class=DeviceClass.M2M,
            provenance=SimProvenance.INTERNATIONAL,
            vertical=IoTVertical.LOGISTICS,
            home_weights={"SE": 1.0},
            model_pool=ModelPool.M2M_MODULE,
            rat_mix=M2M_2G_RATS,
            apn=APNBehavior.VERTICAL,
            generic_apn_fraction=0.2,
        ),
        SegmentSpec(
            name="m2m_es_inbound",
            fraction=0.025,
            profile="payment_terminal",
            device_class=DeviceClass.M2M,
            provenance=SimProvenance.INTERNATIONAL,
            vertical=IoTVertical.PAYMENT,
            home_weights={"ES": 1.0},
            model_pool=ModelPool.M2M_MODULE,
            rat_mix=M2M_2G_RATS,
            apn=APNBehavior.VERTICAL,
            generic_apn_fraction=0.2,
        ),
        SegmentSpec(
            name="cars_inbound",
            fraction=0.018,
            profile="connected_car",
            device_class=DeviceClass.M2M,
            provenance=SimProvenance.INTERNATIONAL,
            vertical=IoTVertical.CONNECTED_CAR,
            home_weights=CAR_HOMES,
            model_pool=ModelPool.M2M_MODULE,
            rat_mix=CAR_RATS,
            apn=APNBehavior.VERTICAL,
        ),
        SegmentSpec(
            name="payment_native",
            fraction=0.011,
            profile="payment_terminal",
            device_class=DeviceClass.M2M,
            provenance=SimProvenance.HOME,
            vertical=IoTVertical.PAYMENT,
            model_pool=ModelPool.M2M_MODULE,
            rat_mix=M2M_2G_RATS,
            apn=APNBehavior.VERTICAL,
            generic_apn_fraction=0.15,
        ),
        # ---- M2M, voice-only but sharing validated hardware models --------
        # (classified m2m via property propagation; the "24.5% of M2M use
        # no data" slice of Fig. 9-center)
        SegmentSpec(
            name="voice_only_shared_inbound",
            fraction=0.035,
            profile="m2m_voice_only",
            device_class=DeviceClass.M2M,
            provenance=SimProvenance.INTERNATIONAL,
            vertical=IoTVertical.OTHER,
            home_weights=VOICE_ONLY_HOMES,
            model_pool=ModelPool.M2M_MODULE,
            rat_mix=METER_ROAMING_RATS,
            apn=APNBehavior.NONE,
        ),
        SegmentSpec(
            name="voice_only_shared_native",
            fraction=0.018,
            profile="m2m_voice_only",
            device_class=DeviceClass.M2M,
            provenance=SimProvenance.HOME,
            vertical=IoTVertical.OTHER,
            model_pool=ModelPool.M2M_MODULE,
            rat_mix=METER_ROAMING_RATS,
            apn=APNBehavior.NONE,
        ),
        # ---- M2M, voice-only on long-tail hardware (-> m2m-maybe) ----------
        SegmentSpec(
            name="voice_only_longtail_native",
            fraction=0.022,
            profile="m2m_voice_only",
            device_class=DeviceClass.M2M,
            provenance=SimProvenance.HOME,
            vertical=IoTVertical.OTHER,
            model_pool=ModelPool.LONG_TAIL,
            rat_mix=METER_ROAMING_RATS,
            apn=APNBehavior.NONE,
        ),
        SegmentSpec(
            name="voice_only_longtail_inbound",
            fraction=0.012,
            profile="m2m_voice_only",
            device_class=DeviceClass.M2M,
            provenance=SimProvenance.INTERNATIONAL,
            vertical=IoTVertical.OTHER,
            home_weights=VOICE_ONLY_HOMES,
            model_pool=ModelPool.LONG_TAIL,
            rat_mix=METER_ROAMING_RATS,
            apn=APNBehavior.NONE,
        ),
    ]


@dataclass
class MNOConfig:
    """Top-level knobs for one simulated MNO dataset."""

    n_devices: int = 6000
    window_days: int = 22
    seed: int = 7
    segments: List[SegmentSpec] = field(default_factory=default_segments)
    #: fraction of radio events on the voice plane for devices that use
    #: voice at all (voice-only machines are always 1.0).
    voice_event_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ValueError("n_devices must be positive")
        if self.window_days <= 0:
            raise ValueError("window_days must be positive")
        total = sum(s.fraction for s in self.segments)
        if abs(total - 1.0) > 1e-3:
            raise ValueError(f"segment fractions sum to {total}, expected 1.0")
        names = [s.name for s in self.segments]
        if len(set(names)) != len(names):
            raise ValueError("duplicate segment names")
