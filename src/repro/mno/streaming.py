"""Bounded-memory, day-by-day MNO dataset generation.

The in-memory :class:`~repro.mno.simulator.MNOSimulator` materializes
the whole 22-day record set at once — fine at bench scale, hopeless at
the paper's 39.6M devices.  :class:`StreamingMNOSimulator` generates the
same records *day by day*: each yielded :class:`DayBatch` holds only one
day's events, so memory stays O(devices + one day) and batches can be
written straight to JSONL partitions.

Determinism note: because the streaming generator draws per-day rather
than per-device, its RNG consumption order differs from the batch
simulator's; the two produce statistically identical but not bitwise
identical datasets for the same seed.  Within the streaming simulator,
the same config always reproduces the same batches.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

import numpy as np

from repro.columnar.store import (
    ColumnPools,
    ColumnarRadioEvents,
    ColumnarServiceRecords,
    from_record_streams,
)
from repro.datasets.containers import GroundTruthEntry
from repro.datasets.io import (
    IngestReport,
    ingest_radio_events,
    ingest_service_records,
    write_radio_events,
    write_service_records,
)
from repro.ecosystem import Ecosystem
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.mno.config import MNOConfig
from repro.mno.population import PlannedDevice, PopulationBuilder
from repro.mno.simulator import MNOSimulator
from repro.parallel.pool import get_context, map_shards
from repro.parallel.sharding import shard_of
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent

PathLike = Union[str, Path]

#: Substream salt for per-(device, day) generation streams — the same
#: child-stream idiom :mod:`repro.faults` uses, with a salt outside its
#: range so the two families can never collide on a shared seed.
_STREAM_DAY_GEN = 11


def _device_day_rng(seed: int, day: int, device_id: str) -> np.random.Generator:
    """Independent RNG substream for one device on one day.

    Keyed by (config seed, salt, day, CRC-32 of the device ID), so the
    stream a device draws from depends on nothing but the device and the
    day — not on iteration order, shard assignment, or worker count.
    """
    return np.random.default_rng(
        [seed, _STREAM_DAY_GEN, day, zlib.crc32(device_id.encode("utf-8"))]
    )


def _generate_day_shard(
    payload: Tuple[int, int, int],
) -> Tuple[List[RadioEvent], List[ServiceRecord]]:
    """Worker: generate one day's records for one shard of devices."""
    sim: StreamingMNOSimulator = get_context()
    day, shard_index, n_shards = payload
    _ = sim.population  # ensure the per-day index exists in this process
    radio: List[RadioEvent] = []
    service: List[ServiceRecord] = []
    for plan in sim._by_day.get(day, []):
        if shard_of(plan.device_id, n_shards) != shard_index:
            continue
        rng = _device_day_rng(sim.config.seed, day, plan.device_id)
        if not plan.segment.outbound:
            sim._inner._emit_radio_day(plan, day, radio, rng=rng)
        sim._inner._emit_service_day(plan, day, service, rng=rng)
    return radio, service


@dataclass
class DayBatch:
    """One day's worth of generated records."""

    day: int
    radio_events: List[RadioEvent]
    service_records: List[ServiceRecord]

    @property
    def n_records(self) -> int:
        return len(self.radio_events) + len(self.service_records)

    def to_columns(
        self, pools: Optional[ColumnPools] = None
    ) -> Tuple[ColumnarRadioEvents, ColumnarServiceRecords]:
        """Dictionary-encode this batch onto columnar stores.

        Passing the same ``pools`` across a window's batches keeps the
        interning dictionaries shared, which is the intended feed for
        the incremental catalog engine
        (:meth:`repro.core.catalog.CatalogBuilder.update`): one day's
        column block per call, bounded memory across a 22-day replay.
        """
        return from_record_streams(self.radio_events, self.service_records, pools)


class StreamingMNOSimulator:
    """Day-by-day generator over the same population model.

    Usage::

        sim = StreamingMNOSimulator(eco, MNOConfig(n_devices=100_000))
        for batch in sim.days():
            write_radio_events(f"radio_{batch.day:02d}.jsonl", batch.radio_events)
    """

    def __init__(self, ecosystem: Ecosystem, config: Optional[MNOConfig] = None):
        self.ecosystem = ecosystem
        self.config = config or MNOConfig()
        # Reuse the batch simulator's per-day emitters; only the
        # iteration order differs.
        self._inner = MNOSimulator(ecosystem, self.config)
        self._population: Optional[List[PlannedDevice]] = None
        self._by_day: Dict[int, List[PlannedDevice]] = {}

    @property
    def population(self) -> List[PlannedDevice]:
        if self._population is None:
            self._population = PopulationBuilder(self.ecosystem, self.config).build()
            for plan in self._population:
                for day in plan.active_days:
                    self._by_day.setdefault(int(day), []).append(plan)
        return self._population

    def ground_truth(self) -> Dict[str, GroundTruthEntry]:
        """Ground truth for the full population (small; kept resident)."""
        truth: Dict[str, GroundTruthEntry] = {}
        for plan in self.population:
            truth[plan.device_id] = GroundTruthEntry(
                device_id=plan.device_id,
                device_class=plan.device.device_class,
                provenance=plan.device.provenance,
                vertical=plan.device.vertical,
                profile=plan.segment.name,
                home_country_iso=plan.device.home_operator.country.iso,
                smip_native=plan.segment.smip_native,
                smip_roaming=plan.segment.smip_roaming,
            )
        return truth

    def generate_day(self, day: int) -> DayBatch:
        """Generate one day's records for every device active that day."""
        if not 0 <= day < self.config.window_days:
            raise ValueError(f"day {day} outside the {self.config.window_days}-day window")
        _ = self.population  # ensure the per-day index exists
        radio: List[RadioEvent] = []
        service: List[ServiceRecord] = []
        for plan in self._by_day.get(day, []):
            if not plan.segment.outbound:
                self._inner._emit_radio_day(plan, day, radio)
            self._inner._emit_service_day(plan, day, service)
        radio.sort(key=lambda e: e.timestamp)
        service.sort(key=lambda r: r.timestamp)
        return DayBatch(day=day, radio_events=radio, service_records=service)

    def generate_day_sharded(self, day: int, n_workers: int = 1) -> DayBatch:
        """Generate one day's records sharded by device across workers.

        Every device draws from its own per-(device, day) RNG substream
        (:func:`_device_day_rng`), so the batch is **worker-count
        invariant**: any ``n_workers`` — including 1 — yields the exact
        same records.  It is *not* bitwise-equal to :meth:`generate_day`,
        whose devices share one sequential stream; this mirrors the
        existing batch-vs-streaming determinism caveat (see the module
        docstring).  Records are sorted by ``(timestamp, device_id)`` so
        even tie order is shard-independent.
        """
        if not 0 <= day < self.config.window_days:
            raise ValueError(f"day {day} outside the {self.config.window_days}-day window")
        _ = self.population  # build the index once, before workers fork
        n_shards = max(n_workers, 1)
        payloads = [(day, index, n_shards) for index in range(n_shards)]
        parts = map_shards(_generate_day_shard, payloads, n_workers, context=self)
        radio = [event for part, _ in parts for event in part]
        service = [record for _, part in parts for record in part]
        radio.sort(key=lambda e: (e.timestamp, e.device_id))
        service.sort(key=lambda r: (r.timestamp, r.device_id))
        return DayBatch(day=day, radio_events=radio, service_records=service)

    def days(self, n_workers: int = 1) -> Iterator[DayBatch]:
        """Iterate the whole window, one bounded batch at a time.

        ``n_workers > 1`` generates each day via
        :meth:`generate_day_sharded` (worker-count-invariant substream
        RNG); the default keeps the historical single-stream path.
        """
        for day in range(self.config.window_days):
            if n_workers > 1:
                yield self.generate_day_sharded(day, n_workers=n_workers)
            else:
                yield self.generate_day(day)

    def active_devices_on(self, day: int) -> Set[str]:
        """Device IDs scheduled to be active on ``day``."""
        _ = self.population
        return {plan.device_id for plan in self._by_day.get(day, [])}


# -- day-partition round trip -------------------------------------------------

def day_partition_paths(directory: PathLike, day: int) -> Tuple[Path, Path]:
    """(radio, service) JSONL paths for one day partition."""
    base = Path(directory)
    return base / f"radio_{day:02d}.jsonl", base / f"service_{day:02d}.jsonl"


def write_day_batch(directory: PathLike, batch: DayBatch) -> Tuple[Path, Path]:
    """Persist one :class:`DayBatch` as its two JSONL partitions."""
    radio_path, service_path = day_partition_paths(directory, batch.day)
    write_radio_events(radio_path, batch.radio_events)
    write_service_records(service_path, batch.service_records)
    return radio_path, service_path


def load_day_batch(
    directory: PathLike, day: int, lenient: bool = False
) -> Tuple[DayBatch, IngestReport]:
    """Read one day partition back into a :class:`DayBatch`.

    The returned :class:`IngestReport` merges both files' reports; in
    strict mode (default) any bad row raises with its file and line, in
    lenient mode bad rows are quarantined and the batch holds whatever
    survived, re-sorted by timestamp (dirty partitions may interleave
    out of order).
    """
    radio_path, service_path = day_partition_paths(directory, day)
    events, radio_report = ingest_radio_events(radio_path, lenient=lenient)
    records, service_report = ingest_service_records(service_path, lenient=lenient)
    events.sort(key=lambda e: e.timestamp)
    records.sort(key=lambda r: r.timestamp)
    batch = DayBatch(day=day, radio_events=events, service_records=records)
    return batch, radio_report.merge(service_report)


def load_day_batch_with_retry(
    directory: PathLike,
    day: int,
    lenient: bool = False,
    policy: Optional[RetryPolicy] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[DayBatch, IngestReport]:
    """:func:`load_day_batch` under the sanctioned retry policy.

    Transient I/O failures (``OSError``: flaky network filesystems,
    partitions still being published) retry under ``policy`` — and,
    crucially, **no attempt's** :class:`IngestReport` is dropped on the
    floor: a report produced before the attempt failed on the other
    file is merged into the returned one, so every row read and every
    quarantined line across the retried loads stays accounted for in
    the pipeline's :class:`~repro.pipeline.DegradationReport`.  (The
    merged counts are per *read*: a day whose radio file was read twice
    reports both reads.)  Delays are drawn, never slept — the policy
    bounds attempts, retrying reads needs no pacing here.
    """
    retry_policy = policy if policy is not None else RetryPolicy()
    jitter_rng = rng if rng is not None else np.random.default_rng(0)
    radio_path, service_path = day_partition_paths(directory, day)
    dropped: List[IngestReport] = []

    def attempt() -> Tuple[DayBatch, IngestReport]:
        events, radio_report = ingest_radio_events(radio_path, lenient=lenient)
        try:
            records, service_report = ingest_service_records(
                service_path, lenient=lenient
            )
        except OSError:
            dropped.append(radio_report)
            raise
        events.sort(key=lambda e: e.timestamp)
        records.sort(key=lambda r: r.timestamp)
        batch = DayBatch(day=day, radio_events=events, service_records=records)
        return batch, radio_report.merge(service_report)

    batch, report = call_with_retry(
        attempt, retry_policy, jitter_rng, retry_on=(OSError,)
    )
    for partial in reversed(dropped):
        report = partial.merge(report)
    return batch, report
