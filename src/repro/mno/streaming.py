"""Bounded-memory, day-by-day MNO dataset generation.

The in-memory :class:`~repro.mno.simulator.MNOSimulator` materializes
the whole 22-day record set at once — fine at bench scale, hopeless at
the paper's 39.6M devices.  :class:`StreamingMNOSimulator` generates the
same records *day by day*: each yielded :class:`DayBatch` holds only one
day's events, so memory stays O(devices + one day) and batches can be
written straight to JSONL partitions.

Determinism note: because the streaming generator draws per-day rather
than per-device, its RNG consumption order differs from the batch
simulator's; the two produce statistically identical but not bitwise
identical datasets for the same seed.  Within the streaming simulator,
the same config always reproduces the same batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set


from repro.datasets.containers import GroundTruthEntry
from repro.ecosystem import Ecosystem
from repro.mno.config import MNOConfig
from repro.mno.population import PlannedDevice, PopulationBuilder
from repro.mno.simulator import MNOSimulator
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent


@dataclass
class DayBatch:
    """One day's worth of generated records."""

    day: int
    radio_events: List[RadioEvent]
    service_records: List[ServiceRecord]

    @property
    def n_records(self) -> int:
        return len(self.radio_events) + len(self.service_records)


class StreamingMNOSimulator:
    """Day-by-day generator over the same population model.

    Usage::

        sim = StreamingMNOSimulator(eco, MNOConfig(n_devices=100_000))
        for batch in sim.days():
            write_radio_events(f"radio_{batch.day:02d}.jsonl", batch.radio_events)
    """

    def __init__(self, ecosystem: Ecosystem, config: Optional[MNOConfig] = None):
        self.ecosystem = ecosystem
        self.config = config or MNOConfig()
        # Reuse the batch simulator's per-day emitters; only the
        # iteration order differs.
        self._inner = MNOSimulator(ecosystem, self.config)
        self._population: Optional[List[PlannedDevice]] = None
        self._by_day: Dict[int, List[PlannedDevice]] = {}

    @property
    def population(self) -> List[PlannedDevice]:
        if self._population is None:
            self._population = PopulationBuilder(self.ecosystem, self.config).build()
            for plan in self._population:
                for day in plan.active_days:
                    self._by_day.setdefault(int(day), []).append(plan)
        return self._population

    def ground_truth(self) -> Dict[str, GroundTruthEntry]:
        """Ground truth for the full population (small; kept resident)."""
        truth: Dict[str, GroundTruthEntry] = {}
        for plan in self.population:
            truth[plan.device_id] = GroundTruthEntry(
                device_id=plan.device_id,
                device_class=plan.device.device_class,
                provenance=plan.device.provenance,
                vertical=plan.device.vertical,
                profile=plan.segment.name,
                home_country_iso=plan.device.home_operator.country.iso,
                smip_native=plan.segment.smip_native,
                smip_roaming=plan.segment.smip_roaming,
            )
        return truth

    def generate_day(self, day: int) -> DayBatch:
        """Generate one day's records for every device active that day."""
        if not 0 <= day < self.config.window_days:
            raise ValueError(f"day {day} outside the {self.config.window_days}-day window")
        _ = self.population  # ensure the per-day index exists
        radio: List[RadioEvent] = []
        service: List[ServiceRecord] = []
        for plan in self._by_day.get(day, []):
            if not plan.segment.outbound:
                self._inner._emit_radio_day(plan, day, radio)
            self._inner._emit_service_day(plan, day, service)
        radio.sort(key=lambda e: e.timestamp)
        service.sort(key=lambda r: r.timestamp)
        return DayBatch(day=day, radio_events=radio, service_records=service)

    def days(self) -> Iterator[DayBatch]:
        """Iterate the whole window, one bounded batch at a time."""
        for day in range(self.config.window_days):
            yield self.generate_day(day)

    def active_devices_on(self, day: int) -> Set[str]:
        """Device IDs scheduled to be active on ``day``."""
        _ = self.population
        return {plan.device_id for plan in self._by_day.get(day, [])}
