"""GGSN resource pools and the SMIP isolation rationale (§4.4).

"Based on private communications, we learned that the MNO uses a
dedicated IMSI range for the SIMs installed in smart meters.  Moreover,
the operator has dedicated resources for the GGSN for these SIMs.  The
rationale of this choice is to control the impact of such devices on the
native users as well as better control performance of the smart meter
network."

This module models that packet-core arrangement:

* :class:`GGSNPool` — one gateway pool with a session-rate capacity;
* :class:`GGSNDeployment` — pools plus a routing rule (dedicated APN
  patterns first, hashed across shared pools otherwise);
* :func:`pool_load_profile` — hourly session load per pool from the
  dataset's data xDRs;
* :func:`isolation_benefit` — the §4.4 rationale quantified: the
  consumer pools' peak load with and without the meters' dedicated
  pool, which matters precisely because meters report in an off-peak
  *batch* (see :mod:`repro.analysis.diurnal`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.apn import parse_apn
from repro.signaling.cdr import ServiceRecord


@dataclass(frozen=True)
class GGSNPool:
    """One gateway pool.

    ``capacity_per_hour`` is the engineering limit on data-session
    activations the pool handles gracefully per hour; loads above it
    count as overload.  ``dedicated_apn_prefixes`` route matching APNs
    here exclusively (empty = shared pool).
    """

    name: str
    capacity_per_hour: float
    dedicated_apn_prefixes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.capacity_per_hour <= 0:
            raise ValueError(f"pool {self.name}: capacity must be positive")

    @property
    def is_dedicated(self) -> bool:
        return bool(self.dedicated_apn_prefixes)

    def serves_apn(self, apn: str) -> bool:
        network_id = parse_apn(apn).network_id
        return any(network_id.startswith(p) for p in self.dedicated_apn_prefixes)


class GGSNDeployment:
    """A set of pools plus the session-routing rule."""

    def __init__(self, pools: Sequence[GGSNPool]):
        if not pools:
            raise ValueError("a deployment needs at least one pool")
        names = [p.name for p in pools]
        if len(set(names)) != len(names):
            raise ValueError("duplicate pool names")
        self.pools: List[GGSNPool] = list(pools)
        self._shared = [p for p in self.pools if not p.is_dedicated]
        if not self._shared:
            raise ValueError("a deployment needs at least one shared pool")

    def route(self, apn: Optional[str]) -> GGSNPool:
        """Route one data session to a pool.

        Dedicated pools match first (by APN prefix); everything else —
        including APN-less sessions — hashes across the shared pools.
        """
        if apn:
            for pool in self.pools:
                if pool.is_dedicated and pool.serves_apn(apn):
                    return pool
        key = apn or ""
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return self._shared[digest[0] % len(self._shared)]


@dataclass
class PoolLoad:
    """One pool's hourly load profile over the observation window."""

    pool: GGSNPool
    hourly_sessions: np.ndarray  # shape (window_hours,)

    @property
    def peak(self) -> float:
        return float(self.hourly_sessions.max())

    @property
    def peak_hour_of_day(self) -> int:
        return int(np.argmax(self.hourly_sessions) % 24)

    @property
    def overload_hours(self) -> int:
        return int((self.hourly_sessions > self.pool.capacity_per_hour).sum())

    @property
    def utilization(self) -> float:
        """Peak load over capacity."""
        return self.peak / self.pool.capacity_per_hour


def pool_load_profile(
    deployment: GGSNDeployment,
    records: Iterable[ServiceRecord],
    window_days: int,
) -> Dict[str, PoolLoad]:
    """Route every data session and accumulate hourly load per pool."""
    if window_days <= 0:
        raise ValueError("window_days must be positive")
    hours = window_days * 24
    loads = {pool.name: np.zeros(hours) for pool in deployment.pools}
    for record in records:
        if not record.is_data:
            continue
        hour = int(record.timestamp // 3600.0)
        if 0 <= hour < hours:
            pool = deployment.route(record.apn)
            loads[pool.name][hour] += 1.0
    return {
        pool.name: PoolLoad(pool=pool, hourly_sessions=loads[pool.name])
        for pool in deployment.pools
    }


@dataclass
class IsolationBenefit:
    """The §4.4 rationale, quantified."""

    shared_peak_with_isolation: float
    shared_peak_without_isolation: float
    meter_pool_peak: float
    meter_pool_peak_hour: int

    @property
    def peak_increase_without_isolation(self) -> float:
        """Fractional increase of the consumer pools' peak load when the
        meter traffic is dumped onto them."""
        if self.shared_peak_with_isolation == 0:
            return float("inf") if self.shared_peak_without_isolation > 0 else 0.0
        return (
            self.shared_peak_without_isolation / self.shared_peak_with_isolation
            - 1.0
        )


def isolation_benefit(
    records: Iterable[ServiceRecord],
    window_days: int,
    meter_apn_prefixes: Tuple[str, ...] = ("smartmeter.smip", "smhp."),
    shared_pools: int = 2,
    shared_capacity_per_hour: float = 5000.0,
    meter_capacity_per_hour: float = 2000.0,
) -> IsolationBenefit:
    """Compare consumer-pool peaks with and without the dedicated pool."""
    records = list(records)
    isolated = GGSNDeployment(
        [
            GGSNPool("smip-dedicated", meter_capacity_per_hour, meter_apn_prefixes),
        ]
        + [
            GGSNPool(f"shared-{i}", shared_capacity_per_hour)
            for i in range(shared_pools)
        ]
    )
    flat = GGSNDeployment(
        [
            GGSNPool(f"shared-{i}", shared_capacity_per_hour)
            for i in range(shared_pools)
        ]
    )
    iso_loads = pool_load_profile(isolated, records, window_days)
    flat_loads = pool_load_profile(flat, records, window_days)

    iso_shared_peak = max(
        load.peak for name, load in iso_loads.items() if name.startswith("shared")
    )
    flat_shared_peak = max(load.peak for load in flat_loads.values())
    meter_load = iso_loads["smip-dedicated"]
    return IsolationBenefit(
        shared_peak_with_isolation=iso_shared_peak,
        shared_peak_without_isolation=flat_shared_peak,
        meter_pool_peak=meter_load.peak,
        meter_pool_peak_hour=meter_load.peak_hour_of_day,
    )
