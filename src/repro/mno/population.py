"""Population synthesis for the MNO simulator.

Turns the segment table of :mod:`repro.mno.config` into a list of
:class:`PlannedDevice` — each with a full identity (IMSI from the right
operator, IMEI from the right hardware pool), materialized traffic model,
mobility model anchored inside the observed country, APN strings, active
days, and the bookkeeping the simulator and ground truth need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cellular.countries import Country
from repro.cellular.geo import GeoPoint, scatter_points
from repro.cellular.identifiers import IMEI, IMSI
from repro.cellular.operators import Operator
from repro.cellular.rats import RAT
from repro.cellular.tac_db import (
    DeviceModel,
    GSMALabel,
    M2M_MODULE_VENDORS,
    TACDatabase,
)
from repro.core.apn import (
    ENERGY_COMPANIES,
    consumer_apn,
    energy_meter_apn,
    generic_operator_apn,
    vertical_apn,
)
from repro.devices.device import Device, DeviceClass, SimProvenance
from repro.devices.mobility_models import (
    CommuterMobility,
    MobilityModel,
    StationaryMobility,
    VehicularMobility,
)
from repro.devices.profiles import BehaviorProfile, MobilityKind, default_profiles
from repro.devices.traffic_models import TrafficModel
from repro.ecosystem import Ecosystem
from repro.mno.config import APNBehavior, MNOConfig, ModelPool, SegmentSpec
from repro.mno.smip import SMIP_IMSI_RANGE

#: The APN the study MNO dedicates to its SMIP smart-meter fleet.
SMIP_NATIVE_APN = "smartmeter.smip.gb.gprs"


@dataclass
class PlannedDevice:
    """One fully-specified device ready for event generation."""

    device: Device
    segment: SegmentSpec
    profile: BehaviorProfile
    traffic: TrafficModel
    rats_used: frozenset
    uses_voice: bool
    uses_data: bool
    voice_event_fraction: float
    apns: List[str]
    active_days: np.ndarray
    mobility: Optional[MobilityModel]
    outbound_visited_plmn: Optional[str] = None

    @property
    def device_id(self) -> str:
        return self.device.device_id

    @property
    def data_rats(self) -> Tuple[RAT, ...]:
        return tuple(sorted(self.rats_used, key=lambda r: r.generation))

    @property
    def voice_rats(self) -> Tuple[RAT, ...]:
        return tuple(
            sorted(
                (r for r in self.rats_used if r is not RAT.LTE),
                key=lambda r: r.generation,
            )
        )


def _slug(operator: Operator) -> str:
    return operator.name.replace("-", "").lower()


class PopulationBuilder:
    """Draws the device population from the segment table."""

    def __init__(self, ecosystem: Ecosystem, config: MNOConfig):
        self.ecosystem = ecosystem
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._profiles = default_profiles()
        self._msin_counters: Dict[str, int] = {}
        self._smip_msin = SMIP_IMSI_RANGE[0]
        self._pools = self._build_model_pools(ecosystem.tac_db)

    # -- hardware pools -----------------------------------------------------

    @staticmethod
    def _build_model_pools(tac_db: TACDatabase) -> Dict[ModelPool, List[DeviceModel]]:
        pools: Dict[ModelPool, List[DeviceModel]] = {pool: [] for pool in ModelPool}
        for model in tac_db:
            if model.label is GSMALabel.SMARTPHONE:
                pools[ModelPool.SMARTPHONE].append(model)
            elif model.label is GSMALabel.FEATURE_PHONE:
                pools[ModelPool.FEATURE_PHONE].append(model)
            elif model.manufacturer in M2M_MODULE_VENDORS:
                pools[ModelPool.M2M_MODULE].append(model)
            else:
                pools[ModelPool.LONG_TAIL].append(model)
        for pool, models in pools.items():
            if not models:
                raise ValueError(f"TAC catalog has no models for pool {pool.value}")
            models.sort(key=lambda m: m.tac)
        return pools

    def _pick_model(
        self, segment: SegmentSpec, rats: frozenset, rng: np.random.Generator
    ) -> Tuple[DeviceModel, frozenset]:
        """Pick hardware compatible with the segment's RAT usage.

        SMIP-roaming meters come only from Gemalto and Telit (§4.4).  If
        no pool model supports every requested RAT, usage degrades to the
        supported intersection — mirroring how deployed fleets behave.
        """
        pool = list(self._pools[segment.model_pool])
        if segment.smip_roaming:
            pool = [m for m in pool if m.manufacturer in ("Gemalto", "Telit")]
        compatible = [m for m in pool if rats <= m.bands]
        if compatible:
            model = compatible[int(rng.integers(len(compatible)))]
            return model, rats
        model = pool[int(rng.integers(len(pool)))]
        usable = frozenset(rats & model.bands) or frozenset({RAT.GSM})
        return model, usable

    # -- identity ------------------------------------------------------------

    def _home_operator(self, segment: SegmentSpec, rng: np.random.Generator) -> Operator:
        eco = self.ecosystem
        if segment.provenance is SimProvenance.HOME:
            return eco.uk_mno
        if segment.provenance is SimProvenance.MVNO:
            mvnos = eco.mvnos_of_study_mno()
            return mvnos[int(rng.integers(len(mvnos)))]
        if segment.provenance is SimProvenance.NATIONAL:
            others = [
                op
                for op in eco.operators.mnos_in_country("GB")
                if op.plmn != eco.uk_mno.plmn
            ]
            return others[int(rng.integers(len(others)))]
        # International: sample the home country, then pick its operator.
        assert segment.home_weights is not None
        isos = list(segment.home_weights)
        weights = np.array([segment.home_weights[i] for i in isos], dtype=float)
        iso = isos[int(rng.choice(len(isos), p=weights / weights.sum()))]
        if segment.smip_roaming or (iso == "NL" and segment.apn is APNBehavior.NONE):
            # IoT SIMs from the Netherlands are provisioned by NL-IoT.
            return eco.nl_iot_operator
        if iso in eco.platform_hmnos and segment.device_class is DeviceClass.M2M:
            return eco.platform_hmnos[iso]
        candidates = eco.operators.mnos_in_country(iso)
        return candidates[int(rng.integers(len(candidates)))]

    def _allocate_imsi(self, operator: Operator, smip_native: bool) -> IMSI:
        if smip_native:
            msin = self._smip_msin
            self._smip_msin += 1
            if msin >= SMIP_IMSI_RANGE[1]:
                raise RuntimeError("SMIP IMSI range exhausted")
            return IMSI(plmn=operator.plmn, msin=msin)
        key = str(operator.plmn)
        msin = self._msin_counters.get(key, 1)
        self._msin_counters[key] = msin + 1
        return IMSI(plmn=operator.plmn, msin=msin)

    # -- per-device attributes --------------------------------------------------

    def _sample_rats(self, segment: SegmentSpec, rng: np.random.Generator) -> frozenset:
        weights = np.array([w for _, w in segment.rat_mix])
        index = int(rng.choice(len(segment.rat_mix), p=weights / weights.sum()))
        return segment.rat_mix[index][0]

    def _make_apns(
        self, segment: SegmentSpec, home: Operator, rng: np.random.Generator
    ) -> List[str]:
        choice = int(rng.integers(8))
        if segment.apn is APNBehavior.NONE:
            return []
        if segment.apn is APNBehavior.CONSUMER:
            return [consumer_apn(_slug(home), choice)]
        if segment.apn is APNBehavior.ENERGY_ROAMING:
            company = ENERGY_COMPANIES[choice % len(ENERGY_COMPANIES)]
            return [energy_meter_apn(company, home.plmn.mcc, home.plmn.mnc)]
        if segment.apn is APNBehavior.SMARTMETER_NATIVE:
            return [SMIP_NATIVE_APN]
        if segment.apn is APNBehavior.GENERIC:
            return [generic_operator_apn(_slug(home), choice)]
        # VERTICAL, possibly degraded to a generic operator string.
        assert segment.vertical is not None
        if rng.random() < segment.generic_apn_fraction:
            return [generic_operator_apn(_slug(home), choice)]
        return [vertical_apn(segment.vertical, choice)]

    def _make_mobility(
        self, kind: MobilityKind, country: Country, rng: np.random.Generator
    ) -> MobilityModel:
        center = GeoPoint(country.lat, country.lon)
        anchor = scatter_points(center, country.radius_km * 0.8, 1, rng)[0]
        if kind is MobilityKind.STATIONARY:
            return StationaryMobility(anchor=anchor)
        if kind is MobilityKind.COMMUTER:
            work = scatter_points(anchor, 20.0, 1, rng)[0]
            return CommuterMobility(home=anchor, work=work)
        # Vehicular / international fleets: long trajectories.  The MNO
        # only sees the in-country part of an international tour, so both
        # kinds are vehicular from its point of view.
        leg = 60.0 if kind is MobilityKind.INTERNATIONAL else 40.0
        return VehicularMobility(start=anchor, leg_km=leg)

    def _outbound_visited(self, rng: np.random.Generator) -> str:
        """Where our outbound roamers went (any EU partner network)."""
        partners = [
            op
            for op in self.ecosystem.operators
            if not op.is_mvno and op.country.eu_roaming and op.country.iso != "GB"
        ]
        return str(partners[int(rng.integers(len(partners)))].plmn)

    # -- assembly ------------------------------------------------------------------

    def _plan_one(self, segment: SegmentSpec) -> PlannedDevice:
        rng = self._rng
        home = self._home_operator(segment, rng)
        imsi = self._allocate_imsi(home, segment.smip_native)
        rats = self._sample_rats(segment, rng)
        model, rats = self._pick_model(segment, rats, rng)
        imei = IMEI(tac=model.tac, serial=int(rng.integers(10**6)))
        device = Device(
            imsi=imsi,
            imei=imei,
            model=model,
            home_operator=home,
            device_class=segment.device_class,
            vertical=segment.vertical,
            provenance=segment.provenance,
            behavior=segment.profile,
        )
        profile = self._profiles[segment.profile]
        traffic = profile.traffic.materialize(rng)
        uses_voice = bool(rng.random() < profile.p_voice)
        uses_data = bool(rng.random() < profile.p_data) and segment.apn is not APNBehavior.NONE
        if not uses_voice and not uses_data:
            uses_voice = True  # a device with no service at all is invisible
        voice_event_fraction = (
            1.0 if not uses_data else (self.config.voice_event_fraction if uses_voice else 0.0)
        )
        observed_country = self.ecosystem.uk_mno.country
        return PlannedDevice(
            device=device,
            segment=segment,
            profile=profile,
            traffic=traffic,
            rats_used=rats,
            uses_voice=uses_voice,
            uses_data=uses_data,
            voice_event_fraction=voice_event_fraction,
            apns=self._make_apns(segment, home, rng) if uses_data else [],
            active_days=profile.presence.sample_active_days(
                self.config.window_days, rng
            ),
            mobility=(
                None
                if segment.outbound
                else self._make_mobility(profile.mobility, observed_country, rng)
            ),
            outbound_visited_plmn=(
                self._outbound_visited(rng) if segment.outbound else None
            ),
        )

    def build(self) -> List[PlannedDevice]:
        """Materialize the whole population (deterministic per seed)."""
        fractions = np.array([s.fraction for s in self.config.segments])
        counts = np.floor(fractions * self.config.n_devices).astype(int)
        remainder = self.config.n_devices - int(counts.sum())
        for index in np.argsort(-fractions)[:remainder]:
            counts[index] += 1
        planned: List[PlannedDevice] = []
        for segment, count in zip(self.config.segments, counts):
            for _ in range(int(count)):
                planned.append(self._plan_one(segment))
        return planned
