"""Event generation for the MNO dataset: 22 days of probe records.

For every planned device and every day it is active, the simulator:

1. rolls the device's mobility model to get the day's sector visits,
2. draws the day's radio events (attach / routing-area-update / detach /
   authentication), splitting them between voice- and data-plane
   interfaces per the device's service propensities, snapping each to
   the nearest sector of the event's RAT,
3. draws voice CDRs and data xDRs (with the device's APN) for the
   service-usage side,

and, for outbound roamers, emits only CDR/xDRs from the visited network
(radio signaling for outbound roamers stays in the visited country,
§4.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cellular.rats import RAT
from repro.datasets.containers import GroundTruthEntry, MNODataset
from repro.ecosystem import Ecosystem
from repro.mno.config import MNOConfig
from repro.mno.population import PlannedDevice, PopulationBuilder
from repro.signaling.cdr import ServiceRecord, ServiceType
from repro.signaling.events import RadioEvent, RadioInterface
from repro.signaling.procedures import MessageType, ResultCode

#: Mid-session event-type mix (§7.1 monitors Attach, Routing Area Update
#: and Detach; authentications ride along).  Day sessions are structured:
#: the first event of a device-day is an ATTACH and the last a DETACH;
#: events in between draw from this mix.
_MID_EVENT_TYPES = (
    MessageType.ROUTING_AREA_UPDATE,
    MessageType.AUTHENTICATION,
    MessageType.ATTACH,   # intra-day re-attach after a coverage gap
    MessageType.DETACH,
)
_MID_EVENT_CUM = np.cumsum([0.70, 0.14, 0.08, 0.08])


def _event_type_for(index: int, count: int, pick: float) -> MessageType:
    """Session-structured event type: attach first, detach last, mixed
    procedures in between."""
    if index == 0:
        return MessageType.ATTACH
    if index == count - 1 and count > 1:
        return MessageType.DETACH
    return _MID_EVENT_TYPES[int(np.searchsorted(_MID_EVENT_CUM, pick))]


class MNOSimulator:
    """Builds :class:`MNODataset` instances from an :class:`MNOConfig`."""

    def __init__(self, ecosystem: Ecosystem, config: Optional[MNOConfig] = None):
        self.ecosystem = ecosystem
        self.config = config or MNOConfig()
        self._rng = np.random.default_rng(self.config.seed + 1)
        self._observer_plmn = str(ecosystem.uk_mno.plmn)

    # -- per-day helpers ----------------------------------------------------

    def _day_sectors(
        self,
        plan: PlannedDevice,
        day: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Optional[Tuple[Dict[RAT, List[int]], np.ndarray]]:
        """Resolve the day's visits to per-RAT nearest sectors.

        Returns ({rat: [sector_id per visit]}, cumulative visit weights)
        or None when the mobility model is absent (outbound devices).
        ``rng`` overrides the simulator's shared stream — the streaming
        layer passes per-(device, day) substreams so generation is
        independent of iteration and worker order.
        """
        if plan.mobility is None:
            return None
        if rng is None:
            rng = self._rng
        visits = plan.mobility.visits_for_day(day, rng)
        weights = np.array([w for _, w in visits], dtype=float)
        cum = np.cumsum(weights / weights.sum())
        catalog = self.ecosystem.uk_sectors
        sectors: Dict[RAT, List[int]] = {}
        for rat in plan.rats_used:
            per_visit: List[int] = []
            for position, _ in visits:
                sector = catalog.nearest(position, rat)
                # The observer supports all three RATs, so lookup cannot
                # miss for RATs the device actually uses.
                assert sector is not None
                per_visit.append(sector.sector_id)
            sectors[rat] = per_visit
        return sectors, cum

    def _emit_radio_day(
        self,
        plan: PlannedDevice,
        day: int,
        out: List[RadioEvent],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rng is None:
            rng = self._rng
        n = plan.traffic.draw_signaling_count(rng)
        if n <= 0:
            return
        resolved = self._day_sectors(plan, day, rng=rng)
        if resolved is None:
            return
        sectors_by_rat, visit_cum = resolved
        timestamps = plan.traffic.event_timestamps(day, n, rng)

        voice_rats = plan.voice_rats
        data_rats = plan.data_rats
        plane_draws = rng.random(n)
        visit_picks = np.searchsorted(visit_cum, rng.random(n))
        type_picks = rng.random(n)
        fail_draws = rng.random(n) < plan.segment.event_failure_prob
        rat_picks = rng.random(n)

        sim_plmn = plan.device.sim_plmn
        tac = plan.device.tac
        device_id = plan.device_id
        for i in range(n):
            voice = bool(
                voice_rats
                and plan.voice_event_fraction > 0.0
                and plane_draws[i] < plan.voice_event_fraction
            )
            rats = voice_rats if voice else data_rats
            rat = rats[int(rat_picks[i] * len(rats))]
            interface = RadioInterface.for_plane(rat, voice)
            sector_id = sectors_by_rat[rat][int(visit_picks[i])]
            result = (
                ResultCode.SYSTEM_FAILURE if fail_draws[i] else ResultCode.OK
            )
            out.append(
                RadioEvent(
                    device_id=device_id,
                    timestamp=float(timestamps[i]),
                    sim_plmn=sim_plmn,
                    tac=tac,
                    sector_id=sector_id,
                    interface=interface,
                    event_type=_event_type_for(i, n, float(type_picks[i])),
                    result=result,
                )
            )

    def _emit_service_day(
        self,
        plan: PlannedDevice,
        day: int,
        out: List[ServiceRecord],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rng is None:
            rng = self._rng
        visited = plan.outbound_visited_plmn or self._observer_plmn
        sim_plmn = plan.device.sim_plmn
        device_id = plan.device_id
        base = day * 86400.0

        if plan.uses_voice:
            for _ in range(plan.traffic.draw_call_count(rng)):
                out.append(
                    ServiceRecord(
                        device_id=device_id,
                        timestamp=base + float(rng.random()) * 86400.0,
                        sim_plmn=sim_plmn,
                        visited_plmn=visited,
                        service=ServiceType.VOICE,
                        duration_s=plan.traffic.draw_call_duration_s(rng),
                    )
                )
        if plan.uses_data and plan.apns:
            sessions = plan.traffic.draw_data_sessions(rng)
            if sessions <= 0:
                return
            apn = plan.apns[int(rng.integers(len(plan.apns)))]
            for _ in range(sessions):
                out.append(
                    ServiceRecord(
                        device_id=device_id,
                        timestamp=base + float(rng.random()) * 86400.0,
                        sim_plmn=sim_plmn,
                        visited_plmn=visited,
                        service=ServiceType.DATA,
                        bytes_total=plan.traffic.draw_session_bytes(rng),
                        apn=apn,
                    )
                )

    # -- public API ---------------------------------------------------------------

    def simulate(
        self, population: Optional[List[PlannedDevice]] = None
    ) -> MNODataset:
        """Generate the full dataset (deterministic per config seed)."""
        if population is None:
            population = PopulationBuilder(self.ecosystem, self.config).build()

        radio_events: List[RadioEvent] = []
        service_records: List[ServiceRecord] = []
        ground_truth: Dict[str, GroundTruthEntry] = {}

        for plan in population:
            for day in plan.active_days:
                day = int(day)
                if not plan.segment.outbound:
                    self._emit_radio_day(plan, day, radio_events)
                self._emit_service_day(plan, day, service_records)
            ground_truth[plan.device_id] = GroundTruthEntry(
                device_id=plan.device_id,
                device_class=plan.device.device_class,
                provenance=plan.device.provenance,
                vertical=plan.device.vertical,
                profile=plan.segment.name,
                home_country_iso=plan.device.home_operator.country.iso,
                smip_native=plan.segment.smip_native,
                smip_roaming=plan.segment.smip_roaming,
            )

        radio_events.sort(key=lambda e: e.timestamp)
        service_records.sort(key=lambda r: r.timestamp)
        return MNODataset(
            observer=self.ecosystem.uk_mno,
            radio_events=radio_events,
            service_records=service_records,
            tac_db=self.ecosystem.tac_db,
            sector_catalog=self.ecosystem.uk_sectors,
            window_days=self.config.window_days,
            ground_truth=ground_truth,
        )


def simulate_mno_dataset(
    ecosystem: Ecosystem, config: Optional[MNOConfig] = None
) -> MNODataset:
    """Convenience wrapper: one call from ecosystem to dataset."""
    return MNOSimulator(ecosystem, config).simulate()
