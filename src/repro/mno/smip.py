"""SMIP (Smart Metering Implementation Programme) helpers (§4.4, §7).

The study MNO provisions its native smart-meter SIMs from a dedicated
IMSI range (and dedicated GGSN resources); the roaming smart meters
arrive on SIMs of a single Dutch operator and identify themselves
through energy-company APN patterns.  This module holds the dedicated
range and the dataset-side selectors for both fleets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Set, Tuple

from repro.cellular.identifiers import IMSI
from repro.core.apn import ENERGY_COMPANIES, parse_apn
from repro.core.catalog import DeviceSummary
from repro.datasets.containers import GroundTruthEntry

#: The dedicated MSIN range [lo, hi) the study MNO reserves for SMIP
#: smart-meter SIMs.
SMIP_IMSI_RANGE: Tuple[int, int] = (500_000_000, 600_000_000)


def imsi_in_smip_range(imsi: IMSI) -> bool:
    """Is this one of the MNO's dedicated smart-meter SIMs?"""
    return SMIP_IMSI_RANGE[0] <= imsi.msin < SMIP_IMSI_RANGE[1]


def smip_devices(
    ground_truth: Mapping[str, GroundTruthEntry]
) -> Tuple[Set[str], Set[str]]:
    """Ground-truth SMIP membership: (native device IDs, roaming IDs)."""
    native = {d for d, g in ground_truth.items() if g.smip_native}
    roaming = {d for d, g in ground_truth.items() if g.smip_roaming}
    return native, roaming


def identify_smip_roaming(
    summaries: Mapping[str, DeviceSummary], home_plmn: str
) -> Set[str]:
    """The paper's §4.4 inference, run on observables only.

    A device is inferred to be a roaming SMIP meter if (a) its APN's
    Network Identifier names one of the UK energy companies and (b) its
    SIM comes from the expected Dutch operator.
    """
    hits: Set[str] = set()
    for device_id, summary in summaries.items():
        if summary.sim_plmn != home_plmn:
            continue
        for apn in summary.apns:
            network_id = parse_apn(apn).network_id
            if any(company in network_id for company in ENERGY_COMPANIES):
                hits.add(device_id)
                break
    return hits


def smip_manufacturer_breakdown(
    summaries: Mapping[str, DeviceSummary], device_ids: Iterable[str]
) -> Dict[str, int]:
    """Manufacturer counts for a meter fleet (the paper's Gemalto/Telit
    validation step)."""
    counts: Dict[str, int] = {}
    for device_id in device_ids:
        summary = summaries.get(device_id)
        if summary is None or summary.model is None:
            continue
        counts[summary.model.manufacturer] = counts.get(summary.model.manufacturer, 0) + 1
    return counts
