"""The modelled cellular world shared by both simulators.

One :class:`Ecosystem` instance wires together everything from the
substrate packages:

* the country registry and per-country operators (two MNOs per country,
  with the special actors of the paper given explicit identities:
  the **UK study MNO** and its hosted MVNOs, the **Spanish platform
  HMNO** (plus DE/MX/AR platform homes), and the **Dutch IoT-SIM
  operator** that provisions the roaming smart meters);
* the IPX roaming hub with PoPs in 19 directly-interconnected countries
  (predominantly Europe and Latin America, §3) and peering that extends
  reach to the rest of the world;
* the roaming-agreement registry (EU mesh, the UK MNO's bilateral
  footprint, and hub-provisioned platform agreements);
* the UK MNO's sector catalog and the synthetic GSMA TAC catalog.

Build one with :func:`build_default_ecosystem`; both dataset simulators
take it as input, so analyses of the two datasets are guaranteed to talk
about the same world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cellular.countries import (
    Country,
    CountryRegistry,
    default_countries,
)
from repro.cellular.geo import GeoPoint
from repro.cellular.identifiers import PLMN
from repro.cellular.operators import Operator, OperatorRegistry, OperatorType
from repro.cellular.rats import RAT
from repro.cellular.sectors import SectorCatalog, build_sector_catalog
from repro.cellular.tac_db import TACDatabase, default_tac_database
from repro.roaming.agreements import AgreementRegistry
from repro.roaming.hub import IPXHub, PointOfPresence

ALL_RATS = frozenset({RAT.GSM, RAT.UMTS, RAT.LTE})
LEGACY_RATS = frozenset({RAT.GSM, RAT.UMTS})

#: Countries with direct hub PoPs (19, Europe/LatAm-heavy, §3).
HUB_DIRECT_ISOS = (
    "ES", "DE", "FR", "IT", "NL", "PT", "GB", "BE", "AT", "IE",
    "MX", "AR", "BR", "CL", "CO", "PE", "UY",
    "US", "MA",
)

#: The four platform HMNO home countries (§3.2).
PLATFORM_HMNO_ISOS = ("ES", "DE", "MX", "AR")


@dataclass
class EcosystemConfig:
    """Size/shape knobs for the modelled world."""

    uk_sites: int = 120
    mvnos_on_study_mno: int = 2
    seed: int = 11


@dataclass
class Ecosystem:
    """The assembled world model."""

    countries: CountryRegistry
    operators: OperatorRegistry
    agreements: AgreementRegistry
    hub: IPXHub
    tac_db: TACDatabase
    uk_mno: Operator
    uk_sectors: SectorCatalog
    platform_hmnos: Dict[str, Operator]
    nl_iot_operator: Operator
    config: EcosystemConfig = field(default_factory=EcosystemConfig)

    def mvnos_of_study_mno(self) -> List[Operator]:
        return self.operators.mvnos_hosted_by(self.uk_mno)

    def foreign_mnos(self, exclude_iso: str = "GB") -> List[Operator]:
        """All non-MVNO operators outside ``exclude_iso``."""
        return [
            op
            for op in self.operators
            if not op.is_mvno and op.country.iso != exclude_iso
        ]

    def candidate_vmnos(self, home: Operator, country_iso: str, rat: RAT) -> List[Operator]:
        """VMNOs in ``country_iso`` that ``home`` devices may attach to
        on ``rat`` (agreement in place and RAT supported)."""
        return [
            op
            for op in self.operators.mnos_in_country(country_iso)
            if op.plmn != home.plmn
            and op.supports(rat)
            and self.agreements.allows(home.plmn, op.plmn, rat)
        ]


def _operator_name(country: Country, index: int) -> str:
    return f"{country.iso}-MNO{index}"


def build_default_ecosystem(config: Optional[EcosystemConfig] = None) -> Ecosystem:
    """Construct the standard world used throughout the library."""
    config = config or EcosystemConfig()
    rng = np.random.default_rng(config.seed)
    countries = default_countries()
    operators = OperatorRegistry()

    # -- operators: two MNOs per country ------------------------------------
    for country in countries:
        # MNO1 is full-RAT everywhere.
        operators.add(
            Operator(
                name=_operator_name(country, 1),
                plmn=PLMN(country.mcc, 10),
                country=country,
                rats=ALL_RATS,
            )
        )
        # MNO2 lags on 4G in half the markets — the mechanism behind
        # "roaming not allowed on LTE" failures in the M2M dataset.
        rats = ALL_RATS if country.mcc % 2 == 0 else LEGACY_RATS
        operators.add(
            Operator(
                name=_operator_name(country, 2),
                plmn=PLMN(country.mcc, 20),
                country=country,
                rats=rats,
            )
        )

    # -- the named actors -----------------------------------------------------
    gb = countries.by_iso("GB")
    uk_mno = operators.by_plmn(PLMN(gb.mcc, 10))
    for index in range(config.mvnos_on_study_mno):
        operators.add(
            Operator(
                name=f"GB-MVNO{index + 1}",
                plmn=PLMN(gb.mcc, 40 + index),
                country=gb,
                operator_type=OperatorType.MVNO,
                host_plmn=uk_mno.plmn,
            )
        )

    nl = countries.by_iso("NL")
    # The Dutch operator provisioning the roaming smart-meter SIMs; MNC 4
    # nods to the paper's mnc004.mcc204 example.
    nl_iot = Operator(
        name="NL-IoT",
        plmn=PLMN(nl.mcc, 4),
        country=nl,
        rats=ALL_RATS,
    )
    operators.add(nl_iot)

    platform_hmnos: Dict[str, Operator] = {}
    for iso in PLATFORM_HMNO_ISOS:
        country = countries.by_iso(iso)
        hmno = Operator(
            name=f"{iso}-Platform",
            plmn=PLMN(country.mcc, 7),
            country=country,
            rats=ALL_RATS,
        )
        operators.add(hmno)
        platform_hmnos[iso] = hmno

    # -- the IPX hub -----------------------------------------------------------
    pops: List[PointOfPresence] = []
    pop_id = 0
    for iso in HUB_DIRECT_ISOS:
        country = countries.by_iso(iso)
        # ~2 PoPs per direct country ≈ the paper's 40 PoPs / 19 countries.
        for _ in range(2):
            pops.append(
                PointOfPresence(
                    pop_id=pop_id,
                    country_iso=iso,
                    location=GeoPoint(country.lat, country.lon),
                )
            )
            pop_id += 1
    hub = IPXHub("carrier-ipx", pops)
    direct_isos = set(HUB_DIRECT_ISOS)
    for op in operators:
        if op.is_mvno:
            continue
        if op.country.iso in direct_isos:
            hub.add_direct_member(op)
        else:
            hub.add_peered_member(op)

    # -- agreements -------------------------------------------------------------
    agreements = AgreementRegistry()
    # EU roam-like-at-home mesh between all EU MNOs.
    eu_mnos = [
        op for op in operators if not op.is_mvno and op.country.eu_roaming
    ]
    for i, a in enumerate(eu_mnos):
        for b in eu_mnos[i + 1:]:
            if a.country.iso == b.country.iso:
                continue
            covered = frozenset(a.rats & b.rats)
            if covered:
                agreements.add_reciprocal(a.plmn, b.plmn, rats=covered)
    # The UK study MNO's bilateral footprint: every foreign MNO1 plus the
    # named actors (so inbound roamers from anywhere are plausible).
    for op in operators:
        if op.is_mvno or op.country.iso == "GB" or op.plmn == uk_mno.plmn:
            continue
        if agreements.get(uk_mno.plmn, op.plmn) is None:
            covered = frozenset(uk_mno.rats & op.rats)
            agreements.add_reciprocal(uk_mno.plmn, op.plmn, rats=covered)
    # Hub-provisioned platform agreements for each platform HMNO.
    for hmno in platform_hmnos.values():
        hub.provision_platform_agreements(agreements, hmno)
    # NL-IoT reaches the UK (and, via the hub, everywhere else).
    hub.provision_platform_agreements(agreements, nl_iot)

    uk_sectors = build_sector_catalog(uk_mno, sites=config.uk_sites, rng=rng)

    return Ecosystem(
        countries=countries,
        operators=operators,
        agreements=agreements,
        hub=hub,
        tac_db=default_tac_database(seed=config.seed),
        uk_mno=uk_mno,
        uk_sectors=uk_sectors,
        platform_hmnos=platform_hmnos,
        nl_iot_operator=nl_iot,
        config=config,
    )
