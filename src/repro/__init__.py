"""Reproduction of "Where Things Roam" (IMC 2020) as a library.

See README.md for the tour; DESIGN.md for the system inventory; and
EXPERIMENTS.md for the paper-vs-measured reproduction status.
"""
