"""Device mobility metrics from radio events (§4.1, Fig. 8).

"From radio logs, we compute the time spent on each individual sector to
which a device connected.  Then, we use it to compute a weighted centroid
and gyration, using sector coordinates provided by the MNO sectors
catalog.  We compute daily metrics, and present averages across days."

Dwell time per sector is estimated from the event stream: each event's
dwell is the gap to the device's next event that day, capped at
``max_gap_s`` (a device silent for hours has detached, not dwelt), with
a floor of ``min_dwell_s`` so isolated events still count.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cellular.geo import GeoPoint, radius_of_gyration_km, weighted_centroid
from repro.cellular.sectors import SectorCatalog
from repro.signaling.events import RadioEvent


@dataclass(frozen=True)
class MobilityMetrics:
    """One device-day's mobility summary."""

    centroid: GeoPoint
    gyration_km: float
    n_sectors: int

    def __post_init__(self) -> None:
        if self.gyration_km < 0:
            raise ValueError("gyration must be non-negative")
        if self.n_sectors < 1:
            raise ValueError("mobility needs at least one sector")


def sector_dwell_weights_from_pairs(
    pairs: Sequence[Tuple[float, int]],
    max_gap_s: float = 3600.0,
    min_dwell_s: float = 60.0,
) -> Dict[int, float]:
    """Estimate per-sector dwell seconds from ``(timestamp, sector_id)``
    pairs — the columnar pipeline's entry point, which never materializes
    :class:`RadioEvent` objects.  The sort is stable, so ties keep their
    input (stream) order exactly as the row path does."""
    if not pairs:
        return {}
    ordered = sorted(pairs, key=lambda pair: pair[0])
    dwell: Dict[int, float] = defaultdict(float)
    for (timestamp, sector_id), (next_timestamp, _) in zip(ordered, ordered[1:]):
        gap = max(min_dwell_s, min(max_gap_s, next_timestamp - timestamp))
        dwell[sector_id] += gap
    dwell[ordered[-1][1]] += min_dwell_s
    return dict(dwell)


def sector_dwell_weights(
    events: Sequence[RadioEvent],
    max_gap_s: float = 3600.0,
    min_dwell_s: float = 60.0,
) -> Dict[int, float]:
    """Estimate per-sector dwell seconds from one device-day's events."""
    return sector_dwell_weights_from_pairs(
        [(event.timestamp, event.sector_id) for event in events],
        max_gap_s=max_gap_s,
        min_dwell_s=min_dwell_s,
    )


def daily_mobility_from_pairs(
    pairs: Sequence[Tuple[float, int]],
    catalog: SectorCatalog,
    max_gap_s: float = 3600.0,
    min_dwell_s: float = 60.0,
) -> Optional[MobilityMetrics]:
    """Columnar twin of :func:`daily_mobility` over ``(timestamp,
    sector_id)`` pairs; bitwise-identical metrics for the same stream."""
    dwell = sector_dwell_weights_from_pairs(
        pairs, max_gap_s=max_gap_s, min_dwell_s=min_dwell_s
    )
    points: List[GeoPoint] = []
    weights: List[float] = []
    for sector_id, seconds in dwell.items():
        try:
            position = catalog.position_of(sector_id)
        except KeyError:
            continue
        points.append(position)
        weights.append(seconds)
    if not points:
        return None
    return MobilityMetrics(
        centroid=weighted_centroid(points, weights),
        gyration_km=radius_of_gyration_km(points, weights),
        n_sectors=len(points),
    )


def daily_mobility(
    events: Sequence[RadioEvent],
    catalog: SectorCatalog,
    max_gap_s: float = 3600.0,
    min_dwell_s: float = 60.0,
) -> Optional[MobilityMetrics]:
    """Compute one device-day's mobility metrics, or None without events.

    Events pointing at sectors unknown to the catalog are skipped (real
    pipelines see these too — sector churn outpaces catalog refreshes).
    """
    return daily_mobility_from_pairs(
        [(event.timestamp, event.sector_id) for event in events],
        catalog,
        max_gap_s=max_gap_s,
        min_dwell_s=min_dwell_s,
    )


def average_gyration(metrics: Sequence[MobilityMetrics]) -> Optional[float]:
    """Across-days average gyration, as presented in Fig. 8."""
    if not metrics:
        return None
    return sum(m.gyration_km for m in metrics) / len(metrics)
