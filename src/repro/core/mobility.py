"""Device mobility metrics from radio events (§4.1, Fig. 8).

"From radio logs, we compute the time spent on each individual sector to
which a device connected.  Then, we use it to compute a weighted centroid
and gyration, using sector coordinates provided by the MNO sectors
catalog.  We compute daily metrics, and present averages across days."

Dwell time per sector is estimated from the event stream: each event's
dwell is the gap to the device's next event that day, capped at
``max_gap_s`` (a device silent for hours has detached, not dwelt), with
a floor of ``min_dwell_s`` so isolated events still count.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cellular.geo import GeoPoint, radius_of_gyration_km, weighted_centroid
from repro.cellular.sectors import SectorCatalog
from repro.signaling.events import RadioEvent


@dataclass(frozen=True)
class MobilityMetrics:
    """One device-day's mobility summary."""

    centroid: GeoPoint
    gyration_km: float
    n_sectors: int

    def __post_init__(self) -> None:
        if self.gyration_km < 0:
            raise ValueError("gyration must be non-negative")
        if self.n_sectors < 1:
            raise ValueError("mobility needs at least one sector")


def sector_dwell_weights(
    events: Sequence[RadioEvent],
    max_gap_s: float = 3600.0,
    min_dwell_s: float = 60.0,
) -> Dict[int, float]:
    """Estimate per-sector dwell seconds from one device-day's events."""
    if not events:
        return {}
    ordered = sorted(events, key=lambda e: e.timestamp)
    dwell: Dict[int, float] = defaultdict(float)
    for current, nxt in zip(ordered, ordered[1:]):
        gap = max(min_dwell_s, min(max_gap_s, nxt.timestamp - current.timestamp))
        dwell[current.sector_id] += gap
    dwell[ordered[-1].sector_id] += min_dwell_s
    return dict(dwell)


def daily_mobility(
    events: Sequence[RadioEvent],
    catalog: SectorCatalog,
    max_gap_s: float = 3600.0,
    min_dwell_s: float = 60.0,
) -> Optional[MobilityMetrics]:
    """Compute one device-day's mobility metrics, or None without events.

    Events pointing at sectors unknown to the catalog are skipped (real
    pipelines see these too — sector churn outpaces catalog refreshes).
    """
    dwell = sector_dwell_weights(events, max_gap_s=max_gap_s, min_dwell_s=min_dwell_s)
    points: List[GeoPoint] = []
    weights: List[float] = []
    for sector_id, seconds in dwell.items():
        try:
            position = catalog.position_of(sector_id)
        except KeyError:
            continue
        points.append(position)
        weights.append(seconds)
    if not points:
        return None
    return MobilityMetrics(
        centroid=weighted_centroid(points, weights),
        gyration_km=radius_of_gyration_km(points, weights),
        n_sectors=len(points),
    )


def average_gyration(metrics: Sequence[MobilityMetrics]) -> Optional[float]:
    """Across-days average gyration, as presented in Fig. 8."""
    if not metrics:
        return None
    return sum(m.gyration_km for m in metrics) / len(metrics)
