"""The multi-step device classifier of §4.3.

The paper's method, reproduced step for step:

1. **APN keywords** — rank observed APNs by device count, match the
   curated keyword inventory, and mark every device using a validated
   M2M APN as ``m2m``.
2. **Property propagation** — extend ``m2m`` to all devices sharing the
   (manufacturer, model) properties of step-1 devices.  This is what
   rescues the ~21% of devices that expose no APN.
3. **GSMA + consumer-APN rules** — ``smart`` if the catalog declares a
   major smartphone OS and the device uses a consumer APN; ``feat`` if
   the catalog declares a feature phone or the device uses a consumer
   APN.
4. **Fallbacks** — remaining devices with smartphone/feature-phone
   catalog labels keep those classes; devices whose properties suggest
   neither, and for which no APN was ever observed (voice-only usage),
   become ``m2m-maybe`` — exactly the 4% residue the paper excludes from
   further analysis.

Every step can be disabled through :class:`ClassifierConfig`, which is
what the ablation bench exploits to quantify each step's contribution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import AbstractSet, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.cellular.tac_db import GSMALabel
from repro.core.apn import (
    APNKind,
    CONSUMER_KEYWORDS,
    KeywordInventory,
    classify_apn,
    default_keyword_inventory,
    parse_apn,
)
from repro.core.catalog import DeviceSummary
from repro.devices.device import IoTVertical


class ClassLabel(str, Enum):
    """Classifier output classes (§4.3)."""

    SMART = "smart"
    FEAT = "feat"
    M2M = "m2m"
    M2M_MAYBE = "m2m-maybe"


class ClassificationStep(str, Enum):
    """Which pipeline step produced a device's label (for diagnostics)."""

    APN_KEYWORD = "apn_keyword"
    PROPERTY_PROPAGATION = "property_propagation"
    OS_CONSUMER_APN = "os_consumer_apn"
    GSMA_LABEL = "gsma_label"
    NO_EVIDENCE = "no_evidence"


class Confidence(str, Enum):
    """How much trust a classification step deserves.

    Direct APN evidence and the OS+consumer-APN rule are HIGH (the APN
    names the vertical; the OS names the device).  Property propagation
    and catalog-only fallbacks are MEDIUM (shared hardware or a coarse
    GSMA label).  Abstentions are LOW by definition.
    """

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"


_STEP_CONFIDENCE = {
    ClassificationStep.APN_KEYWORD: Confidence.HIGH,
    ClassificationStep.OS_CONSUMER_APN: Confidence.HIGH,
    ClassificationStep.PROPERTY_PROPAGATION: Confidence.MEDIUM,
    ClassificationStep.GSMA_LABEL: Confidence.MEDIUM,
    ClassificationStep.NO_EVIDENCE: Confidence.LOW,
}


@dataclass(frozen=True)
class Classification:
    """One device's classification with provenance."""

    label: ClassLabel
    step: ClassificationStep
    vertical: Optional[IoTVertical] = None
    matched_keyword: Optional[str] = None

    @property
    def confidence(self) -> Confidence:
        """Trust level implied by the producing step."""
        return _STEP_CONFIDENCE[self.step]


@dataclass(frozen=True)
class ClassifierConfig:
    """Toggles for the ablation study; the default runs the full method."""

    use_apn_keywords: bool = True
    use_property_propagation: bool = True
    use_gsma_rules: bool = True
    inventory: KeywordInventory = field(default_factory=default_keyword_inventory)


def rank_apns(summaries: Iterable[DeviceSummary]) -> List[Tuple[str, int]]:
    """Rank APN strings by the number of devices using them.

    This is the analyst's view the paper starts from ("ranking the APNs
    by number of devices using it, we identified 26 keywords").
    """
    counts: Counter[str] = Counter()
    for summary in summaries:
        for apn in summary.apns:
            counts[apn] += 1
    return counts.most_common()


class DeviceClassifier:
    """Runs the multi-step classification over device summaries.

    Per-APN intermediate results (keyword classification, consumer-APN
    checks) are memoized on the instance: both are pure functions of the
    APN string and the (immutable) config, and the APN vocabulary is far
    smaller than the device count, so cache hits return exactly what a
    fresh computation would.
    """

    def __init__(self, config: Optional[ClassifierConfig] = None) -> None:
        self.config = config or ClassifierConfig()
        self._apn_kind_cache: Dict[
            str, Tuple[APNKind, Optional[IoTVertical], Optional[str]]
        ] = {}
        self._consumer_apn_cache: Dict[str, bool] = {}

    # -- step 1 ----------------------------------------------------------------

    def _classify_apn_cached(
        self, apn: str
    ) -> Tuple[APNKind, Optional[IoTVertical], Optional[str]]:
        """Memoized :func:`classify_apn` against this config's inventory."""
        hit = self._apn_kind_cache.get(apn)
        if hit is None:
            hit = classify_apn(apn, self.config.inventory)
            self._apn_kind_cache[apn] = hit
        return hit

    def validated_apns(
        self, summaries: Mapping[str, DeviceSummary]
    ) -> Dict[str, Tuple[str, IoTVertical]]:
        """All observed APNs matching the keyword inventory.

        Returns ``apn -> (keyword, vertical)``.  In the paper this is the
        1,719-APN validated list distilled from the 26 keywords.
        """
        validated: Dict[str, Tuple[str, IoTVertical]] = {}
        for summary in summaries.values():
            for apn in summary.apns:
                if apn in validated:
                    continue
                kind, vertical, keyword = self._classify_apn_cached(apn)
                if kind is APNKind.M2M and vertical is not None and keyword:
                    validated[apn] = (keyword, vertical)
        return validated

    def _uses_consumer_apn(self, summary: DeviceSummary) -> bool:
        cache = self._consumer_apn_cache
        for apn in summary.apns:
            hit = cache.get(apn)
            if hit is None:
                network_id = parse_apn(apn).network_id
                hit = any(k in network_id for k in CONSUMER_KEYWORDS)
                cache[apn] = hit
            if hit:
                return True
        return False

    def collect_m2m_evidence(
        self, summaries: Mapping[str, DeviceSummary]
    ) -> Tuple[Dict[str, Tuple[str, IoTVertical]], Set[Tuple[str, str]]]:
        """Step-1 evidence: validated APNs plus step-1 device property keys.

        Because :func:`classify_apn` is a pure per-APN function, evidence
        collected over a *shard* of devices union-merges into exactly the
        evidence a whole-population pass would produce — this is what
        makes sharded classification (``repro.parallel``) byte-identical
        to the serial run.  Returns ``({apn: (keyword, vertical)},
        {(manufacturer, model), ...})``; both empty when APN keywords are
        disabled.
        """
        if not self.config.use_apn_keywords:
            return {}, set()
        validated = self.validated_apns(summaries)
        keys: Set[Tuple[str, str]] = set()
        for summary in summaries.values():
            if summary.property_key is None:
                continue
            if any(apn in validated for apn in summary.apns):
                keys.add(summary.property_key)
        return validated, keys

    # -- the full pipeline ----------------------------------------------------

    def classify(
        self,
        summaries: Mapping[str, DeviceSummary],
        extra_m2m_property_keys: Optional[AbstractSet[Tuple[str, str]]] = None,
    ) -> Dict[str, Classification]:
        """Classify every device; returns device_id -> Classification.

        ``extra_m2m_property_keys`` feeds step 2 additional (manufacturer,
        model) keys collected *outside* ``summaries`` — the shard-merge
        layer passes the globally merged step-1 evidence here so that
        property propagation still crosses shard boundaries.  Passing the
        global key set makes per-shard calls equal the whole-population
        call restricted to the shard's devices.
        """
        result: Dict[str, Classification] = {}
        m2m_property_keys: Set[Tuple[str, str]] = set()
        if extra_m2m_property_keys:
            m2m_property_keys.update(extra_m2m_property_keys)

        # Step 1: validated M2M APNs.  The APN set is iterated sorted so
        # the matched keyword for a multi-APN device never depends on
        # frozenset iteration order (which varies with PYTHONHASHSEED —
        # and hence across worker processes).
        if self.config.use_apn_keywords:
            validated = self.validated_apns(summaries)
            for device_id, summary in summaries.items():
                for apn in sorted(summary.apns):
                    hit = validated.get(apn)
                    if hit is None:
                        continue
                    keyword, vertical = hit
                    result[device_id] = Classification(
                        label=ClassLabel.M2M,
                        step=ClassificationStep.APN_KEYWORD,
                        vertical=vertical,
                        matched_keyword=keyword,
                    )
                    if summary.property_key is not None:
                        m2m_property_keys.add(summary.property_key)
                    break

        # Step 2: propagate by device properties.
        if self.config.use_property_propagation and m2m_property_keys:
            for device_id, summary in summaries.items():
                if device_id in result:
                    continue
                key = summary.property_key
                if key is not None and key in m2m_property_keys:
                    result[device_id] = Classification(
                        label=ClassLabel.M2M,
                        step=ClassificationStep.PROPERTY_PROPAGATION,
                    )

        # Steps 3-4: smart / feat / residue.
        for device_id, summary in summaries.items():
            if device_id in result:
                continue
            result[device_id] = self._classify_person_device(summary)
        return result

    def _classify_person_device(self, summary: DeviceSummary) -> Classification:
        """Steps 3-4 for one unclassified device."""
        model = summary.model
        consumer_apn = self._uses_consumer_apn(summary)

        if self.config.use_gsma_rules and model is not None:
            if model.is_smartphone_os and consumer_apn:
                return Classification(
                    ClassLabel.SMART, ClassificationStep.OS_CONSUMER_APN
                )
            if model.label is GSMALabel.FEATURE_PHONE or (
                consumer_apn and not model.is_smartphone_os
            ):
                return Classification(
                    ClassLabel.FEAT, ClassificationStep.OS_CONSUMER_APN
                )
            # Catalog-only fallbacks.
            if model.is_smartphone_os or model.label is GSMALabel.SMARTPHONE:
                return Classification(ClassLabel.SMART, ClassificationStep.GSMA_LABEL)
            if model.label in (GSMALabel.TABLET, GSMALabel.WEARABLE):
                # Person-adjacent devices without consumer APNs: treat as
                # smart, the closest person-device class.
                return Classification(ClassLabel.SMART, ClassificationStep.GSMA_LABEL)
            # Module/modem/unknown hardware with no validated APN: the
            # properties "suggest they are neither smartphones nor
            # feature phones, but we don't have APNs for them".
            return Classification(ClassLabel.M2M_MAYBE, ClassificationStep.GSMA_LABEL)

        # No catalog row at all (TAC unknown, or CDR-only device).
        if consumer_apn:
            return Classification(ClassLabel.FEAT, ClassificationStep.OS_CONSUMER_APN)
        return Classification(ClassLabel.M2M_MAYBE, ClassificationStep.NO_EVIDENCE)


def class_shares(classifications: Mapping[str, Classification]) -> Dict[ClassLabel, float]:
    """Fraction of devices per class — the 62/8/26/4% headline split."""
    if not classifications:
        return {label: 0.0 for label in ClassLabel}
    counts: Counter[ClassLabel] = Counter(c.label for c in classifications.values())
    total = len(classifications)
    return {label: counts.get(label, 0) / total for label in ClassLabel}
