"""APN parsing, the keyword inventory, and APN-string generation.

An Access Point Name has two parts (3GPP TS 23.003): a Network
Identifier chosen by the service ("smhp.centricaplc.com") and an
optional Operator Identifier ("mnc004.mcc204.gprs") naming the home
network.  The paper's key observation is that the Network Identifier
often *encodes the vertical*: ranking the 4,603 observed APNs by device
count surfaced 26 keywords that map to M2M/IoT verticals (§4.3).

This module provides:

* :func:`parse_apn` — split an APN into NI and OI, recovering home
  MCC/MNC when present;
* :class:`KeywordInventory` — the curated keyword→vertical table (the
  stand-in for the paper's "information found online");
* :func:`classify_apn` — M2M (with vertical) / consumer / unknown;
* generator helpers used by the MNO population synthesizer to mint
  realistic APN strings per segment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.devices.device import IoTVertical


class APNKind(str, Enum):
    """Coarse APN classification outcome."""

    M2M = "m2m"
    CONSUMER = "consumer"
    UNKNOWN = "unknown"


_OI_RE = re.compile(r"\.mnc(\d{2,3})\.mcc(\d{3})\.gprs$")


@dataclass(frozen=True)
class APN:
    """A parsed APN: network identifier plus optional home PLMN."""

    network_id: str
    mcc: Optional[int] = None
    mnc: Optional[int] = None

    @property
    def has_operator_id(self) -> bool:
        return self.mcc is not None

    def __str__(self) -> str:
        if not self.has_operator_id:
            return self.network_id
        return f"{self.network_id}.mnc{self.mnc:03d}.mcc{self.mcc:03d}.gprs"


@lru_cache(maxsize=65536)
def parse_apn(apn: str) -> APN:
    """Split an APN string into network and operator identifiers.

    Parsing is pure and the observed APN vocabulary is small relative to
    the record count, so results are memoized (:func:`functools.lru_cache`);
    the returned :class:`APN` is frozen, making the shared instance safe.
    """
    if not apn:
        raise ValueError("empty APN string")
    text = apn.strip().lower()
    match = _OI_RE.search(text)
    if match:
        return APN(
            network_id=text[: match.start()],
            mnc=int(match.group(1)),
            mcc=int(match.group(2)),
        )
    return APN(network_id=text)


# -- keyword inventory --------------------------------------------------------

#: Consumer-service keywords: APNs people-phones use.  An APN whose NI
#: contains one of these is "a consumer APN" in the paper's smart/feat
#: rules.
CONSUMER_KEYWORDS = (
    "internet",
    "payandgo",
    "prepay",
    "web",
    "wap",
    "mms",
    "broadband",
    "mobiledata",
)


class KeywordInventory:
    """The curated keyword→vertical mapping (the paper's 26 keywords).

    Matching is substring-on-the-NI, like the paper's; the table is
    constructed so no consumer keyword collides with an M2M keyword.
    """

    def __init__(self, mapping: Mapping[str, IoTVertical]) -> None:
        if not mapping:
            raise ValueError("empty keyword inventory")
        overlapping = [k for k in mapping if any(c in k or k in c for c in CONSUMER_KEYWORDS)]
        if overlapping:
            raise ValueError(f"keywords collide with consumer terms: {overlapping}")
        # Longest-first so "intelligent.m2m" wins over "m2m".
        self._ordered: List[Tuple[str, IoTVertical]] = sorted(
            mapping.items(), key=lambda kv: -len(kv[0])
        )
        # Memo for `match`: the keyword scan is O(keywords) per call and
        # the same network IDs recur once per record; matching is pure,
        # so a hit returns exactly what the scan would.
        self._match_cache: Dict[str, Optional[Tuple[str, IoTVertical]]] = {}

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self) -> Iterator[Tuple[str, IoTVertical]]:
        return iter(self._ordered)

    @property
    def keywords(self) -> List[str]:
        return [k for k, _ in self._ordered]

    def match(self, network_id: str) -> Optional[Tuple[str, IoTVertical]]:
        """Return (keyword, vertical) for the first matching keyword."""
        if network_id in self._match_cache:
            return self._match_cache[network_id]
        result: Optional[Tuple[str, IoTVertical]] = None
        for keyword, vertical in self._ordered:
            if keyword in network_id:
                result = (keyword, vertical)
                break
        self._match_cache[network_id] = result
        return result


#: Energy companies the paper names as identifiable in SMIP-roaming APNs.
ENERGY_COMPANIES = ("centricaplc", "rwe", "elster", "ge-energy", "bglobal")

#: Automotive brands used by the connected-car APN generator.
AUTOMOTIVE_BRANDS = ("scania", "bmw-cars", "vwag", "daimler")


def default_keyword_inventory() -> KeywordInventory:
    """The 26-keyword inventory mirroring the paper's curated list."""
    mapping: Dict[str, IoTVertical] = {}
    # Energy / smart metering.
    for company in ENERGY_COMPANIES:
        mapping[company] = IoTVertical.SMART_METER
    mapping["smhp"] = IoTVertical.SMART_METER
    mapping["smartmeter"] = IoTVertical.SMART_METER
    mapping["metering"] = IoTVertical.SMART_METER
    # Automotive.
    for brand in AUTOMOTIVE_BRANDS:
        mapping[brand] = IoTVertical.CONNECTED_CAR
    mapping["telematics"] = IoTVertical.CONNECTED_CAR
    mapping["connectedcar"] = IoTVertical.CONNECTED_CAR
    # Global IoT SIM platforms.
    mapping["intelligent.m2m"] = IoTVertical.OTHER
    mapping["globaliot"] = IoTVertical.OTHER
    mapping["m2mplatform"] = IoTVertical.OTHER
    # Generic machine keywords.
    mapping["m2m"] = IoTVertical.OTHER
    mapping["iotsim"] = IoTVertical.OTHER
    mapping["telemetry"] = IoTVertical.OTHER
    # Wearables.
    mapping["wearable"] = IoTVertical.WEARABLE
    mapping["smartwatch"] = IoTVertical.WEARABLE
    # Logistics / asset tracking.
    mapping["fleettrack"] = IoTVertical.LOGISTICS
    mapping["assettrack"] = IoTVertical.LOGISTICS
    mapping["logistics"] = IoTVertical.LOGISTICS
    # Payment.
    mapping["paymentpos"] = IoTVertical.PAYMENT
    mapping["posterminal"] = IoTVertical.PAYMENT
    return KeywordInventory(mapping)


def classify_apn(
    apn: str, inventory: Optional[KeywordInventory] = None
) -> Tuple[APNKind, Optional[IoTVertical], Optional[str]]:
    """Classify one APN string: (kind, vertical, matched keyword)."""
    inventory = inventory or default_keyword_inventory()
    parsed = parse_apn(apn)
    matched = inventory.match(parsed.network_id)
    if matched:
        keyword, vertical = matched
        return APNKind.M2M, vertical, keyword
    for keyword in CONSUMER_KEYWORDS:
        if keyword in parsed.network_id:
            return APNKind.CONSUMER, None, keyword
    return APNKind.UNKNOWN, None, None


# -- generators (used by the population synthesizer) ---------------------------

def energy_meter_apn(company: str, home_mcc: int, home_mnc: int) -> str:
    """SMIP-roaming style APN, e.g. smhp.centricaplc.com.mnc004.mcc204.gprs."""
    if company not in ENERGY_COMPANIES:
        raise ValueError(f"unknown energy company {company!r}")
    return f"smhp.{company}.com.mnc{home_mnc:03d}.mcc{home_mcc:03d}.gprs"


def connected_car_apn(brand: str) -> str:
    """A connected-car telematics APN for a known automotive brand."""
    if brand not in AUTOMOTIVE_BRANDS:
        raise ValueError(f"unknown automotive brand {brand!r}")
    return f"{brand}.telematics.net"


def platform_iot_apn() -> str:
    """The global IoT SIM provider's shared APN."""
    return "intelligent.m2m.gdsp"


def vertical_apn(vertical: IoTVertical, rng_choice: int = 0) -> str:
    """A plausible APN for any vertical (used for minor verticals)."""
    options = {
        IoTVertical.SMART_METER: ["smartmeter.grid.net", "metering.utility.com"],
        IoTVertical.CONNECTED_CAR: [connected_car_apn(b) for b in AUTOMOTIVE_BRANDS],
        IoTVertical.WEARABLE: ["wearable.cloud.io", "smartwatch.sync.net"],
        IoTVertical.PAYMENT: ["paymentpos.acquirer.net", "posterminal.bank.com"],
        IoTVertical.LOGISTICS: ["fleettrack.global.net", "assettrack.ship.io"],
        IoTVertical.OTHER: [platform_iot_apn(), "iotsim.global.net", "telemetry.hub.io"],
    }[vertical]
    return options[rng_choice % len(options)]


def consumer_apn(operator_slug: str, rng_choice: int = 0) -> str:
    """A consumer APN for a person-device on ``operator_slug``'s network."""
    options = [
        f"internet.{operator_slug}.com",
        f"payandgo.{operator_slug}.com",
        f"web.{operator_slug}.net",
        f"wap.{operator_slug}.net",
        f"mms.{operator_slug}.com",
    ]
    return options[rng_choice % len(options)]


def generic_operator_apn(operator_slug: str, rng_choice: int = 0) -> str:
    """A generic operator APN that matches no keyword at all.

    These are the 2,178 "generic strings" of the paper — present in the
    data, useless for classification.
    """
    options = [
        f"data.{operator_slug}",
        f"gprs.{operator_slug}",
        f"apn.{operator_slug}.net",
        f"standard.{operator_slug}",
    ]
    return options[rng_choice % len(options)]
