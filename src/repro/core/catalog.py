"""The daily devices-catalog: the paper's central data product (§4.1).

"We combine the three data sources to create a daily list of active
devices and associated properties and traffic characteristics …  Each
record in the generated catalog reports a device ID, total number of
events, calls, bytes seen, SIM MCC/MNC, list of visited MCC-MNC, list of
APN strings, device manufacturer, device model, device OS", radio-flags
and mobility metrics.

:class:`CatalogBuilder` streams radio events and CDR/xDR records into
per-(device, day) accumulators, joins the TAC catalog for device
properties and the sector catalog for mobility, and emits
:class:`DeviceDayRecord` rows plus whole-window :class:`DeviceSummary`
aggregates (the unit most of the paper's figures are computed over).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.cellular.rats import RadioFlags
from repro.cellular.sectors import SectorCatalog
from repro.cellular.tac_db import DeviceModel, TACDatabase
from repro.columnar.store import (
    NULL_ID,
    ColumnPools,
    ColumnarRadioEvents,
    ColumnarServiceRecords,
)
from repro.core.mobility import MobilityMetrics, daily_mobility, daily_mobility_from_pairs
from repro.core.roaming import RoamingLabel, RoamingLabeler
from repro.signaling.cdr import SERVICE_TYPES, ServiceRecord, ServiceType
from repro.signaling.events import RADIO_INTERFACES, RadioEvent
from repro.signaling.procedures import RESULT_CODES

#: Columnar scan tables, indexed by the canonical enum orders the stores
#: encode against: per-result success bit, per-interface voice bit and
#: RAT mask.  Tuple indexing replaces per-row property chains and enum
#: dict lookups in the hot kernel.
_RESULT_IS_SUCCESS: Tuple[bool, ...] = tuple(code.is_success for code in RESULT_CODES)
_INTERFACE_IS_VOICE: Tuple[bool, ...] = tuple(
    interface.is_voice for interface in RADIO_INTERFACES
)
_INTERFACE_RAT_BIT: Tuple[int, ...] = tuple(
    RadioFlags.from_rats((interface.rat,)).mask for interface in RADIO_INTERFACES
)
_SERVICE_IS_VOICE: Tuple[bool, ...] = tuple(
    service is ServiceType.VOICE for service in SERVICE_TYPES
)


@dataclass(frozen=True)
class DeviceDayRecord:
    """One devices-catalog row: one device on one day."""

    device_id: str
    day: int
    sim_plmn: str
    visited_plmns: FrozenSet[str]
    n_events: int
    n_failed_events: int
    n_calls: int
    voice_minutes: float
    n_data_sessions: int
    bytes_total: int
    apns: FrozenSet[str]
    radio_flags: RadioFlags
    voice_flags: RadioFlags
    data_flags: RadioFlags
    mobility: Optional[MobilityMetrics]
    on_home_network: bool

    @property
    def has_activity(self) -> bool:
        return bool(self.n_events or self.n_calls or self.n_data_sessions)


@dataclass
class DeviceSummary:
    """Whole-window aggregate for one device.

    ``voice_flags``/``data_flags`` split radio activity per plane — the
    inputs to Fig. 9's three panels.  ``label`` is the device's roaming
    label; ``model`` its GSMA-catalog join (None when the TAC is unknown
    or the device was only seen in CDR/xDRs).
    """

    device_id: str
    sim_plmn: str
    label: RoamingLabel
    active_days: int
    n_events: int = 0
    n_failed_events: int = 0
    n_calls: int = 0
    voice_minutes: float = 0.0
    n_data_sessions: int = 0
    bytes_total: int = 0
    apns: FrozenSet[str] = frozenset()
    visited_plmns: FrozenSet[str] = frozenset()
    radio_flags: RadioFlags = RadioFlags()
    voice_flags: RadioFlags = RadioFlags()
    data_flags: RadioFlags = RadioFlags()
    tac: Optional[int] = None
    model: Optional[DeviceModel] = None
    mean_gyration_km: Optional[float] = None

    @property
    def manufacturer(self) -> Optional[str]:
        return self.model.manufacturer if self.model else None

    @property
    def has_voice(self) -> bool:
        return self.n_calls > 0 or not self.voice_flags.is_empty

    @property
    def has_data(self) -> bool:
        return self.n_data_sessions > 0 or not self.data_flags.is_empty

    @property
    def property_key(self) -> Optional[Tuple[str, str]]:
        """(manufacturer, model) key for classifier propagation."""
        return self.model.property_key if self.model else None

    def signaling_per_day(self) -> float:
        return self.n_events / self.active_days if self.active_days else 0.0


@dataclass(frozen=True)
class _DayCell:
    """Immutable, pool-independent (device, day) state for the
    incremental engine.

    A cell captures everything :class:`DeviceDayRecord` needs *except*
    the resolved SIM identity (which depends on other days), plus the
    per-day identity candidates used to re-resolve it.  Cells compare by
    value, which is what lets :meth:`CatalogBuilder.update` skip devices
    whose day slice re-accumulated to the same state.
    """

    n_events: int
    n_failed_events: int
    radio_mask: int
    voice_mask: int
    data_mask: int
    n_calls: int
    voice_minutes: float
    n_data_sessions: int
    bytes_total: int
    apns: FrozenSet[str]
    visited_plmns: FrozenSet[str]
    on_home_network: bool
    mobility: Optional[MobilityMetrics]
    #: SIM/TAC of this day's first radio event (None: no radio this day).
    sim_radio: Optional[str]
    tac: Optional[int]
    #: SIM of this day's first service record (identity fallback for
    #: devices that never touch the home radio network).
    sim_service: Optional[str]


@dataclass(frozen=True)
class CatalogUpdate:
    """What one :meth:`CatalogBuilder.update` call actually changed."""

    day: int
    changed_devices: Tuple[str, ...]
    n_devices: int

    @property
    def n_changed(self) -> int:
        return len(self.changed_devices)


class _DayAccumulator:
    """Mutable per-(device, day) aggregation state."""

    __slots__ = (
        "radio_events",
        "n_calls",
        "voice_minutes",
        "n_data_sessions",
        "bytes_total",
        "apns",
        "visited_plmns",
        "on_home_network",
    )

    def __init__(self) -> None:
        self.radio_events: List[RadioEvent] = []
        self.n_calls = 0
        self.voice_minutes = 0.0
        self.n_data_sessions = 0
        self.bytes_total = 0
        self.apns: Set[str] = set()
        self.visited_plmns: Set[str] = set()
        self.on_home_network = False


class _ColAcc:
    """Mutable per-(device, day) state for the columnar kernel.

    Unlike :class:`_DayAccumulator` it never buffers event objects:
    radio flags fold into plain int masks during the scan (one
    :class:`RadioFlags` is constructed per cell at finalization, not per
    event), strings stay interned ids, and mobility keeps only the
    ``(timestamp, sector_id)`` pairs the dwell estimator needs.
    """

    __slots__ = (
        "n_events",
        "n_failed",
        "radio_mask",
        "voice_mask",
        "data_mask",
        "pairs",
        "n_calls",
        "voice_minutes",
        "n_data_sessions",
        "bytes_total",
        "apn_ids",
        "visited_ids",
        "on_home",
        "sim_radio_id",
        "tac",
        "sim_service_id",
    )

    def __init__(self) -> None:
        self.n_events = 0
        self.n_failed = 0
        self.radio_mask = 0
        self.voice_mask = 0
        self.data_mask = 0
        self.pairs: List[Tuple[float, int]] = []
        self.n_calls = 0
        self.voice_minutes = 0.0
        self.n_data_sessions = 0
        self.bytes_total = 0
        self.apn_ids: Set[int] = set()
        self.visited_ids: Set[int] = set()
        self.on_home = False
        # -1 = unset; SIM pool ids are always >= 0 when present.
        self.sim_radio_id = -1
        self.tac = -1
        self.sim_service_id = -1


class CatalogBuilder:
    """Joins the three data sources into the devices-catalog."""

    def __init__(
        self,
        tac_db: TACDatabase,
        sector_catalog: SectorCatalog,
        labeler: RoamingLabeler,
        compute_mobility: bool = True,
    ) -> None:
        self._tac_db = tac_db
        self._sectors = sector_catalog
        self._labeler = labeler
        self._compute_mobility = compute_mobility
        self._observer_plmn = str(labeler.observer.plmn)
        # TAC-join memo: the catalog has far fewer models than the
        # population has devices, so each TAC is resolved once and the
        # (possibly None) result reused across devices and `summarize`
        # calls.  Lookup is deterministic; the memo cannot change a join.
        self._model_cache: Dict[int, Optional[DeviceModel]] = {}
        # Incremental-engine state (see `update`/`snapshot`): per-day
        # cell maps, the day set each device was seen on, and the cached
        # records/summaries the last update left valid.
        self._inc_pools: Optional[ColumnPools] = None
        self._inc_cells: Dict[int, Dict[str, _DayCell]] = {}
        self._inc_device_days: Dict[str, Set[int]] = {}
        self._inc_records: Dict[Tuple[str, int], DeviceDayRecord] = {}
        self._inc_summaries: Dict[str, DeviceSummary] = {}

    # -- streaming ingestion ------------------------------------------------

    def _accumulate(
        self,
        radio_events: Iterable[RadioEvent],
        service_records: Iterable[ServiceRecord],
    ) -> Tuple[Dict[Tuple[str, int], _DayAccumulator], Dict[str, str], Dict[str, int]]:
        days: Dict[Tuple[str, int], _DayAccumulator] = defaultdict(_DayAccumulator)
        sim_plmn_of: Dict[str, str] = {}
        tac_of: Dict[str, int] = {}
        observer_plmn = self._observer_plmn

        for event in radio_events:
            device_id = event.device_id
            acc = days[(device_id, event.day)]
            if not acc.radio_events:
                # First radio event of this (device, day): every radio
                # event is by definition on the observer's network, so
                # the home flag and the observer PLMN are set once here
                # rather than per record.
                acc.on_home_network = True
                acc.visited_plmns.add(observer_plmn)
            acc.radio_events.append(event)
            if device_id not in sim_plmn_of:
                sim_plmn_of[device_id] = event.sim_plmn
                tac_of[device_id] = event.tac

        for record in service_records:
            acc = days[(record.device_id, record.day)]
            acc.visited_plmns.add(record.visited_plmn)
            if record.visited_plmn == self._observer_plmn:
                acc.on_home_network = True
            if record.is_voice:
                acc.n_calls += 1
                acc.voice_minutes += record.duration_s / 60.0
            else:
                acc.n_data_sessions += 1
                acc.bytes_total += record.bytes_total
                if record.apn:
                    acc.apns.add(record.apn)
            sim_plmn_of.setdefault(record.device_id, record.sim_plmn)

        return days, sim_plmn_of, tac_of

    def _day_record(
        self, device_id: str, day: int, sim_plmn: str, acc: _DayAccumulator
    ) -> DeviceDayRecord:
        flags = RadioFlags()
        voice_flags = RadioFlags()
        data_flags = RadioFlags()
        n_failed = 0
        for event in acc.radio_events:
            if event.is_success:
                flags = flags.with_rat(event.rat)
                if event.interface.is_voice:
                    voice_flags = voice_flags.with_rat(event.rat)
                else:
                    data_flags = data_flags.with_rat(event.rat)
            else:
                n_failed += 1
        mobility = (
            daily_mobility(acc.radio_events, self._sectors)
            if self._compute_mobility and acc.radio_events
            else None
        )
        return DeviceDayRecord(
            device_id=device_id,
            day=day,
            sim_plmn=sim_plmn,
            visited_plmns=frozenset(acc.visited_plmns),
            n_events=len(acc.radio_events),
            n_failed_events=n_failed,
            n_calls=acc.n_calls,
            voice_minutes=acc.voice_minutes,
            n_data_sessions=acc.n_data_sessions,
            bytes_total=acc.bytes_total,
            apns=frozenset(acc.apns),
            radio_flags=flags,
            voice_flags=voice_flags,
            data_flags=data_flags,
            mobility=mobility,
            on_home_network=acc.on_home_network,
        )

    # -- public API ----------------------------------------------------------

    def build_day_records(
        self,
        radio_events: Iterable[RadioEvent],
        service_records: Iterable[ServiceRecord],
    ) -> List[DeviceDayRecord]:
        """Emit the daily devices-catalog, sorted by (device, day)."""
        days, sim_plmn_of, _ = self._accumulate(radio_events, service_records)
        records = [
            self._day_record(device_id, day, sim_plmn_of[device_id], acc)
            for (device_id, day), acc in days.items()
        ]
        records.sort(key=lambda r: (r.device_id, r.day))
        return records

    def summarize(
        self, day_records: Iterable[DeviceDayRecord], tac_of: Dict[str, int]
    ) -> Dict[str, DeviceSummary]:
        """Roll daily records up into whole-window device summaries."""
        by_device: Dict[str, List[DeviceDayRecord]] = defaultdict(list)
        for record in day_records:
            by_device[record.device_id].append(record)

        summaries: Dict[str, DeviceSummary] = {}
        model_cache = self._model_cache
        for device_id, records in by_device.items():
            # One pass over the device's day records accumulates every
            # aggregate; the apns/visited frozensets are built once at
            # the end rather than re-derived per record.
            ever_home = False
            active_days = 0
            n_events = n_failed_events = n_calls = n_data_sessions = 0
            voice_minutes = 0.0
            bytes_total = 0
            gyration_sum = 0.0
            gyration_n = 0
            apns: Set[str] = set()
            visited: Set[str] = set()
            flags = RadioFlags()
            voice_flags = RadioFlags()
            data_flags = RadioFlags()
            for r in records:
                ever_home = ever_home or r.on_home_network
                if r.has_activity:
                    active_days += 1
                n_events += r.n_events
                n_failed_events += r.n_failed_events
                n_calls += r.n_calls
                voice_minutes += r.voice_minutes
                n_data_sessions += r.n_data_sessions
                bytes_total += r.bytes_total
                if r.mobility is not None:
                    gyration_sum += r.mobility.gyration_km
                    gyration_n += 1
                apns.update(r.apns)
                visited.update(r.visited_plmns)
                flags = flags.union(r.radio_flags)
                voice_flags = voice_flags.union(r.voice_flags)
                data_flags = data_flags.union(r.data_flags)
            # A device never seen on the home network was only observed
            # through CDR/xDRs from partner networks: an outbound roamer.
            # min() (not next(iter(...))) keeps the pick independent of
            # frozenset iteration order, i.e. of PYTHONHASHSEED.
            any_visited = min(records[0].visited_plmns, default=self._observer_plmn)
            label = self._labeler.label(
                records[0].sim_plmn,
                self._observer_plmn if ever_home else any_visited,
            )
            tac = tac_of.get(device_id)
            if tac is None:
                model = None
            elif tac in model_cache:
                model = model_cache[tac]
            else:
                model = self._tac_db.lookup(tac)
                model_cache[tac] = model
            summaries[device_id] = DeviceSummary(
                device_id=device_id,
                sim_plmn=records[0].sim_plmn,
                label=label,
                active_days=active_days,
                n_events=n_events,
                n_failed_events=n_failed_events,
                n_calls=n_calls,
                voice_minutes=voice_minutes,
                n_data_sessions=n_data_sessions,
                bytes_total=bytes_total,
                apns=frozenset(apns),
                visited_plmns=frozenset(visited),
                radio_flags=flags,
                voice_flags=voice_flags,
                data_flags=data_flags,
                tac=tac,
                model=model,
                mean_gyration_km=(
                    gyration_sum / gyration_n if gyration_n else None
                ),
            )
        return summaries

    def build(
        self,
        radio_events: Iterable[RadioEvent],
        service_records: Iterable[ServiceRecord],
    ) -> Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary]]:
        """One-shot: daily records plus per-device summaries."""
        days, sim_plmn_of, tac_of = self._accumulate(radio_events, service_records)
        records = [
            self._day_record(device_id, day, sim_plmn_of[device_id], acc)
            for (device_id, day), acc in days.items()
        ]
        records.sort(key=lambda r: (r.device_id, r.day))
        return records, self.summarize(records, tac_of)

    # -- columnar kernel ------------------------------------------------------

    def _accumulate_columns(
        self,
        radio_events: ColumnarRadioEvents,
        service_records: ColumnarServiceRecords,
    ) -> Tuple[Dict[int, _ColAcc], Dict[int, int], Dict[int, int]]:
        """Single-pass scan over interned int columns.

        Returns accumulators keyed ``(day << 32) | device_id`` (pool ids
        are dense and far below 2**32, so the packed int replaces the row
        path's (str, int) tuple key) plus, per device id, the row index
        of its first radio event and first service record — the same
        stream-order identity resolution ``_accumulate`` performs.
        """
        accs: Dict[int, _ColAcc] = {}
        first_radio: Dict[int, int] = {}
        first_service: Dict[int, int] = {}
        get = accs.get
        success_of = _RESULT_IS_SUCCESS
        voice_of = _INTERFACE_IS_VOICE
        rat_bit_of = _INTERFACE_RAT_BIT
        pools = radio_events.pools
        observer_id = pools.plmns.intern(self._observer_plmn)
        track_pairs = self._compute_mobility

        timestamps = radio_events.timestamps
        sectors = radio_events.sector_ids
        sims = radio_events.sim_plmns
        tacs = radio_events.tacs
        rows = zip(
            radio_events.device_ids,
            radio_events.days,
            radio_events.results,
            radio_events.interfaces,
        )
        for i, (dev, day, result, interface) in enumerate(rows):
            key = (day << 32) | dev
            acc = get(key)
            if acc is None:
                acc = accs[key] = _ColAcc()
                # First radio event of this (device, day) — mirrors the
                # row path: home flag + observer PLMN set once, and the
                # per-day identity candidates captured here.  The radio
                # scan runs first, so a cell that exists here was
                # created by a radio event.
                acc.on_home = True
                acc.visited_ids.add(observer_id)
                acc.sim_radio_id = sims[i]
                acc.tac = tacs[i]
                if dev not in first_radio:
                    first_radio[dev] = i
            if success_of[result]:
                bit = rat_bit_of[interface]
                acc.radio_mask |= bit
                if voice_of[interface]:
                    acc.voice_mask |= bit
                else:
                    acc.data_mask |= bit
            else:
                acc.n_failed += 1
            acc.n_events += 1
            if track_pairs:
                acc.pairs.append((timestamps[i], sectors[i]))

        svc_voice_of = _SERVICE_IS_VOICE
        durations = service_records.durations
        byte_counts = service_records.bytes_totals
        apn_ids = service_records.apns
        svc_sims = service_records.sim_plmns
        svc_rows = zip(
            service_records.device_ids,
            service_records.days,
            service_records.services,
            service_records.visited_plmns,
        )
        for i, (dev, day, service, visited) in enumerate(svc_rows):
            key = (day << 32) | dev
            acc = get(key)
            if acc is None:
                acc = accs[key] = _ColAcc()
            acc.visited_ids.add(visited)
            if visited == observer_id:
                acc.on_home = True
            if svc_voice_of[service]:
                acc.n_calls += 1
                acc.voice_minutes += durations[i] / 60.0
            else:
                acc.n_data_sessions += 1
                acc.bytes_total += byte_counts[i]
                apn = apn_ids[i]
                if apn != NULL_ID:
                    acc.apn_ids.add(apn)
            if acc.sim_service_id < 0:
                acc.sim_service_id = svc_sims[i]
            if dev not in first_service:
                first_service[dev] = i

        return accs, first_radio, first_service

    def _record_from_acc(
        self,
        device_id: str,
        day: int,
        sim_plmn: str,
        acc: _ColAcc,
        pools: ColumnPools,
    ) -> DeviceDayRecord:
        """Finalize one columnar accumulator into a catalog row."""
        plmn_lookup = pools.plmns.lookup
        apn_lookup = pools.apns.lookup
        mobility = (
            daily_mobility_from_pairs(acc.pairs, self._sectors) if acc.pairs else None
        )
        return DeviceDayRecord(
            device_id=device_id,
            day=day,
            sim_plmn=sim_plmn,
            visited_plmns=frozenset(plmn_lookup(v) for v in acc.visited_ids),
            n_events=acc.n_events,
            n_failed_events=acc.n_failed,
            n_calls=acc.n_calls,
            voice_minutes=acc.voice_minutes,
            n_data_sessions=acc.n_data_sessions,
            bytes_total=acc.bytes_total,
            apns=frozenset(apn_lookup(a) for a in acc.apn_ids),
            radio_flags=RadioFlags(acc.radio_mask),
            voice_flags=RadioFlags(acc.voice_mask),
            data_flags=RadioFlags(acc.data_mask),
            mobility=mobility,
            on_home_network=acc.on_home,
        )

    def build_from_columns(
        self,
        radio_events: ColumnarRadioEvents,
        service_records: ColumnarServiceRecords,
    ) -> Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary]]:
        """Columnar twin of :meth:`build`: byte-identical output.

        Scans interned int columns instead of dataclass rows — no
        per-event property calls, no (str, int) key hashing, and one
        :class:`RadioFlags` per (device, day) cell instead of one per
        successful event.  Both stores must share one
        :class:`ColumnPools` so device/PLMN ids agree across streams.
        """
        if radio_events.pools is not service_records.pools:
            raise ValueError("columnar streams must share one ColumnPools")
        accs, first_radio, first_service = self._accumulate_columns(
            radio_events, service_records
        )
        pools = radio_events.pools
        device_lookup = pools.devices.lookup
        plmn_lookup = pools.plmns.lookup

        sim_plmn_of: Dict[str, str] = {}
        tac_of: Dict[str, int] = {}
        for dev, i in first_radio.items():
            device_id = device_lookup(dev)
            sim_plmn_of[device_id] = plmn_lookup(radio_events.sim_plmns[i])
            tac_of[device_id] = radio_events.tacs[i]
        for dev, i in first_service.items():
            device_id = device_lookup(dev)
            if device_id not in sim_plmn_of:
                sim_plmn_of[device_id] = plmn_lookup(service_records.sim_plmns[i])

        records: List[DeviceDayRecord] = []
        record_from_acc = self._record_from_acc
        for key, acc in accs.items():
            device_id = device_lookup(key & 0xFFFFFFFF)
            records.append(
                record_from_acc(device_id, key >> 32, sim_plmn_of[device_id], acc, pools)
            )
        records.sort(key=lambda r: (r.device_id, r.day))
        return records, self.summarize(records, tac_of)

    # -- incremental engine ---------------------------------------------------

    def _cell_from_acc(self, acc: _ColAcc, pools: ColumnPools) -> _DayCell:
        """Freeze a columnar accumulator into pool-independent state."""
        plmn_lookup = pools.plmns.lookup
        apn_lookup = pools.apns.lookup
        return _DayCell(
            n_events=acc.n_events,
            n_failed_events=acc.n_failed,
            radio_mask=acc.radio_mask,
            voice_mask=acc.voice_mask,
            data_mask=acc.data_mask,
            n_calls=acc.n_calls,
            voice_minutes=acc.voice_minutes,
            n_data_sessions=acc.n_data_sessions,
            bytes_total=acc.bytes_total,
            apns=frozenset(apn_lookup(a) for a in acc.apn_ids),
            visited_plmns=frozenset(plmn_lookup(v) for v in acc.visited_ids),
            on_home_network=acc.on_home,
            mobility=(
                daily_mobility_from_pairs(acc.pairs, self._sectors)
                if acc.pairs
                else None
            ),
            sim_radio=(
                plmn_lookup(acc.sim_radio_id) if acc.sim_radio_id >= 0 else None
            ),
            tac=acc.tac if acc.sim_radio_id >= 0 else None,
            sim_service=(
                plmn_lookup(acc.sim_service_id) if acc.sim_service_id >= 0 else None
            ),
        )

    def _record_from_cell(
        self, device_id: str, day: int, sim_plmn: str, cell: _DayCell
    ) -> DeviceDayRecord:
        return DeviceDayRecord(
            device_id=device_id,
            day=day,
            sim_plmn=sim_plmn,
            visited_plmns=cell.visited_plmns,
            n_events=cell.n_events,
            n_failed_events=cell.n_failed_events,
            n_calls=cell.n_calls,
            voice_minutes=cell.voice_minutes,
            n_data_sessions=cell.n_data_sessions,
            bytes_total=cell.bytes_total,
            apns=cell.apns,
            radio_flags=RadioFlags(cell.radio_mask),
            voice_flags=RadioFlags(cell.voice_mask),
            data_flags=RadioFlags(cell.data_mask),
            mobility=cell.mobility,
            on_home_network=cell.on_home_network,
        )

    def _resolve_incremental_identity(
        self, device_id: str
    ) -> Tuple[str, Optional[int]]:
        """Resolve (SIM, TAC) from the device's cells, ascending by day.

        The first day with radio activity wins — with days fed in
        ascending order this is exactly the row path's "first radio
        event in the stream".  A device with no radio on any day falls
        back to its earliest service SIM (and no TAC), again matching
        ``_accumulate``'s setdefault semantics.
        """
        cells = self._inc_cells
        fallback: Optional[str] = None
        for day in sorted(self._inc_device_days[device_id]):
            cell = cells[day][device_id]
            if cell.sim_radio is not None:
                return cell.sim_radio, cell.tac
            if fallback is None and cell.sim_service is not None:
                fallback = cell.sim_service
        if fallback is None:  # unreachable: every cell has >= 1 record
            raise RuntimeError(f"device {device_id!r} has cells but no SIM")
        return fallback, None

    def update(
        self,
        day: int,
        radio_events: Union[ColumnarRadioEvents, Iterable[RadioEvent]],
        service_records: Union[ColumnarServiceRecords, Iterable[ServiceRecord]],
    ) -> CatalogUpdate:
        """Fold one day's record slice into the incremental catalog.

        Re-accumulates only the given day, diffs the resulting
        (device, day) cells against the previous state, and recomputes
        records/summaries for *changed devices only* — unchanged devices
        keep their cached rows untouched.  Feeding day partitions in
        ascending day order makes :meth:`snapshot` equal to
        :meth:`build` over the concatenated streams (identity resolution
        depends on day order; see ``_resolve_incremental_identity``).

        Re-sending a day replaces that day's slice (idempotent for an
        identical slice: zero devices change).  Rows for any other day
        in the slice raise ``ValueError``.
        """
        if isinstance(radio_events, ColumnarRadioEvents):
            if not isinstance(service_records, ColumnarServiceRecords):
                raise TypeError("mixed columnar/row update inputs")
            if radio_events.pools is not service_records.pools:
                raise ValueError("columnar streams must share one ColumnPools")
            events_c, records_c = radio_events, service_records
        else:
            if isinstance(service_records, ColumnarServiceRecords):
                raise TypeError("mixed columnar/row update inputs")
            if self._inc_pools is None:
                self._inc_pools = ColumnPools()
            events_c = ColumnarRadioEvents.from_rows(radio_events, self._inc_pools)
            records_c = ColumnarServiceRecords.from_rows(
                service_records, self._inc_pools
            )
        for store_days in (events_c.days, records_c.days):
            if len(store_days) and (
                min(store_days) != day or max(store_days) != day
            ):
                raise ValueError(f"update({day}) received rows for other days")

        accs, _, _ = self._accumulate_columns(events_c, records_c)
        pools = events_c.pools
        device_lookup = pools.devices.lookup
        new_cells = {
            device_lookup(key & 0xFFFFFFFF): self._cell_from_acc(acc, pools)
            for key, acc in accs.items()
        }

        old_cells = self._inc_cells.get(day, {})
        changed = sorted(
            device_id
            for device_id in set(old_cells) | set(new_cells)
            if old_cells.get(device_id) != new_cells.get(device_id)
        )
        if new_cells:
            self._inc_cells[day] = new_cells
        else:
            self._inc_cells.pop(day, None)
        if not changed:
            return CatalogUpdate(
                day=day, changed_devices=(), n_devices=len(self._inc_device_days)
            )

        for device_id in changed:
            device_days = self._inc_device_days.setdefault(device_id, set())
            if device_id in new_cells:
                device_days.add(day)
            else:
                device_days.discard(day)
                self._inc_records.pop((device_id, day), None)
                if not device_days:
                    del self._inc_device_days[device_id]
                    self._inc_summaries.pop(device_id, None)

        refold: List[DeviceDayRecord] = []
        tac_of: Dict[str, int] = {}
        for device_id in changed:
            device_days = self._inc_device_days.get(device_id, set())
            if not device_days:
                continue
            sim_plmn, tac = self._resolve_incremental_identity(device_id)
            if tac is not None:
                tac_of[device_id] = tac
            for d in sorted(device_days):
                cache_key = (device_id, d)
                cached = self._inc_records.get(cache_key)
                # Rebuild the updated day's row, any missing row, and —
                # when the resolved SIM moved (e.g. the first radio day
                # was replaced) — every row carrying the stale SIM.
                if d == day or cached is None or cached.sim_plmn != sim_plmn:
                    cached = self._record_from_cell(
                        device_id, d, sim_plmn, self._inc_cells[d][device_id]
                    )
                    self._inc_records[cache_key] = cached
                refold.append(cached)
        if refold:
            self._inc_summaries.update(self.summarize(refold, tac_of))
        return CatalogUpdate(
            day=day,
            changed_devices=tuple(changed),
            n_devices=len(self._inc_device_days),
        )

    def snapshot(self) -> Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary]]:
        """The incremental catalog as of the last :meth:`update` —
        records sorted by (device, day), summaries in sorted device
        order, exactly as :meth:`build` emits them."""
        records = sorted(
            self._inc_records.values(), key=lambda r: (r.device_id, r.day)
        )
        summaries = {
            device_id: self._inc_summaries[device_id]
            for device_id in sorted(self._inc_summaries)
        }
        return records, summaries
