"""The daily devices-catalog: the paper's central data product (§4.1).

"We combine the three data sources to create a daily list of active
devices and associated properties and traffic characteristics …  Each
record in the generated catalog reports a device ID, total number of
events, calls, bytes seen, SIM MCC/MNC, list of visited MCC-MNC, list of
APN strings, device manufacturer, device model, device OS", radio-flags
and mobility metrics.

:class:`CatalogBuilder` streams radio events and CDR/xDR records into
per-(device, day) accumulators, joins the TAC catalog for device
properties and the sector catalog for mobility, and emits
:class:`DeviceDayRecord` rows plus whole-window :class:`DeviceSummary`
aggregates (the unit most of the paper's figures are computed over).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.cellular.rats import RadioFlags
from repro.cellular.sectors import SectorCatalog
from repro.cellular.tac_db import DeviceModel, TACDatabase
from repro.core.mobility import MobilityMetrics, daily_mobility
from repro.core.roaming import RoamingLabel, RoamingLabeler
from repro.signaling.cdr import ServiceRecord
from repro.signaling.events import RadioEvent


@dataclass(frozen=True)
class DeviceDayRecord:
    """One devices-catalog row: one device on one day."""

    device_id: str
    day: int
    sim_plmn: str
    visited_plmns: FrozenSet[str]
    n_events: int
    n_failed_events: int
    n_calls: int
    voice_minutes: float
    n_data_sessions: int
    bytes_total: int
    apns: FrozenSet[str]
    radio_flags: RadioFlags
    voice_flags: RadioFlags
    data_flags: RadioFlags
    mobility: Optional[MobilityMetrics]
    on_home_network: bool

    @property
    def has_activity(self) -> bool:
        return bool(self.n_events or self.n_calls or self.n_data_sessions)


@dataclass
class DeviceSummary:
    """Whole-window aggregate for one device.

    ``voice_flags``/``data_flags`` split radio activity per plane — the
    inputs to Fig. 9's three panels.  ``label`` is the device's roaming
    label; ``model`` its GSMA-catalog join (None when the TAC is unknown
    or the device was only seen in CDR/xDRs).
    """

    device_id: str
    sim_plmn: str
    label: RoamingLabel
    active_days: int
    n_events: int = 0
    n_failed_events: int = 0
    n_calls: int = 0
    voice_minutes: float = 0.0
    n_data_sessions: int = 0
    bytes_total: int = 0
    apns: FrozenSet[str] = frozenset()
    visited_plmns: FrozenSet[str] = frozenset()
    radio_flags: RadioFlags = RadioFlags()
    voice_flags: RadioFlags = RadioFlags()
    data_flags: RadioFlags = RadioFlags()
    tac: Optional[int] = None
    model: Optional[DeviceModel] = None
    mean_gyration_km: Optional[float] = None

    @property
    def manufacturer(self) -> Optional[str]:
        return self.model.manufacturer if self.model else None

    @property
    def has_voice(self) -> bool:
        return self.n_calls > 0 or not self.voice_flags.is_empty

    @property
    def has_data(self) -> bool:
        return self.n_data_sessions > 0 or not self.data_flags.is_empty

    @property
    def property_key(self) -> Optional[Tuple[str, str]]:
        """(manufacturer, model) key for classifier propagation."""
        return self.model.property_key if self.model else None

    def signaling_per_day(self) -> float:
        return self.n_events / self.active_days if self.active_days else 0.0


class _DayAccumulator:
    """Mutable per-(device, day) aggregation state."""

    __slots__ = (
        "radio_events",
        "n_calls",
        "voice_minutes",
        "n_data_sessions",
        "bytes_total",
        "apns",
        "visited_plmns",
        "on_home_network",
    )

    def __init__(self) -> None:
        self.radio_events: List[RadioEvent] = []
        self.n_calls = 0
        self.voice_minutes = 0.0
        self.n_data_sessions = 0
        self.bytes_total = 0
        self.apns: Set[str] = set()
        self.visited_plmns: Set[str] = set()
        self.on_home_network = False


class CatalogBuilder:
    """Joins the three data sources into the devices-catalog."""

    def __init__(
        self,
        tac_db: TACDatabase,
        sector_catalog: SectorCatalog,
        labeler: RoamingLabeler,
        compute_mobility: bool = True,
    ) -> None:
        self._tac_db = tac_db
        self._sectors = sector_catalog
        self._labeler = labeler
        self._compute_mobility = compute_mobility
        self._observer_plmn = str(labeler.observer.plmn)
        # TAC-join memo: the catalog has far fewer models than the
        # population has devices, so each TAC is resolved once and the
        # (possibly None) result reused across devices and `summarize`
        # calls.  Lookup is deterministic; the memo cannot change a join.
        self._model_cache: Dict[int, Optional[DeviceModel]] = {}

    # -- streaming ingestion ------------------------------------------------

    def _accumulate(
        self,
        radio_events: Iterable[RadioEvent],
        service_records: Iterable[ServiceRecord],
    ) -> Tuple[Dict[Tuple[str, int], _DayAccumulator], Dict[str, str], Dict[str, int]]:
        days: Dict[Tuple[str, int], _DayAccumulator] = defaultdict(_DayAccumulator)
        sim_plmn_of: Dict[str, str] = {}
        tac_of: Dict[str, int] = {}
        observer_plmn = self._observer_plmn

        for event in radio_events:
            device_id = event.device_id
            acc = days[(device_id, event.day)]
            if not acc.radio_events:
                # First radio event of this (device, day): every radio
                # event is by definition on the observer's network, so
                # the home flag and the observer PLMN are set once here
                # rather than per record.
                acc.on_home_network = True
                acc.visited_plmns.add(observer_plmn)
            acc.radio_events.append(event)
            if device_id not in sim_plmn_of:
                sim_plmn_of[device_id] = event.sim_plmn
                tac_of[device_id] = event.tac

        for record in service_records:
            acc = days[(record.device_id, record.day)]
            acc.visited_plmns.add(record.visited_plmn)
            if record.visited_plmn == self._observer_plmn:
                acc.on_home_network = True
            if record.is_voice:
                acc.n_calls += 1
                acc.voice_minutes += record.duration_s / 60.0
            else:
                acc.n_data_sessions += 1
                acc.bytes_total += record.bytes_total
                if record.apn:
                    acc.apns.add(record.apn)
            sim_plmn_of.setdefault(record.device_id, record.sim_plmn)

        return days, sim_plmn_of, tac_of

    def _day_record(
        self, device_id: str, day: int, sim_plmn: str, acc: _DayAccumulator
    ) -> DeviceDayRecord:
        flags = RadioFlags()
        voice_flags = RadioFlags()
        data_flags = RadioFlags()
        n_failed = 0
        for event in acc.radio_events:
            if event.is_success:
                flags = flags.with_rat(event.rat)
                if event.interface.is_voice:
                    voice_flags = voice_flags.with_rat(event.rat)
                else:
                    data_flags = data_flags.with_rat(event.rat)
            else:
                n_failed += 1
        mobility = (
            daily_mobility(acc.radio_events, self._sectors)
            if self._compute_mobility and acc.radio_events
            else None
        )
        return DeviceDayRecord(
            device_id=device_id,
            day=day,
            sim_plmn=sim_plmn,
            visited_plmns=frozenset(acc.visited_plmns),
            n_events=len(acc.radio_events),
            n_failed_events=n_failed,
            n_calls=acc.n_calls,
            voice_minutes=acc.voice_minutes,
            n_data_sessions=acc.n_data_sessions,
            bytes_total=acc.bytes_total,
            apns=frozenset(acc.apns),
            radio_flags=flags,
            voice_flags=voice_flags,
            data_flags=data_flags,
            mobility=mobility,
            on_home_network=acc.on_home_network,
        )

    # -- public API ----------------------------------------------------------

    def build_day_records(
        self,
        radio_events: Iterable[RadioEvent],
        service_records: Iterable[ServiceRecord],
    ) -> List[DeviceDayRecord]:
        """Emit the daily devices-catalog, sorted by (device, day)."""
        days, sim_plmn_of, _ = self._accumulate(radio_events, service_records)
        records = [
            self._day_record(device_id, day, sim_plmn_of[device_id], acc)
            for (device_id, day), acc in days.items()
        ]
        records.sort(key=lambda r: (r.device_id, r.day))
        return records

    def summarize(
        self, day_records: Iterable[DeviceDayRecord], tac_of: Dict[str, int]
    ) -> Dict[str, DeviceSummary]:
        """Roll daily records up into whole-window device summaries."""
        by_device: Dict[str, List[DeviceDayRecord]] = defaultdict(list)
        for record in day_records:
            by_device[record.device_id].append(record)

        summaries: Dict[str, DeviceSummary] = {}
        model_cache = self._model_cache
        for device_id, records in by_device.items():
            # One pass over the device's day records accumulates every
            # aggregate; the apns/visited frozensets are built once at
            # the end rather than re-derived per record.
            ever_home = False
            active_days = 0
            n_events = n_failed_events = n_calls = n_data_sessions = 0
            voice_minutes = 0.0
            bytes_total = 0
            gyration_sum = 0.0
            gyration_n = 0
            apns: Set[str] = set()
            visited: Set[str] = set()
            flags = RadioFlags()
            voice_flags = RadioFlags()
            data_flags = RadioFlags()
            for r in records:
                ever_home = ever_home or r.on_home_network
                if r.has_activity:
                    active_days += 1
                n_events += r.n_events
                n_failed_events += r.n_failed_events
                n_calls += r.n_calls
                voice_minutes += r.voice_minutes
                n_data_sessions += r.n_data_sessions
                bytes_total += r.bytes_total
                if r.mobility is not None:
                    gyration_sum += r.mobility.gyration_km
                    gyration_n += 1
                apns.update(r.apns)
                visited.update(r.visited_plmns)
                flags = flags.union(r.radio_flags)
                voice_flags = voice_flags.union(r.voice_flags)
                data_flags = data_flags.union(r.data_flags)
            # A device never seen on the home network was only observed
            # through CDR/xDRs from partner networks: an outbound roamer.
            # min() (not next(iter(...))) keeps the pick independent of
            # frozenset iteration order, i.e. of PYTHONHASHSEED.
            any_visited = min(records[0].visited_plmns, default=self._observer_plmn)
            label = self._labeler.label(
                records[0].sim_plmn,
                self._observer_plmn if ever_home else any_visited,
            )
            tac = tac_of.get(device_id)
            if tac is None:
                model = None
            elif tac in model_cache:
                model = model_cache[tac]
            else:
                model = self._tac_db.lookup(tac)
                model_cache[tac] = model
            summaries[device_id] = DeviceSummary(
                device_id=device_id,
                sim_plmn=records[0].sim_plmn,
                label=label,
                active_days=active_days,
                n_events=n_events,
                n_failed_events=n_failed_events,
                n_calls=n_calls,
                voice_minutes=voice_minutes,
                n_data_sessions=n_data_sessions,
                bytes_total=bytes_total,
                apns=frozenset(apns),
                visited_plmns=frozenset(visited),
                radio_flags=flags,
                voice_flags=voice_flags,
                data_flags=data_flags,
                tac=tac,
                model=model,
                mean_gyration_km=(
                    gyration_sum / gyration_n if gyration_n else None
                ),
            )
        return summaries

    def build(
        self,
        radio_events: Iterable[RadioEvent],
        service_records: Iterable[ServiceRecord],
    ) -> Tuple[List[DeviceDayRecord], Dict[str, DeviceSummary]]:
        """One-shot: daily records plus per-device summaries."""
        days, sim_plmn_of, tac_of = self._accumulate(radio_events, service_records)
        records = [
            self._day_record(device_id, day, sim_plmn_of[device_id], acc)
            for (device_id, day), acc in days.items()
        ]
        records.sort(key=lambda r: (r.device_id, r.day))
        return records, self.summarize(records, tac_of)
