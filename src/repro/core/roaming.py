"""Roaming-label assignment: the ``<X:Y>`` tags of §4.2.

Every record in the devices-catalog gets a label ``<X:Y>`` where X
describes the SIM relative to the MNO under study — **H**ome (our SIM),
**V**irtual (an MVNO we host), **N**ational (another MNO of our country)
or **I**nternational — and Y describes where the device is attached:
**H**ome (on our network) or **A**broad (on a foreign network; visible
only through CDR/xDR records).

Six labels are observable in practice: H:H, H:A, V:H, V:A, N:H and I:H.
An N:A or I:A device (foreign SIM, foreign network) never appears in any
of the MNO's data sources, so those combinations cannot occur — the
labeler raises if asked to produce one.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.cellular.identifiers import PLMN
from repro.cellular.operators import Operator, OperatorRegistry

#: Upper bound on the labeler's memo table.  The label space is tiny
#: (pairs of observed PLMN strings), so the cap exists only to bound a
#: pathological input stream; eviction is insertion-ordered.
LABEL_CACHE_MAXSIZE = 65536


@dataclass(frozen=True)
class LabelCacheStats:
    """Hit/miss counters for :class:`RoamingLabeler`'s label memo."""

    hits: int
    misses: int
    size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SimOrigin(str, Enum):
    """The X component: whose SIM is it?"""

    HOME = "H"
    VIRTUAL = "V"
    NATIONAL = "N"
    INTERNATIONAL = "I"


class VisitedSide(str, Enum):
    """The Y component: where is the device attached?"""

    HOME = "H"
    ABROAD = "A"


@dataclass(frozen=True)
class RoamingLabel:
    """A full ``<X:Y>`` roaming label."""

    sim: SimOrigin
    visited: VisitedSide

    def __post_init__(self) -> None:
        if self.visited is VisitedSide.ABROAD and self.sim in (
            SimOrigin.NATIONAL,
            SimOrigin.INTERNATIONAL,
        ):
            raise ValueError(
                f"label {self.sim.value}:A is unobservable: a foreign SIM on a "
                "foreign network never appears in the MNO's records"
            )

    def __str__(self) -> str:
        return f"{self.sim.value}:{self.visited.value}"

    @property
    def is_native(self) -> bool:
        """Our SIM on our network."""
        return self.sim is SimOrigin.HOME and self.visited is VisitedSide.HOME

    @property
    def is_inbound_roamer(self) -> bool:
        """A foreign-country SIM using our radio network (I:H)."""
        return self.sim is SimOrigin.INTERNATIONAL and self.visited is VisitedSide.HOME

    @property
    def is_outbound_roamer(self) -> bool:
        """Our own (or hosted-MVNO) SIM attached abroad."""
        return self.visited is VisitedSide.ABROAD

    @classmethod
    def parse(cls, text: str) -> "RoamingLabel":
        try:
            x, y = text.split(":")
            return cls(SimOrigin(x), VisitedSide(y))
        except (ValueError, KeyError):
            raise ValueError(f"malformed roaming label {text!r}") from None


#: All six observable labels, in the order the paper's heatmaps use.
OBSERVABLE_LABELS = (
    RoamingLabel(SimOrigin.HOME, VisitedSide.HOME),
    RoamingLabel(SimOrigin.HOME, VisitedSide.ABROAD),
    RoamingLabel(SimOrigin.VIRTUAL, VisitedSide.HOME),
    RoamingLabel(SimOrigin.VIRTUAL, VisitedSide.ABROAD),
    RoamingLabel(SimOrigin.NATIONAL, VisitedSide.HOME),
    RoamingLabel(SimOrigin.INTERNATIONAL, VisitedSide.HOME),
)


class RoamingLabeler:
    """Assigns ``<X:Y>`` labels from SIM and visited PLMN strings.

    Needs the operator registry (to resolve MVNOs and countries) and the
    identity of the MNO under study.

    ``label`` is called once per record on the catalog hot path, but the
    label space — pairs of PLMN strings actually observed — is tiny, so
    results are memoized per (sim, visited) pair.  The memo is purely an
    evaluation cache: labeling is deterministic, so a hit always returns
    exactly what a fresh computation would (``cache=False`` disables it,
    which the perf harness uses to measure the uncached path).
    """

    def __init__(
        self,
        registry: OperatorRegistry,
        observer: Operator,
        cache: bool = True,
    ) -> None:
        if observer.is_mvno:
            raise ValueError("the observing operator must be an MNO")
        self._registry = registry
        self._observer = observer
        self._observer_plmn_str = str(observer.plmn)
        self._cache: Optional[Dict[Tuple[str, str], RoamingLabel]] = (
            {} if cache else None
        )
        self._cache_hits = 0
        self._cache_misses = 0

    @property
    def observer(self) -> Operator:
        return self._observer

    def sim_origin(self, sim_plmn: str) -> SimOrigin:
        """Classify the SIM: H, V, N or I."""
        plmn = PLMN.parse(sim_plmn)
        if plmn == self._observer.plmn:
            return SimOrigin.HOME
        operator = self._registry.get(plmn)
        if (
            operator is not None
            and operator.is_mvno
            and operator.host_plmn == self._observer.plmn
        ):
            return SimOrigin.VIRTUAL
        if plmn.mcc == self._observer.plmn.mcc:
            return SimOrigin.NATIONAL
        return SimOrigin.INTERNATIONAL

    def visited_side(self, visited_plmn: str) -> VisitedSide:
        """Classify the attachment point: on our network, or abroad.

        Attachment to another network *in our own country* is possible
        for national roaming, but the MNO's radio logs only cover its own
        sectors and its CDR/xDRs only cover its own SIMs; following the
        paper we fold "attached to a network outside the country" into A
        and everything on our network into H.
        """
        if visited_plmn == self._observer_plmn_str:
            return VisitedSide.HOME
        plmn = PLMN.parse(visited_plmn)
        operator = self._registry.get(plmn)
        if (
            operator is not None
            and operator.is_mvno
            and operator.host_plmn == self._observer.plmn
        ):
            # MVNO "networks" are our own radio network.
            return VisitedSide.HOME
        return VisitedSide.ABROAD

    def label(self, sim_plmn: str, visited_plmn: str) -> RoamingLabel:
        """Label one (SIM, visited) pair (memoized; see class docstring)."""
        if self._cache is None:
            return self._label_uncached(sim_plmn, visited_plmn)
        key = (sim_plmn, visited_plmn)
        hit = self._cache.get(key)
        if hit is not None:
            self._cache_hits += 1
            return hit
        self._cache_misses += 1
        result = self._label_uncached(sim_plmn, visited_plmn)
        if len(self._cache) >= LABEL_CACHE_MAXSIZE:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = result
        return result

    def _label_uncached(self, sim_plmn: str, visited_plmn: str) -> RoamingLabel:
        """The real computation behind :meth:`label`."""
        return RoamingLabel(
            sim=self.sim_origin(sim_plmn),
            visited=self.visited_side(visited_plmn),
        )

    def cache_stats(self) -> LabelCacheStats:
        """Hit/miss counters for the label memo (zeros when disabled)."""
        return LabelCacheStats(
            hits=self._cache_hits,
            misses=self._cache_misses,
            size=len(self._cache) if self._cache is not None else 0,
        )
