"""Keyword-discovery tooling: how the 26 keywords were found (§4.3).

"Ranking the APNs by number of devices using it, we identified 26
'keywords' in the APN string which we mapped to M2M/IoT verticals using
information found online."

That ranking-and-eyeballing workflow is tooling-shaped; this module
implements it so an analyst facing a *new* APN population can re-run
the paper's procedure:

1. :func:`candidate_keywords` tokenizes the top APNs' Network
   Identifiers, drops operator/consumer/structural noise tokens, and
   ranks the remaining tokens by distinct-device support;
2. the analyst maps surviving candidates to verticals (the "information
   found online" step — here, against :func:`known_vertical_lookup` or
   their own research);
3. :func:`build_inventory` turns confirmed mappings into a
   :class:`~repro.core.apn.KeywordInventory` ready for the classifier.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.apn import (
    CONSUMER_KEYWORDS,
    KeywordInventory,
    default_keyword_inventory,
    parse_apn,
)
from repro.core.catalog import DeviceSummary
from repro.devices.device import IoTVertical

#: Structural / operator tokens that carry no vertical signal.
NOISE_TOKENS: FrozenSet[str] = frozenset(
    {
        "com", "net", "org", "gprs", "apn", "data", "standard", "mobile",
        "cloud", "io", "global", "gb", "uk", "es", "nl", "se", "de",
    }
)


@dataclass(frozen=True)
class KeywordCandidate:
    """One candidate token with its evidence."""

    token: str
    n_devices: int
    n_apns: int
    example_apn: str

    def __post_init__(self) -> None:
        if self.n_devices < 1 or self.n_apns < 1:
            raise ValueError("candidate must have support")


def _tokens(network_id: str) -> List[str]:
    return [t for t in network_id.replace("-", ".").split(".") if t]


def candidate_keywords(
    summaries: Iterable[DeviceSummary],
    min_devices: int = 3,
    max_candidates: int = 50,
) -> List[KeywordCandidate]:
    """Rank candidate vertical keywords from an APN population.

    A token survives when it (a) appears in APN Network Identifiers used
    by at least ``min_devices`` distinct devices, (b) is not a consumer
    keyword, operator slug fragment or structural noise token, and (c)
    is not purely numeric.
    """
    devices_per_token: Dict[str, Set[str]] = defaultdict(set)
    apns_per_token: Dict[str, Set[str]] = defaultdict(set)
    example: Dict[str, str] = {}
    for summary in summaries:
        for apn in summary.apns:
            network_id = parse_apn(apn).network_id
            for token in _tokens(network_id):
                devices_per_token[token].add(summary.device_id)
                apns_per_token[token].add(apn)
                example.setdefault(token, apn)

    candidates: List[KeywordCandidate] = []
    for token, devices in devices_per_token.items():
        if len(devices) < min_devices:
            continue
        if token in NOISE_TOKENS or token.isdigit():
            continue
        if any(consumer in token for consumer in CONSUMER_KEYWORDS):
            continue
        candidates.append(
            KeywordCandidate(
                token=token,
                n_devices=len(devices),
                n_apns=len(apns_per_token[token]),
                example_apn=example[token],
            )
        )
    candidates.sort(key=lambda c: (-c.n_devices, c.token))
    return candidates[:max_candidates]


def known_vertical_lookup(token: str) -> Optional[IoTVertical]:
    """The stand-in for "information found online": does the default
    inventory already know this token (or a keyword containing it)?"""
    inventory = default_keyword_inventory()
    for keyword, vertical in inventory:
        if token in keyword or keyword in token:
            return vertical
    return None


def auto_map_candidates(
    candidates: Iterable[KeywordCandidate],
) -> Tuple[Dict[str, IoTVertical], List[KeywordCandidate]]:
    """Split candidates into (auto-mapped, needs-research).

    Auto-mapping uses :func:`known_vertical_lookup`; the remainder is
    what a human analyst would take to a search engine.
    """
    mapped: Dict[str, IoTVertical] = {}
    unknown: List[KeywordCandidate] = []
    for candidate in candidates:
        vertical = known_vertical_lookup(candidate.token)
        if vertical is not None:
            mapped[candidate.token] = vertical
        else:
            unknown.append(candidate)
    return mapped, unknown


def build_inventory(mapping: Mapping[str, IoTVertical]) -> KeywordInventory:
    """Materialize confirmed keyword→vertical mappings as an inventory."""
    return KeywordInventory(dict(mapping))


def discovery_report(
    summaries: Iterable[DeviceSummary], min_devices: int = 3
) -> str:
    """Human-readable end-to-end discovery run (for examples/CLI)."""
    candidates = candidate_keywords(summaries, min_devices=min_devices)
    mapped, unknown = auto_map_candidates(candidates)
    lines = [f"candidate keywords: {len(candidates)}"]
    lines.append(f"auto-mapped to verticals: {len(mapped)}")
    for token, vertical in sorted(mapped.items()):
        lines.append(f"  {token:<20} -> {vertical.value}")
    lines.append(f"needing manual research: {len(unknown)}")
    for candidate in unknown[:10]:
        lines.append(
            f"  {candidate.token:<20} ({candidate.n_devices} devices, "
            f"e.g. {candidate.example_apn})"
        )
    return "\n".join(lines)
