"""GSMA-style M2M transparency declarations and detection (§1, §8).

The GSMA's LTE/EPC roaming guidelines (IR.88, cited by the paper as [2])
recommend that home networks "provide transparency of their outbound
roaming M2M traffic by sharing information on the dedicated APNs or
dedicated IMSI ranges they use".  The paper's whole classification
problem exists because that recommendation is unevenly followed.

This module implements the mechanism so the two worlds can be compared:

* :class:`M2MDeclaration` — one home operator's declared dedicated APNs
  (prefix match on the Network Identifier) and/or IMSI ranges;
* :class:`TransparencyRegistry` — the industry-wide collection;
* :class:`TransparencyDetector` — flags inbound devices as M2M purely
  from declarations (no inference), the §8 "NB-IoT will enable visited
  MNOs to easily detect inbound roaming IoT devices" world;
* :func:`coverage_report` — how much of the true M2M population each
  approach (declarations vs the §4.3 classifier) recovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.cellular.identifiers import plmn_candidates
from repro.core.apn import parse_apn
from repro.core.catalog import DeviceSummary
from repro.core.classifier import Classification, ClassLabel
from repro.datasets.containers import GroundTruthEntry
from repro.devices.device import DeviceClass


@dataclass(frozen=True)
class IMSIRange:
    """A dedicated IMSI number block [lo, hi], 15-digit values."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (10**14 <= self.lo <= self.hi < 10**15):
            raise ValueError(f"IMSI range must be 15-digit: [{self.lo}, {self.hi}]")

    def contains(self, imsi_digits: str) -> bool:
        if len(imsi_digits) != 15 or not imsi_digits.isdigit():
            return False
        return self.lo <= int(imsi_digits) <= self.hi


@dataclass(frozen=True)
class M2MDeclaration:
    """One home operator's transparency declaration."""

    home_plmn: str
    apn_prefixes: FrozenSet[str] = frozenset()
    imsi_ranges: Tuple[IMSIRange, ...] = ()

    def __post_init__(self) -> None:
        if not self.home_plmn.isdigit() or len(self.home_plmn) not in (5, 6):
            raise ValueError(f"bad home PLMN {self.home_plmn!r}")
        if not self.apn_prefixes and not self.imsi_ranges:
            raise ValueError("a declaration must declare something")

    def matches_apn(self, apn: str) -> bool:
        network_id = parse_apn(apn).network_id
        return any(network_id.startswith(prefix) for prefix in self.apn_prefixes)


class TransparencyRegistry:
    """The collection of declarations a visited MNO has received."""

    def __init__(self, declarations: Optional[Iterable[M2MDeclaration]] = None) -> None:
        self._by_home: Dict[str, List[M2MDeclaration]] = {}
        for declaration in declarations or []:
            self.add(declaration)

    def add(self, declaration: M2MDeclaration) -> None:
        self._by_home.setdefault(declaration.home_plmn, []).append(declaration)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_home.values())

    def declarations_for(self, home_plmn: str) -> List[M2MDeclaration]:
        return list(self._by_home.get(home_plmn, []))

    def declaring_operators(self) -> Set[str]:
        return set(self._by_home)


class TransparencyDetector:
    """Detects M2M devices from declarations only — zero inference.

    A device is flagged when its home operator declared, and either one
    of its APNs matches a declared prefix or (when the caller can supply
    IMSIs — visited MNOs can, for their own SIMs at least) its IMSI
    falls in a declared range.
    """

    def __init__(self, registry: TransparencyRegistry) -> None:
        self._registry = registry

    def detect_by_apn(self, summaries: Mapping[str, DeviceSummary]) -> Set[str]:
        detected: Set[str] = set()
        for device_id, summary in summaries.items():
            declarations = self._registry.declarations_for(summary.sim_plmn)
            if not declarations:
                continue
            for apn in summary.apns:
                if any(d.matches_apn(apn) for d in declarations):
                    detected.add(device_id)
                    break
        return detected

    def detect_by_imsi(
        self, imsis: Mapping[str, str]
    ) -> Set[str]:
        """``imsis`` maps device_id -> 15-digit IMSI string."""
        detected: Set[str] = set()
        for device_id, imsi in imsis.items():
            for home_plmn in plmn_candidates(imsi):
                for declaration in self._registry.declarations_for(home_plmn):
                    if any(r.contains(imsi) for r in declaration.imsi_ranges):
                        detected.add(device_id)
                        break
        return detected


@dataclass
class CoverageReport:
    """How much of the true M2M population an approach recovers."""

    n_true_m2m: int
    transparency_recall: float
    transparency_precision: float
    classifier_recall: float
    both_agree: float

    def format(self) -> str:
        return (
            f"true m2m devices: {self.n_true_m2m}\n"
            f"transparency: recall={self.transparency_recall:.3f} "
            f"precision={self.transparency_precision:.3f}\n"
            f"classifier:   recall={self.classifier_recall:.3f}\n"
            f"agreement on true m2m: {self.both_agree:.3f}"
        )


def coverage_report(
    detected: Set[str],
    classifications: Mapping[str, Classification],
    ground_truth: Mapping[str, GroundTruthEntry],
) -> CoverageReport:
    """Compare declaration-based detection against the §4.3 classifier."""
    true_m2m = {
        d
        for d, g in ground_truth.items()
        if g.device_class is DeviceClass.M2M and d in classifications
    }
    if not true_m2m:
        raise ValueError("ground truth contains no M2M devices")
    classifier_m2m = {
        d for d, c in classifications.items() if c.label is ClassLabel.M2M
    }
    transparency_tp = len(detected & true_m2m)
    return CoverageReport(
        n_true_m2m=len(true_m2m),
        transparency_recall=transparency_tp / len(true_m2m),
        transparency_precision=(
            transparency_tp / len(detected) if detected else 0.0
        ),
        classifier_recall=len(classifier_m2m & true_m2m) / len(true_m2m),
        both_agree=len(detected & classifier_m2m & true_m2m) / len(true_m2m),
    )


def default_declarations(
    nl_iot_plmn: str,
    platform_plmns: Iterable[str],
    declaring_fraction_note: str = "partial",
) -> TransparencyRegistry:
    """The declarations our modelled world would plausibly see.

    Only the disciplined actors declare: the Dutch IoT-SIM operator
    (energy-meter APNs) and the platform HMNOs (the shared global-IoT
    APN).  Everyone else stays opaque — which is exactly why the paper
    needs the classifier.
    """
    registry = TransparencyRegistry()
    registry.add(
        M2MDeclaration(
            home_plmn=nl_iot_plmn,
            apn_prefixes=frozenset({"smhp."}),
        )
    )
    for plmn in platform_plmns:
        registry.add(
            M2MDeclaration(
                home_plmn=plmn,
                apn_prefixes=frozenset({"intelligent.m2m", "iotsim.", "telemetry."}),
            )
        )
    return registry
