"""The paper's primary contribution: the device-classification pipeline.

Given the raw records a visited MNO collects (radio events, CDR/xDR,
GSMA TAC catalog), this package:

1. builds the daily *devices-catalog* (:mod:`repro.core.catalog`),
2. assigns each device a roaming label ``<X:Y>``
   (:mod:`repro.core.roaming`),
3. classifies devices into smart / feat / m2m / m2m-maybe through the
   multi-step APN-and-properties method of §4.3
   (:mod:`repro.core.classifier`), and
4. validates the classification against ground truth
   (:mod:`repro.core.validation`).

Supporting pieces: APN parsing and the keyword→vertical inventory
(:mod:`repro.core.apn`) and dwell-weighted mobility metrics
(:mod:`repro.core.mobility`).
"""

from repro.core.apn import (
    APN,
    APNKind,
    classify_apn,
    default_keyword_inventory,
    parse_apn,
)
from repro.core.catalog import (
    CatalogBuilder,
    CatalogUpdate,
    DeviceDayRecord,
    DeviceSummary,
)
from repro.core.classifier import ClassLabel, ClassifierConfig, DeviceClassifier
from repro.core.mobility import daily_mobility, MobilityMetrics
from repro.core.roaming import RoamingLabel, RoamingLabeler, SimOrigin, VisitedSide
from repro.core.validation import ValidationReport, validate_classification

__all__ = [
    "APN",
    "APNKind",
    "CatalogBuilder",
    "CatalogUpdate",
    "ClassLabel",
    "ClassifierConfig",
    "DeviceClassifier",
    "DeviceDayRecord",
    "DeviceSummary",
    "MobilityMetrics",
    "RoamingLabel",
    "RoamingLabeler",
    "SimOrigin",
    "ValidationReport",
    "VisitedSide",
    "classify_apn",
    "daily_mobility",
    "default_keyword_inventory",
    "parse_apn",
    "validate_classification",
]
