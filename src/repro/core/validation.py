"""Classifier validation against simulator ground truth.

The paper validates its classification through manual inspection and
private operator knowledge; our simulator knows each device's true class,
so we can score the pipeline exactly: confusion matrix, per-class
precision/recall/F1, and overall accuracy.

``m2m-maybe`` is treated the way the paper treats it — an *abstention*:
it is excluded from precision/recall of the three real classes and
reported separately as coverage loss.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.core.classifier import Classification, ClassLabel
from repro.datasets.containers import GroundTruthEntry
from repro.devices.device import DeviceClass

_TRUTH_TO_LABEL = {
    DeviceClass.SMART: ClassLabel.SMART,
    DeviceClass.FEAT: ClassLabel.FEAT,
    DeviceClass.M2M: ClassLabel.M2M,
}


@dataclass(frozen=True)
class ClassScore:
    """Precision / recall / F1 for one class."""

    precision: float
    recall: float
    f1: float
    support: int


@dataclass
class ValidationReport:
    """Full scoring of a classification run."""

    confusion: Dict[Tuple[ClassLabel, ClassLabel], int]
    per_class: Dict[ClassLabel, ClassScore]
    accuracy: float
    abstention_rate: float
    n_devices: int

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"devices scored: {self.n_devices}",
            f"accuracy (decided devices): {self.accuracy:.3f}",
            f"abstention (m2m-maybe) rate: {self.abstention_rate:.3f}",
        ]
        for label, score in sorted(self.per_class.items(), key=lambda kv: kv[0].value):
            lines.append(
                f"  {label.value:<6} precision={score.precision:.3f} "
                f"recall={score.recall:.3f} f1={score.f1:.3f} "
                f"support={score.support}"
            )
        return "\n".join(lines)


def accuracy_by_step(
    classifications: Mapping[str, Classification],
    ground_truth: Mapping[str, GroundTruthEntry],
) -> Dict[str, Tuple[int, float]]:
    """Per-classification-step (n devices, accuracy) over decided devices.

    The step ordering doubles as a confidence ordering; this is the
    empirical check that the ordering is justified (direct APN evidence
    should out-perform property propagation, which should out-perform
    catalog-only fallbacks).
    """
    counts: Dict[str, int] = defaultdict(int)
    correct: Dict[str, int] = defaultdict(int)
    for device_id, predicted in classifications.items():
        truth = ground_truth.get(device_id)
        if truth is None or predicted.label is ClassLabel.M2M_MAYBE:
            continue
        step = predicted.step.value
        counts[step] += 1
        if predicted.label is _TRUTH_TO_LABEL[truth.device_class]:
            correct[step] += 1
    return {
        step: (counts[step], correct[step] / counts[step])
        for step in counts
    }


def validate_classification(
    classifications: Mapping[str, Classification],
    ground_truth: Mapping[str, GroundTruthEntry],
) -> ValidationReport:
    """Score predicted labels against ground truth.

    Devices present in only one of the two mappings are skipped (e.g.
    ground truth for devices that generated no records).
    """
    confusion: Dict[Tuple[ClassLabel, ClassLabel], int] = defaultdict(int)
    decided = 0
    correct = 0
    abstained = 0
    scored = 0

    for device_id, predicted in classifications.items():
        truth = ground_truth.get(device_id)
        if truth is None:
            continue
        scored += 1
        true_label = _TRUTH_TO_LABEL[truth.device_class]
        confusion[(true_label, predicted.label)] += 1
        if predicted.label is ClassLabel.M2M_MAYBE:
            abstained += 1
            continue
        decided += 1
        if predicted.label is true_label:
            correct += 1

    per_class: Dict[ClassLabel, ClassScore] = {}
    for label in (ClassLabel.SMART, ClassLabel.FEAT, ClassLabel.M2M):
        tp = confusion.get((label, label), 0)
        fp = sum(
            count
            for (true, pred), count in confusion.items()
            if pred is label and true is not label
        )
        support = sum(
            count for (true, _), count in confusion.items() if true is label
        )
        # Recall over decided devices of this class (abstentions excluded).
        fn = sum(
            count
            for (true, pred), count in confusion.items()
            if true is label and pred is not label and pred is not ClassLabel.M2M_MAYBE
        )
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        per_class[label] = ClassScore(
            precision=precision, recall=recall, f1=f1, support=support
        )

    return ValidationReport(
        confusion=dict(confusion),
        per_class=per_class,
        accuracy=correct / decided if decided else 0.0,
        abstention_rate=abstained / scored if scored else 0.0,
        n_devices=scored,
    )
